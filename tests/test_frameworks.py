"""Framework generation + runtime tests: determinism, shared builds, specs,
routing, variant selection, memory policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuda.arch import get_device
from repro.cuda.driver import LoadingMode
from repro.errors import ConfigurationError
from repro.frameworks.catalog import (
    FRAMEWORK_NAMES,
    build_id_for,
    get_framework,
    nvidia_libraries,
    pytorch_spec,
    small_library,
    tensorflow_spec,
)
from repro.frameworks.genlib import (
    CORE_KIND,
    LibraryLayout,
    generate_library,
    plan_layout,
)
from repro.frameworks.ops import OpInstance, OpKind, Phase, batch_bucket
from repro.frameworks.runtime import FrameworkRuntime
from repro.frameworks.spec import LibrarySpec

from tests.conftest import TEST_SCALE


class TestSpecs:
    def test_all_framework_specs_valid(self):
        for name in FRAMEWORK_NAMES:
            fw = get_framework(name, scale=TEST_SCALE)
            assert fw.libraries

    def test_library_spec_invariants(self):
        with pytest.raises(ConfigurationError):
            LibrarySpec("x.so", file_mb=10, text_mb=8, n_functions=10, gpu_mb=5)
        with pytest.raises(ConfigurationError):
            LibrarySpec("x.so", file_mb=10, text_mb=1, n_functions=10,
                        gpu_mb=5, n_cubins=0)

    def test_feature_filtering_conv(self):
        spec = pytorch_spec()
        conv_libs = {
            lib.soname
            for lib in spec.libraries_for(frozenset({"vision", "conv", "train"}))
        }
        noconv = {
            lib.soname for lib in spec.libraries_for(frozenset({"text"}))
        }
        assert "libcudnn_cnn_infer.so.8" in conv_libs
        assert "libcudnn_cnn_infer.so.8" not in noconv

    def test_train_only_libraries(self):
        spec = pytorch_spec()
        train = {s.soname for s in
                 spec.libraries_for(frozenset({"vision", "conv", "train"}))}
        infer = {s.soname for s in
                 spec.libraries_for(frozenset({"vision", "conv", "inference"}))}
        assert train - infer == {"libcudnn_cnn_train.so.8",
                                 "libcudnn_ops_train.so.8"}
        assert len(train) - len(infer) == 2  # paper: 113 vs 111

    def test_proprietary_flagged(self):
        for spec in nvidia_libraries():
            assert spec.proprietary

    def test_small_library_deterministic(self):
        assert small_library("libz.so.1") == small_library("libz.so.1")


class TestGeneration:
    def test_deterministic_bytes(self):
        spec = nvidia_libraries()[5]  # libcublas
        a = generate_library(spec, "b1", scale=TEST_SCALE)
        b = generate_library(spec, "b1", scale=TEST_SCALE)
        assert a.data == b.data

    def test_build_id_changes_bytes(self):
        spec = nvidia_libraries()[5]
        a = generate_library(spec, "b1", scale=TEST_SCALE)
        b = generate_library(spec, "b2", scale=TEST_SCALE)
        assert a.data != b.data

    def test_torch_shared_between_pytorch_and_transformers(self):
        assert build_id_for("pytorch", "libtorch_cuda.so") == build_id_for(
            "transformers", "libtorch_cuda.so"
        )
        assert build_id_for("vllm", "libtorch_cuda.so") != build_id_for(
            "pytorch", "libtorch_cuda.so"
        )
        pt = get_framework("pytorch", scale=TEST_SCALE)
        hf = get_framework("transformers", scale=TEST_SCALE)
        assert pt.libraries["libtorch_cuda.so"] is hf.libraries["libtorch_cuda.so"]

    def test_sizes_near_spec(self):
        spec = pytorch_spec().library("libtorch_cuda.so")
        lib = generate_library(spec, "torch-2.3.1", scale=TEST_SCALE)
        assert lib.cpu_code_size == pytest.approx(spec.text_bytes, rel=0.01)
        assert lib.gpu_code_size == pytest.approx(spec.gpu_bytes, rel=0.15)
        assert lib.file_size == pytest.approx(spec.file_bytes, rel=0.15)

    def test_element_count_scales(self):
        spec = pytorch_spec().library("libtorch_cuda.so")
        lib = generate_library(spec, "torch-2.3.1", scale=0.1)
        expected = round(spec.n_cubins * 0.1) * 6
        assert lib.element_count == pytest.approx(expected, rel=0.1)

    def test_six_architectures(self):
        spec = pytorch_spec().library("libtorch_cuda.so")
        lib = generate_library(spec, "torch-2.3.1", scale=TEST_SCALE)
        assert len(lib.fatbin.architectures()) == 6

    def test_layout_attached(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        layout = fw.libraries["libtorch_cuda.so"].tags["layout"]
        assert isinstance(layout, LibraryLayout)
        assert layout.core_plans()

    def test_layout_kernels_exist_in_fatbin(self):
        """The generator/runtime contract: planned names == fatbin names."""
        fw = get_framework("pytorch", scale=TEST_SCALE)
        lib = fw.libraries["libtorch_cuda.so"]
        layout = lib.tags["layout"]
        fatbin_names = set()
        for element in lib.fatbin.elements():
            fatbin_names.update(element.cubin.kernel_names())
        for plans in layout.plans_by_kind.values():
            for plan in plans:
                assert set(plan.names) <= fatbin_names

    def test_op_pools_within_bounds(self):
        spec = pytorch_spec().library("libtorch_cpu.so")
        layout, sizes, names = plan_layout(spec, "torch-2.3.1", TEST_SCALE)
        n = layout.n_functions
        assert len(names) == n == len(sizes)
        for indices in layout.op_used.values():
            assert indices.max() < n
        assert int(sizes.sum()) == spec.text_bytes

    def test_used_functions_are_larger(self):
        """Hot code holds more bytes than its count share (paper: 93% count
        vs 68% size reduction)."""
        spec = pytorch_spec().library("libtorch_cuda.so")
        layout, sizes, _ = plan_layout(spec, "torch-2.3.1", 0.1)
        used = set(layout.infra_used.tolist())
        for idx in layout.op_used.values():
            used.update(idx.tolist())
        used_idx = np.array(sorted(used))
        mask = np.zeros(len(sizes), dtype=bool)
        mask[used_idx] = True
        assert sizes[mask].mean() > 2.0 * sizes[~mask].mean()

    def test_core_cubins_are_large(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        layout = fw.libraries["libtorch_cuda.so"].tags["layout"]
        core = layout.core_plans()
        total = {a: 0 for a in layout.archs}
        for plans in layout.plans_by_kind.values():
            for plan in plans:
                for a, v in plan.code_bytes_by_arch.items():
                    total[a] += v
        core_bytes = sum(p.code_bytes_by_arch[75] for p in core)
        assert core_bytes > 0.15 * total[75]


class TestOps:
    def test_batch_bucket_bands(self):
        assert batch_bucket(1) == 0
        assert batch_bucket(2) == 1
        assert batch_bucket(16) == 4
        assert batch_bucket(17) == 5

    def test_op_uid(self):
        op = OpInstance(OpKind.GEMM, "m128")
        assert op.uid == "gemm:m128"


def boot_runtime(fw_name="pytorch", features=frozenset({"vision", "conv", "train"}),
                 mode=LoadingMode.EAGER, devices=("t4",)):
    fw = get_framework(fw_name, scale=TEST_SCALE)
    rt = FrameworkRuntime(
        framework=fw,
        devices=tuple(get_device(d) for d in devices),
        loading_mode=mode,
    )
    rt.boot(features)
    return rt


class TestRuntime:
    def test_boot_loads_feature_libraries(self):
        rt = boot_runtime()
        assert "libcudnn_cnn_train.so.8" in rt.process.libraries
        rt2 = boot_runtime(features=frozenset({"vision", "conv", "inference"}))
        assert "libcudnn_cnn_train.so.8" not in rt2.process.libraries

    def test_double_boot_rejected(self):
        rt = boot_runtime()
        with pytest.raises(ConfigurationError):
            rt.boot(frozenset())

    def test_conv_routes_by_phase(self):
        rt = boot_runtime()
        op = OpInstance(OpKind.CONV2D, "c3_k3")
        fwd = rt.run_op(op, Phase.FORWARD, 16)
        bwd = rt.run_op(op, Phase.BACKWARD, 16)
        assert fwd.soname == "libcudnn_cnn_infer.so.8"
        assert bwd.soname == "libcudnn_cnn_train.so.8"

    def test_resolution_cached(self):
        rt = boot_runtime()
        op = OpInstance(OpKind.ACTIVATION, "relu_c32")
        a = rt.run_op(op, Phase.FORWARD, 16)
        calls = sum(d.counters.get_function_calls for d in rt.drivers)
        b = rt.run_op(op, Phase.FORWARD, 16, count=5)
        assert a is b
        assert sum(d.counters.get_function_calls for d in rt.drivers) == calls

    def test_variant_stable_across_runtimes(self):
        op = OpInstance(OpKind.GEMM, "m512_n512")
        a = boot_runtime().run_op(op, Phase.FORWARD, 16)
        b = boot_runtime().run_op(op, Phase.FORWARD, 16)
        assert a.kernel_names == b.kernel_names
        assert a.soname == b.soname

    def test_batch_bucket_changes_gemm_variant(self):
        # Bucket hashes can collide for a single signature; across several
        # signatures at least one must select a different variant.
        differed = False
        for i in range(6):
            op = OpInstance(OpKind.GEMM, f"m512_n512_x{i}")
            a = boot_runtime().run_op(op, Phase.FORWARD, 1)
            b = boot_runtime().run_op(op, Phase.FORWARD, 128)
            if a.kernel_names != b.kernel_names:
                differed = True
                break
        assert differed

    def test_batch_insensitive_kind_shares_variant(self):
        op = OpInstance(OpKind.ACTIVATION, "relu_c64")
        a = boot_runtime().run_op(op, Phase.FORWARD, 1)
        b = boot_runtime().run_op(op, Phase.FORWARD, 128)
        assert a.kernel_names == b.kernel_names

    def test_core_kernels_resolved_on_first_use(self):
        rt = boot_runtime()
        op = OpInstance(OpKind.ACTIVATION, "relu_c64")
        rt.run_op(op, Phase.FORWARD, 16)
        layout = rt.framework.libraries["libtorch_cuda.so"].tags["layout"]
        core_names = {
            n for p in layout.core_plans() for n in p.entry_names()
        }
        assert core_names <= rt.used_kernels["libtorch_cuda.so"]

    def test_cpu_pools_exercised_once(self):
        rt = boot_runtime()
        op1 = OpInstance(OpKind.ACTIVATION, "a")
        op2 = OpInstance(OpKind.ACTIVATION, "b")
        rt.run_op(op1, Phase.FORWARD, 16)
        used_after_first = rt.used_function_indices()["libtorch_cpu.so"].size
        rt.run_op(op2, Phase.FORWARD, 16)
        assert rt.used_function_indices()["libtorch_cpu.so"].size == (
            used_after_first
        )

    def test_unrouted_kind_rejected(self):
        rt = boot_runtime()
        op = OpInstance(OpKind.MISC, "x")
        with pytest.raises(ConfigurationError):
            rt.run_op(op, Phase.FORWARD, 1)

    def test_tf_pool_preallocation(self):
        rt = boot_runtime(
            "tensorflow", features=frozenset({"vision", "conv", "train"})
        )
        driver = rt.drivers[0]
        pool = driver.device_memory.by_category.get("framework_pool", 0)
        assert pool > 0.7 * driver.device.memory_bytes

    def test_tf_tensor_allocs_inside_pool(self):
        rt = boot_runtime(
            "tensorflow", features=frozenset({"vision", "conv", "train"})
        )
        before = rt.drivers[0].device_memory.current
        rt.alloc_tensor(0, "activations", 1 << 30)
        assert rt.drivers[0].device_memory.current == before

    def test_vllm_pool_fills_to_target(self):
        rt = boot_runtime("vllm", features=frozenset({"text", "llm", "inference"}))
        rt.alloc_tensor(0, "weights", 4 << 30)
        rt.fill_device_pool()
        driver = rt.drivers[0]
        target = 0.9 * driver.device.memory_bytes
        assert driver.device_memory.current == pytest.approx(target, rel=0.01)

    def test_distributed_uses_more_variants(self):
        op = OpInstance(OpKind.GEMM, "m4096")
        single = boot_runtime(features=frozenset({"text"}))
        multi = boot_runtime(features=frozenset({"text"}),
                             devices=("a100-40gb",) * 4)
        a = single.run_op(op, Phase.FORWARD, 1)
        b = multi.run_op(op, Phase.FORWARD, 1)
        assert len(set(b.kernel_names)) > len(set(a.kernel_names))

"""Workload tests: models, datasets, specs, runner determinism and metrics."""

from __future__ import annotations

import pytest

from repro.cuda.driver import LoadingMode
from repro.errors import ConfigurationError
from repro.workloads.datasets import DATASETS, get_dataset
from repro.workloads.models import (
    LEADERBOARD_LLMS,
    get_model,
    llama2_7b,
    mobilenet_v2,
    transformer_base,
)
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import TABLE1_WORKLOADS, WorkloadSpec, workload_by_id

from tests.conftest import TEST_SCALE
from repro.frameworks.catalog import get_framework


class TestDatasets:
    def test_catalog(self):
        assert set(DATASETS) == {"cifar10", "multi30k", "wmt14", "manual"}

    def test_cifar_counts(self):
        ds = get_dataset("cifar10")
        assert ds.train_samples == 50_000
        assert ds.test_samples == 10_000

    def test_splits(self):
        ds = get_dataset("multi30k")
        assert ds.samples("train") == 29_000
        with pytest.raises(ConfigurationError):
            ds.samples("validation")

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_dataset("imagenet")


class TestModels:
    def test_mobilenet_structure(self):
        model = mobilenet_v2()
        convs = [op for op in model.ops if op.kind.value == "conv2d"]
        dws = [op for op in model.ops if op.kind.value == "dwconv"]
        assert len(dws) == 17  # one depthwise per inverted-residual block
        assert len(convs) > 30
        # Distinct shape signatures per stage (repeat blocks within a stage
        # legitimately share signatures) -> many unique kernels.
        distinct = len({op.shape_sig for op in convs})
        assert 15 <= distinct < len(convs)

    def test_mobilenet_params(self):
        assert mobilenet_v2().params == pytest.approx(4.3e6, rel=0.01)

    def test_transformer_repeats_shapes(self):
        model = transformer_base()
        gemms = [op for op in model.ops if op.kind.value == "gemm"]
        # 6 encoder + 6 decoder layers reuse identical signatures.
        assert len({op.shape_sig for op in gemms}) < len(gemms)

    def test_llama_is_fp16_decoder(self):
        model = llama2_7b()
        assert model.weights_dtype_bytes == 2
        assert model.gen_tokens == 64
        assert model.kv_bytes_per_token > 0

    def test_leaderboard_models(self):
        assert len(LEADERBOARD_LLMS) == 9
        assert get_model("yi-15-34b").params == pytest.approx(34.4e9)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")

    def test_flops_per_sample(self):
        ds = get_dataset("multi30k")
        model = transformer_base()
        assert model.flops_per_sample(ds) == pytest.approx(
            2 * model.params * ds.tokens_per_sample
        )
        assert mobilenet_v2().flops_per_sample(ds) == 0.3e9

    def test_activation_bytes(self):
        model = mobilenet_v2()
        assert model.activation_bytes(16, True) > model.activation_bytes(16, False)


class TestWorkloadSpec:
    def test_table1_has_ten(self):
        assert len(TABLE1_WORKLOADS) == 10

    def test_ids_unique(self):
        ids = [w.workload_id for w in TABLE1_WORKLOADS]
        assert len(set(ids)) == len(ids)

    def test_lookup(self):
        spec = workload_by_id("pytorch/train/mobilenetv2")
        assert spec.batch_size == 16
        assert spec.epochs == 3
        with pytest.raises(ConfigurationError):
            workload_by_id("caffe/train/alexnet")

    def test_n_batches_training(self):
        spec = workload_by_id("pytorch/train/mobilenetv2")
        assert spec.n_batches() == 3 * (50_000 // 16)

    def test_n_batches_inference_single(self):
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        assert spec.n_batches() == 1

    def test_n_batches_llm_decode(self):
        spec = workload_by_id("vllm/inference/llama2-7b")
        assert spec.n_batches() == 64

    def test_features(self):
        spec = workload_by_id("pytorch/train/mobilenetv2")
        assert spec.features == frozenset({"vision", "conv", "train"})

    def test_variant(self):
        spec = workload_by_id("vllm/inference/llama2-7b").variant(
            device_name="h100", loading_mode=LoadingMode.LAZY
        )
        assert spec.devices()[0].sm_arch == 90
        assert spec.loading_mode is LoadingMode.LAZY

    def test_train_needs_train_split(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                framework="vllm",
                operation="train",
                model=llama2_7b(),
                dataset=get_dataset("manual"),
                batch_size=1,
            )


class TestRunner:
    @pytest.fixture(scope="class")
    def metrics(self):
        spec = workload_by_id("pytorch/train/mobilenetv2")
        fw = get_framework("pytorch", scale=TEST_SCALE)
        return WorkloadRunner(spec, fw).run()

    def test_deterministic(self, metrics):
        spec = workload_by_id("pytorch/train/mobilenetv2")
        fw = get_framework("pytorch", scale=TEST_SCALE)
        again = WorkloadRunner(spec, fw).run()
        assert again.execution_time_s == metrics.execution_time_s
        assert again.peak_cpu_mem_bytes == metrics.peak_cpu_mem_bytes
        assert again.peak_gpu_mem_bytes == metrics.peak_gpu_mem_bytes
        assert again.output_digest == metrics.output_digest
        assert again.used_kernels == metrics.used_kernels

    def test_loads_expected_libraries(self, metrics):
        assert metrics.counters["n_libraries"] == 113  # paper Table 2

    def test_launch_volume_matches_batches(self, metrics):
        spec = workload_by_id("pytorch/train/mobilenetv2")
        assert metrics.counters["launches"] > spec.n_batches() * 100

    def test_kernels_used_nontrivial(self, metrics):
        assert metrics.total_used_kernels() > 50
        assert "libtorch_cuda.so" in metrics.used_kernels
        assert "libcudnn_cnn_infer.so.8" in metrics.used_kernels

    def test_functions_used_nontrivial(self, metrics):
        assert metrics.total_used_functions() > 500

    def test_train_uses_more_kernels_than_inference(self, metrics):
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        fw = get_framework("pytorch", scale=TEST_SCALE)
        infer = WorkloadRunner(spec, fw).run()
        assert infer.total_used_kernels() < metrics.total_used_kernels()

    def test_digest_differs_across_workloads(self, metrics):
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        fw = get_framework("pytorch", scale=TEST_SCALE)
        other = WorkloadRunner(spec, fw).run()
        assert other.output_digest != metrics.output_digest

    def test_epochs_scale_time_not_memory(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        short = WorkloadRunner(
            workload_by_id("pytorch/train/mobilenetv2").variant(epochs=1), fw
        ).run()
        long = WorkloadRunner(
            workload_by_id("pytorch/train/mobilenetv2").variant(epochs=3), fw
        ).run()
        assert long.execution_time_s > 2 * short.execution_time_s
        assert long.peak_gpu_mem_bytes == short.peak_gpu_mem_bytes

    def test_lazy_mode_lower_cpu_memory(self):
        fw = get_framework("transformers", scale=TEST_SCALE)
        spec = workload_by_id("transformers/inference/llama2-7b")
        eager = WorkloadRunner(spec, fw).run()
        lazy = WorkloadRunner(
            spec.variant(loading_mode=LoadingMode.LAZY), fw
        ).run()
        assert lazy.peak_cpu_mem_bytes < eager.peak_cpu_mem_bytes

    def test_all_workloads_run(self, all_workloads):
        for spec in all_workloads:
            fw = get_framework(spec.framework, scale=TEST_SCALE)
            m = WorkloadRunner(spec, fw).run()
            assert m.execution_time_s > 0
            assert m.peak_gpu_mem_bytes > 0

    def test_distributed_inference_runs(self):
        from repro.experiments.table10_distributed import distributed_spec

        spec = distributed_spec("vllm", LEADERBOARD_LLMS[1])
        fw = get_framework("vllm", scale=TEST_SCALE)
        m = WorkloadRunner(spec, fw).run()
        # Every GPU-code library is loaded as a module on each of 8 ranks.
        assert m.counters["modules_loaded"] % 8 == 0
        assert m.counters["modules_loaded"] >= 8

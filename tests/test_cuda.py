"""CUDA simulator tests: clock, memory, CUPTI, driver, module loading."""

from __future__ import annotations

import pytest

from repro.cuda.arch import DEVICES, get_device
from repro.cuda.clock import VirtualClock
from repro.cuda.costs import CostModel
from repro.cuda.cupti import CallbackInfo, CallbackSite, Cupti
from repro.cuda.driver import CudaDriver, LoadingMode
from repro.cuda.memory import MemoryMeter
from repro.errors import (
    ConfigurationError,
    CudaArchMismatchError,
    CudaError,
    DoubleFreeError,
    MissingKernelError,
    OutOfMemoryError,
)

from tests.conftest import build_small_library


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        c = VirtualClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_measure(self):
        c = VirtualClock()
        with c.measure() as elapsed:
            c.advance(3.0)
        assert elapsed() == 3.0


class TestMemoryMeter:
    def test_peak_tracking(self):
        m = MemoryMeter("m")
        a = m.allocate("x", 100)
        b = m.allocate("x", 50)
        m.free(a)
        assert m.current == 50
        assert m.peak == 150

    def test_category_breakdown(self):
        m = MemoryMeter("m")
        m.allocate("code", 10)
        m.allocate("data", 5)
        assert m.by_category == {"code": 10, "data": 5}

    def test_category_peaks(self):
        m = MemoryMeter("m")
        a = m.allocate("code", 10)
        m.free(a)
        m.allocate("code", 3)
        assert m.peak_by_category["code"] == 10

    def test_capacity_enforced(self):
        m = MemoryMeter("m", capacity=100)
        m.allocate("x", 90)
        with pytest.raises(OutOfMemoryError):
            m.allocate("x", 20)

    def test_double_free(self):
        m = MemoryMeter("m")
        a = m.allocate("x", 1)
        a.free()
        with pytest.raises(DoubleFreeError):
            a.free()

    def test_foreign_allocation_rejected(self):
        a = MemoryMeter("a").allocate("x", 1)
        with pytest.raises(ValueError):
            MemoryMeter("b").free(a)

    def test_headroom(self):
        m = MemoryMeter("m", capacity=10)
        m.allocate("x", 4)
        assert m.headroom() == 6
        assert MemoryMeter("n").headroom() is None

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryMeter("m").allocate("x", -1)


class _Recorder:
    sites = frozenset({CallbackSite.CU_MODULE_GET_FUNCTION})

    def __init__(self, cost=0.5):
        self.cost = cost
        self.events = []

    def cost_per_event(self, site):
        return self.cost

    def on_event(self, info):
        self.events.append(info)


class TestCupti:
    def test_dispatch_charges_cost(self):
        clock = VirtualClock()
        cupti = Cupti(clock, attach_cost=1.0)
        rec = _Recorder(cost=0.25)
        cupti.subscribe(rec)
        assert clock.now == 1.0
        cupti.emit(CallbackInfo(CallbackSite.CU_MODULE_GET_FUNCTION, count=4))
        assert clock.now == 2.0
        assert len(rec.events) == 1

    def test_uninterested_site_free(self):
        clock = VirtualClock()
        cupti = Cupti(clock)
        rec = _Recorder()
        cupti.subscribe(rec)
        cupti.emit(CallbackInfo(CallbackSite.CU_LAUNCH_KERNEL, count=100))
        assert clock.now == 0.0
        assert rec.events == []

    def test_double_subscribe_rejected(self):
        cupti = Cupti(VirtualClock())
        rec = _Recorder()
        cupti.subscribe(rec)
        from repro.errors import DetectionError

        with pytest.raises(DetectionError):
            cupti.subscribe(rec)

    def test_unsubscribe(self):
        cupti = Cupti(VirtualClock())
        rec = _Recorder()
        cupti.subscribe(rec)
        cupti.unsubscribe(rec)
        cupti.emit(CallbackInfo(CallbackSite.CU_MODULE_GET_FUNCTION))
        assert rec.events == []

    def test_zero_count_ignored(self):
        cupti = Cupti(VirtualClock())
        rec = _Recorder()
        cupti.subscribe(rec)
        cupti.emit(CallbackInfo(CallbackSite.CU_MODULE_GET_FUNCTION, count=0))
        assert rec.events == []


class TestDevices:
    def test_catalog_has_paper_devices(self):
        assert get_device("t4").sm_arch == 75
        assert get_device("a100-40gb").sm_arch == 80
        assert get_device("h100").sm_arch == 90

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError):
            get_device("tpu-v5")

    def test_memory_sizes_sane(self):
        for device in DEVICES.values():
            assert device.memory_bytes >= 16 << 30


def make_driver(mode=LoadingMode.EAGER, device="t4"):
    return CudaDriver(
        device=get_device(device),
        clock=VirtualClock(),
        loading_mode=mode,
    )


class TestDriver:
    def test_requires_init(self, small_library):
        driver = make_driver()
        with pytest.raises(CudaError):
            driver.module_load(small_library)

    def test_init_allocates_context(self):
        driver = make_driver()
        driver.init()
        assert driver.device_memory.by_category["context"] > 0

    def test_init_idempotent(self):
        driver = make_driver()
        driver.init()
        now = driver.clock.now
        driver.init()
        assert driver.clock.now == now

    def test_eager_loads_matching_elements(self, small_library):
        driver = make_driver()
        driver.init()
        module = driver.module_load(small_library)
        # archs (70, 75) x 2 cubins: T4 matches sm_75 -> 2 elements.
        assert len(module.matching_elements) == 2
        assert driver.counters.elements_loaded == 2
        assert driver.gpu_code_resident_bytes() > 0

    def test_lazy_defers_element_load(self, small_library):
        driver = make_driver(mode=LoadingMode.LAZY)
        driver.init()
        module = driver.module_load(small_library)
        assert driver.counters.elements_loaded == 0
        driver.module_get_function(module, "k_0_0")
        assert driver.counters.elements_loaded == 1

    def test_module_load_cached(self, small_library):
        driver = make_driver()
        driver.init()
        m1 = driver.module_load(small_library)
        m2 = driver.module_load(small_library)
        assert m1 is m2
        assert driver.counters.modules_loaded == 1

    def test_arch_mismatch_raises(self, small_library):
        driver = make_driver(device="h100")  # sm_90 not in (70, 75)
        driver.init()
        with pytest.raises(CudaArchMismatchError):
            driver.module_load(small_library)

    def test_get_function_resolves_entry(self, small_library):
        driver = make_driver()
        driver.init()
        module = driver.module_load(small_library)
        handle = driver.module_get_function(module, "k_1_1")
        assert handle.kernel_name == "k_1_1"

    def test_get_function_missing_kernel(self, small_library):
        driver = make_driver()
        driver.init()
        module = driver.module_load(small_library)
        with pytest.raises(MissingKernelError):
            driver.module_get_function(module, "nonexistent")

    def test_device_only_kernel_not_resolvable(self, small_library):
        """GPU-launching kernels never pass through cuModuleGetFunction."""
        driver = make_driver()
        driver.init()
        module = driver.module_load(small_library)
        # conftest cubins: last kernel is device-launched (edge 0 -> n-1).
        with pytest.raises(MissingKernelError):
            driver.module_get_function(module, "k_0_3")

    def test_unique_kernel_counted_once(self, small_library):
        driver = make_driver()
        driver.init()
        module = driver.module_load(small_library)
        driver.module_get_function(module, "k_0_0")
        driver.module_get_function(module, "k_0_0")
        assert driver.counters.get_function_calls == 2
        assert driver.counters.unique_kernels == 1

    def test_launch_counts_and_duration(self, small_library):
        driver = make_driver()
        driver.init()
        module = driver.module_load(small_library)
        handle = driver.module_get_function(module, "k_0_0")
        before = driver.clock.now
        driver.launch_kernel(handle, count=1000, duration=2.0)
        assert driver.counters.launches == 1000
        assert driver.clock.now >= before + 2.0

    def test_launch_unloaded_module_rejected(self, small_library):
        driver = make_driver()
        driver.init()
        module = driver.module_load(small_library)
        handle = driver.module_get_function(module, "k_0_0")
        other = make_driver()
        other.init()
        with pytest.raises(CudaError):
            other.launch_kernel(handle)

    def test_memcpy_h2d(self):
        driver = make_driver()
        driver.init()
        before = driver.clock.now
        driver.memcpy_h2d("weights", 1 << 30)
        assert driver.device_memory.by_category["weights"] == 1 << 30
        assert driver.clock.now > before

    def test_detector_overhead_constant_in_launches(self, small_library):
        """The §3.1 property: detection cost independent of launch count."""
        costs = CostModel()

        def run(launches: int) -> float:
            from repro.core.detect import KernelDetector

            driver = make_driver()
            detector = KernelDetector(costs)
            driver.cupti.subscribe(detector)
            driver.init()
            module = driver.module_load(small_library)
            handle = driver.module_get_function(module, "k_0_0")
            start = driver.clock.now
            driver.launch_kernel(handle, count=launches)
            return driver.clock.now - start - launches * costs.kernel_launch

        assert run(10) == pytest.approx(run(100_000))

"""Unit + property tests for the interval algebra (the tool's core currency)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.intervals import Range, RangeSet


def ranges_strategy(max_val: int = 200, max_count: int = 8):
    pair = st.tuples(
        st.integers(0, max_val), st.integers(0, max_val)
    ).map(lambda ab: (min(ab), max(ab)))
    return st.lists(pair, max_size=max_count).map(RangeSet)


class TestRange:
    def test_length(self):
        assert len(Range(3, 10)) == 7

    def test_empty_allowed(self):
        assert len(Range(5, 5)) == 0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Range(-1, 4)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Range(6, 2)

    def test_contains(self):
        r = Range(2, 5)
        assert 2 in r and 4 in r
        assert 5 not in r and 1 not in r

    def test_overlaps(self):
        assert Range(0, 5).overlaps(Range(4, 9))
        assert not Range(0, 5).overlaps(Range(5, 9))

    def test_touches_adjacent(self):
        assert Range(0, 5).touches(Range(5, 9))

    def test_intersect(self):
        assert Range(0, 5).intersect(Range(3, 9)) == Range(3, 5)
        assert Range(0, 3).intersect(Range(4, 9)) is None

    def test_shift(self):
        assert Range(1, 4).shift(10) == Range(11, 14)

    def test_ordering(self):
        assert Range(1, 5) < Range(2, 3)


class TestRangeSetConstruction:
    def test_empty(self):
        assert not RangeSet.empty()
        assert RangeSet.empty().total() == 0

    def test_drops_empty_ranges(self):
        assert len(RangeSet([(3, 3), (5, 5)])) == 0

    def test_merges_overlapping(self):
        rs = RangeSet([(0, 5), (3, 8)])
        assert rs.ranges == (Range(0, 8),)

    def test_merges_adjacent(self):
        rs = RangeSet([(0, 5), (5, 8)])
        assert rs.ranges == (Range(0, 8),)

    def test_keeps_disjoint(self):
        rs = RangeSet([(0, 2), (4, 6)])
        assert len(rs) == 2

    def test_sorts(self):
        rs = RangeSet([(10, 12), (0, 2)])
        assert rs.ranges[0] == Range(0, 2)

    def test_accepts_tuples_and_ranges(self):
        rs = RangeSet([Range(0, 1), (2, 3)])
        assert rs.total() == 2

    def test_single(self):
        assert RangeSet.single(4, 9).total() == 5

    def test_equality_and_hash(self):
        a = RangeSet([(0, 3), (3, 6)])
        b = RangeSet([(0, 6)])
        assert a == b
        assert hash(a) == hash(b)


class TestRangeSetQueries:
    def test_total(self):
        assert RangeSet([(0, 3), (10, 14)]).total() == 7

    def test_contains_offset(self):
        rs = RangeSet([(0, 3), (10, 14)])
        assert rs.contains_offset(0)
        assert rs.contains_offset(13)
        assert not rs.contains_offset(3)
        assert not rs.contains_offset(9)

    def test_covers_full(self):
        rs = RangeSet([(0, 10)])
        assert rs.covers((2, 8))
        assert not rs.covers((8, 12))

    def test_covers_empty_range(self):
        assert RangeSet.empty().covers((5, 5))

    def test_covers_across_merge(self):
        rs = RangeSet([(0, 5), (5, 10)])
        assert rs.covers((3, 8))

    def test_bounds(self):
        assert RangeSet([(3, 4), (8, 12)]).bounds() == Range(3, 12)
        assert RangeSet.empty().bounds() is None


class TestRangeSetAlgebra:
    def test_union(self):
        a = RangeSet([(0, 3)])
        b = RangeSet([(2, 6)])
        assert (a | b).ranges == (Range(0, 6),)

    def test_intersection(self):
        a = RangeSet([(0, 5), (10, 15)])
        b = RangeSet([(3, 12)])
        assert (a & b).ranges == (Range(3, 5), Range(10, 12))

    def test_difference(self):
        a = RangeSet([(0, 10)])
        b = RangeSet([(3, 5), (7, 8)])
        assert (a - b).ranges == (Range(0, 3), Range(5, 7), Range(8, 10))

    def test_difference_no_overlap(self):
        a = RangeSet([(0, 5)])
        b = RangeSet([(10, 20)])
        assert (a - b) == a

    def test_complement(self):
        rs = RangeSet([(2, 4)])
        assert rs.complement((0, 6)).ranges == (Range(0, 2), Range(4, 6))

    def test_shift(self):
        rs = RangeSet([(0, 2), (5, 6)]).shift(100)
        assert rs.ranges == (Range(100, 102), Range(105, 106))

    def test_clamp(self):
        rs = RangeSet([(0, 10)]).clamp((3, 7))
        assert rs.ranges == (Range(3, 7),)


class TestRangeSetProperties:
    @given(ranges_strategy(), ranges_strategy())
    def test_union_commutative(self, a, b):
        assert (a | b) == (b | a)

    @given(ranges_strategy(), ranges_strategy())
    def test_intersection_commutative(self, a, b):
        assert (a & b) == (b & a)

    @given(ranges_strategy(), ranges_strategy())
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert not ((a - b) & b)

    @given(ranges_strategy(), ranges_strategy())
    def test_difference_union_restores(self, a, b):
        """(a - b) | (a & b) == a: removal is lossless partitioning."""
        assert ((a - b) | (a & b)) == a

    @given(ranges_strategy())
    def test_complement_partitions_universe(self, a):
        universe = Range(0, 256)
        clamped = a.clamp(universe)
        comp = clamped.complement(universe)
        assert clamped.total() + comp.total() == len(universe)
        assert not (clamped & comp)

    @given(ranges_strategy(), ranges_strategy(), ranges_strategy())
    def test_union_associative(self, a, b, c):
        assert ((a | b) | c) == (a | (b | c))

    @given(ranges_strategy())
    def test_normalization_idempotent(self, a):
        assert RangeSet(a.ranges) == a

    @given(ranges_strategy(), st.integers(0, 255))
    def test_contains_matches_linear_scan(self, a, offset):
        expected = any(offset in r for r in a)
        assert a.contains_offset(offset) == expected

"""Tests for the write-ahead admissions log: framing, healing, fuzz.

The WAL's one promise is that :func:`repro.serving.wal.scan_wal` recovers
the longest valid record prefix from *any* byte string without raising -
torn tails, bit flips, interleaved garbage, duplicate sequence numbers.
The hypothesis suite hammers exactly that promise; the unit tests cover
the log object's append/sync/truncate/heal lifecycle around it.
"""

from __future__ import annotations

import os
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import serialize
from repro.errors import FaultError, WalError
from repro.serving.wal import (
    MAX_RECORD_BYTES,
    WAL_KIND,
    WriteAheadLog,
    scan_wal,
)
from repro.testing import faults
from repro.utils import atomicio

_LEN = struct.Struct("<I")


def frame(record: dict) -> bytes:
    blob = serialize.value_dumps(record, WAL_KIND)
    return _LEN.pack(len(blob)) + blob


def wal_bytes(n: int, start_seq: int = 1) -> bytes:
    return b"".join(
        frame({"op": "admit", "seq": start_seq + i, "payload": i})
        for i in range(n)
    )


# -- scan_wal -----------------------------------------------------------------


def test_scan_empty_and_clean():
    assert scan_wal(b"").records == ()
    data = wal_bytes(3)
    scan = scan_wal(data)
    assert [r["seq"] for r in scan.records] == [1, 2, 3]
    assert scan.valid_length == len(data)
    assert scan.torn_bytes == 0
    assert scan.last_seq == 3


def test_scan_stops_at_truncated_tail():
    data = wal_bytes(3)
    for cut in range(1, len(frame({"op": "admit", "seq": 3, "payload": 2}))):
        scan = scan_wal(data[: len(data) - cut])
        assert [r["seq"] for r in scan.records] == [1, 2]
        assert scan.torn_bytes > 0


def test_scan_stops_at_bit_flip():
    data = bytearray(wal_bytes(3))
    # Flip a byte inside the second record's container body (past its
    # length prefix) - the CRC catches it, record 1 survives.
    first_end = scan_wal(bytes(data)).frames[0][1]
    data[first_end + _LEN.size + 8] ^= 0xFF
    scan = scan_wal(bytes(data))
    assert [r["seq"] for r in scan.records] == [1]


def test_scan_rejects_zero_oversize_and_garbage_lengths():
    good = wal_bytes(2)
    assert len(scan_wal(good + _LEN.pack(0) + b"x").records) == 2
    assert len(
        scan_wal(good + _LEN.pack(MAX_RECORD_BYTES + 1)).records
    ) == 2
    assert len(scan_wal(good + b"\xff\xff").records) == 2


def test_scan_rejects_duplicate_and_regressing_seq():
    dup = wal_bytes(2) + frame({"op": "admit", "seq": 2, "payload": 9})
    assert [r["seq"] for r in scan_wal(dup).records] == [1, 2]
    back = wal_bytes(2) + frame({"op": "admit", "seq": 1, "payload": 9})
    assert [r["seq"] for r in scan_wal(back).records] == [1, 2]


def test_scan_rejects_bad_seq_types_and_shapes():
    assert scan_wal(frame({"op": "admit", "seq": 0})).records == ()
    assert scan_wal(frame({"op": "admit", "seq": True})).records == ()
    assert scan_wal(frame({"op": "admit", "seq": "1"})).records == ()
    blob = serialize.value_dumps(["not", "a", "dict"], WAL_KIND)
    assert scan_wal(_LEN.pack(len(blob)) + blob).records == ()


def test_scan_accepts_gapped_but_increasing_seq():
    # truncate_through leaves a first record with seq > 1; scanning must
    # accept any strictly increasing run, not only 1..N.
    data = frame({"op": "admit", "seq": 5}) + frame({"op": "evict", "seq": 9})
    assert [r["seq"] for r in scan_wal(data).records] == [5, 9]


# -- hypothesis fuzz ----------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=5),
    cut=st.integers(min_value=0, max_value=400),
)
def test_fuzz_truncation_recovers_prefix(n, cut):
    data = wal_bytes(n)
    scan = scan_wal(data[: max(0, len(data) - cut)])
    expect = [r["seq"] for r in scan_wal(data).records]
    got = [r["seq"] for r in scan.records]
    assert got == expect[: len(got)]
    assert got == list(range(1, len(got) + 1))


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5),
    pos=st.integers(min_value=0, max_value=10_000),
    flip=st.integers(min_value=1, max_value=255),
)
def test_fuzz_bit_flip_never_raises_and_yields_prefix(n, pos, flip):
    data = bytearray(wal_bytes(n))
    pos %= len(data)
    data[pos] ^= flip
    scan = scan_wal(bytes(data))  # must not raise
    original = scan_wal(wal_bytes(n)).records
    # Whatever survives is a prefix of the original records.
    assert scan.records == original[: len(scan.records)]


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=4),
    garbage=st.binary(max_size=64),
    insert_at_record=st.integers(min_value=0, max_value=4),
)
def test_fuzz_interleaved_garbage_never_raises(n, garbage, insert_at_record):
    clean = scan_wal(wal_bytes(n))
    k = min(insert_at_record, len(clean.frames))
    split = clean.frames[k - 1][1] if k else 0
    data = wal_bytes(n)
    mutated = data[:split] + garbage + data[split:]
    scan = scan_wal(mutated)  # must not raise
    assert scan.records == clean.records[: len(scan.records)]
    assert len(scan.records) >= 0


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=512))
def test_fuzz_arbitrary_bytes_never_raise(data):
    scan = scan_wal(data)
    assert scan.valid_length <= scan.total_length == len(data)


# -- WriteAheadLog ------------------------------------------------------------


def test_append_roundtrip_and_reopen(tmp_path):
    path = str(tmp_path / "pytorch.wal")
    wal = WriteAheadLog(path, fsync="off")
    assert wal.append({"op": "admit", "payload": "a"}) == 1
    assert wal.append({"op": "evict", "payload": "b"}) == 2
    records = wal.records()
    assert [r["seq"] for r in records] == [1, 2]
    assert records[0]["payload"] == "a"
    wal.close()

    reopened = WriteAheadLog(path, fsync="off")
    assert reopened.last_seq == 2
    assert reopened.append({"op": "reset"}) == 3
    reopened.close()


def test_heal_quarantines_torn_tail(tmp_path):
    path = str(tmp_path / "shard.wal")
    wal = WriteAheadLog(path, fsync="off")
    for i in range(3):
        wal.append({"op": "admit", "payload": i})
    wal.close()
    with open(path, "ab") as fh:
        fh.write(b"\x40\x00\x00\x00partial-frame-garbage")

    healed = WriteAheadLog(path, fsync="off")
    assert healed.last_seq == 3
    assert healed.quarantined_bytes > 0
    assert healed.quarantine_path is not None
    assert os.path.exists(healed.quarantine_path)
    # The live log is exactly the valid prefix again.
    assert [r["seq"] for r in healed.records()] == [1, 2, 3]
    healed.close()
    # A second heal with another torn tail picks a fresh sidecar name.
    with open(path, "ab") as fh:
        fh.write(b"\x08\x00\x00\x00")
    again = WriteAheadLog(path, fsync="off")
    assert again.quarantine_path != healed.quarantine_path
    again.close()


def test_fsync_policies_sync_counts(tmp_path):
    always = WriteAheadLog(str(tmp_path / "a.wal"), fsync="always")
    for i in range(3):
        always.append({"op": "admit", "payload": i})
    assert always.syncs == 3
    always.close()

    batch = WriteAheadLog(
        str(tmp_path / "b.wal"), fsync="batch", fsync_batch_n=2
    )
    for i in range(3):
        batch.append({"op": "admit", "payload": i})
    assert batch.syncs == 1  # after the 2nd append
    batch.sync()
    assert batch.syncs == 2  # the odd one out
    batch.close()

    off = WriteAheadLog(str(tmp_path / "c.wal"), fsync="off")
    for i in range(3):
        off.append({"op": "admit", "payload": i})
    off.sync()
    off.close()
    assert off.syncs == 0


def test_truncate_through_keeps_tail(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "t.wal"), fsync="off")
    for i in range(5):
        wal.append({"op": "admit", "payload": i})
    assert wal.truncate_through(3) == 3
    assert [r["seq"] for r in wal.records()] == [4, 5]
    assert wal.truncate_through(3) == 0  # idempotent
    # Appends continue the old sequence, not restart at 1.
    assert wal.append({"op": "evict"}) == 6
    wal.close()


def test_append_after_close_raises(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "x.wal"), fsync="off")
    wal.close()
    with pytest.raises(WalError):
        wal.append({"op": "admit"})


def test_bad_policy_rejected(tmp_path):
    with pytest.raises(WalError):
        WriteAheadLog(str(tmp_path / "x.wal"), fsync="sometimes")


def test_fault_site_wal_append_leaves_clean_prefix(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "f.wal"), fsync="off")
    wal.append({"op": "admit", "payload": 0})
    plan = faults.FaultPlan(
        (faults.FaultRule("wal.append", ordinals=(1,)),), seed=7
    )
    with faults.fault_plan(plan):
        with pytest.raises(FaultError):
            wal.append({"op": "admit", "payload": 1})
    # The failed append wrote nothing; the next one continues cleanly.
    assert wal.append({"op": "admit", "payload": 2}) == 2
    assert [r["seq"] for r in wal.records()] == [1, 2]
    wal.close()


def test_no_fsync_env_skips_physical_sync(tmp_path, monkeypatch):
    monkeypatch.setenv(atomicio.NO_FSYNC_ENV, "1")
    assert not atomicio.fsync_enabled()
    wal = WriteAheadLog(str(tmp_path / "n.wal"), fsync="always")
    wal.append({"op": "admit"})
    assert wal.syncs == 1  # the policy accounting still runs
    wal.close()
    monkeypatch.delenv(atomicio.NO_FSYNC_ENV)
    assert atomicio.fsync_enabled()


def test_atomic_write_bytes_replaces_and_cleans_tmp(tmp_path):
    target = tmp_path / "out.bin"
    atomicio.atomic_write_bytes(str(target), b"one")
    atomicio.atomic_write_bytes(str(target), b"two")
    assert target.read_bytes() == b"two"
    leftovers = [p for p in tmp_path.iterdir() if p.name != "out.bin"]
    assert leftovers == []

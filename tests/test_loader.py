"""Loader/process tests: residency modes, function calls, profiler, linker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuda.driver import LoadingMode
from repro.errors import (
    LibraryNotFoundError,
    MissingFunctionError,
    SymbolResolutionError,
)
from repro.loader.linker import resolve_symbol
from repro.loader.process import ProcessImage
from repro.loader.profiler import FunctionProfiler

from tests.conftest import build_small_library


def make_process(mode=LoadingMode.EAGER):
    return ProcessImage(loading_mode=mode)


class TestLoadLibrary:
    def test_eager_residency_is_full_file(self, small_library):
        p = make_process()
        loaded = p.load_library(small_library)
        assert loaded.resident_bytes == small_library.file_size

    def test_lazy_residency_is_structural(self, small_library):
        p = make_process(LoadingMode.LAZY)
        loaded = p.load_library(small_library)
        assert loaded.resident_bytes <= small_library.data.materialized_size
        assert loaded.resident_bytes < small_library.file_size

    def test_debloated_residency_excludes_removed(self, small_library):
        lib = small_library.copy()
        lib.tags["removed_bytes_total"] = 500
        p = make_process()
        loaded = p.load_library(lib)
        assert loaded.resident_bytes == lib.file_size - 500

    def test_load_charges_io_time(self, small_library):
        p = make_process()
        before = p.clock.now
        p.load_library(small_library)
        expected_io = small_library.file_size / p.costs.disk_bandwidth
        assert p.clock.now >= before + expected_io

    def test_load_idempotent(self, small_library):
        p = make_process()
        a = p.load_library(small_library)
        b = p.load_library(small_library)
        assert a is b

    def test_interpreter_baseline_allocated(self):
        p = make_process()
        assert p.host_memory.current >= p.costs.interpreter_host_bytes

    def test_require_unknown(self):
        with pytest.raises(LibraryNotFoundError):
            make_process().require("nope.so")


class TestCallFunctions:
    def test_marks_used(self, small_library):
        p = make_process()
        p.load_library(small_library)
        p.call_functions(small_library.soname, np.array([0, 3, 3]))
        used = p.used_function_indices()[small_library.soname]
        assert list(used) == [0, 3]

    def test_out_of_range_rejected(self, small_library):
        p = make_process()
        p.load_library(small_library)
        with pytest.raises(MissingFunctionError):
            p.call_functions(small_library.soname, np.array([999]))

    def test_removed_function_raises(self, small_library):
        lib = small_library.copy()
        mask = np.zeros(len(lib.symtab), dtype=bool)
        mask[2] = True
        lib.tags["removed_function_mask"] = mask
        p = make_process()
        p.load_library(lib)
        p.call_functions(lib.soname, np.array([0, 1]))  # fine
        with pytest.raises(MissingFunctionError) as err:
            p.call_functions(lib.soname, np.array([2]))
        assert "fn_2" in str(err.value)

    def test_lazy_mode_charges_touched_code(self, small_library):
        p = make_process(LoadingMode.LAZY)
        p.load_library(small_library)
        before = p.host_memory.current
        p.call_functions(small_library.soname, np.array([0, 1]))
        assert p.host_memory.current == before + 128  # 2 functions x 64 B

    def test_eager_mode_no_extra_residency(self, small_library):
        p = make_process()
        p.load_library(small_library)
        before = p.host_memory.current
        p.call_functions(small_library.soname, np.array([0, 1]))
        assert p.host_memory.current == before

    def test_cpu_seconds_charged(self, small_library):
        p = make_process()
        p.load_library(small_library)
        before = p.clock.now
        p.call_functions(small_library.soname, np.zeros(0, dtype=np.int64),
                         cpu_seconds=2.5)
        assert p.clock.now == pytest.approx(before + 2.5)

    def test_profiler_slowdown_applied(self, small_library):
        p = make_process()
        p.load_library(small_library)
        p.attach_profiler(FunctionProfiler(attach_cost=0.0))
        before = p.clock.now
        p.call_functions(small_library.soname, np.zeros(0, dtype=np.int64),
                         cpu_seconds=1.0)
        assert p.clock.now == pytest.approx(
            before + p.costs.cpu_profiler_slowdown
        )


class TestProfiler:
    def test_records_only_fresh(self, small_library):
        p = make_process()
        p.load_library(small_library)
        profiler = FunctionProfiler(attach_cost=0.0)
        p.attach_profiler(profiler)
        p.call_functions(small_library.soname, np.array([1, 2]))
        p.call_functions(small_library.soname, np.array([2, 3]))
        used = profiler.used_functions()[small_library.soname]
        assert list(used) == [1, 2, 3]
        assert profiler.used_count() == 3

    def test_misses_pre_attach_usage(self, small_library):
        """Profiling-based detection only sees the profiled run - the
        reason Negativa profiles a dedicated run from process start."""
        p = make_process()
        p.load_library(small_library)
        p.call_functions(small_library.soname, np.array([0]))
        profiler = FunctionProfiler(attach_cost=0.0)
        p.attach_profiler(profiler)
        p.call_functions(small_library.soname, np.array([0, 1]))
        used = profiler.used_functions()[small_library.soname]
        assert list(used) == [1]

    def test_clear(self):
        profiler = FunctionProfiler()
        profiler.record("a.so", np.array([1]))
        profiler.clear()
        assert profiler.used_count() == 0

    def test_detach(self, small_library):
        p = make_process()
        p.load_library(small_library)
        profiler = FunctionProfiler(attach_cost=0.0)
        p.attach_profiler(profiler)
        p.detach_profiler()
        p.call_functions(small_library.soname, np.array([5]))
        assert profiler.used_count() == 0


class TestLinker:
    def test_resolves_global(self, small_library):
        lib, idx = resolve_symbol([small_library], "fn_4")
        assert lib is small_library
        assert idx == 4

    def test_first_definition_wins(self):
        a = build_small_library("a.so")
        b = build_small_library("b.so")
        lib, _ = resolve_symbol([a, b], "fn_0")
        assert lib is a

    def test_undefined_raises(self, small_library):
        with pytest.raises(SymbolResolutionError):
            resolve_symbol([small_library], "missing_symbol")

"""Fatbin container tests: headers, cubins, call graphs, parser, cuobjdump."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, CubinFormatError, FatbinFormatError
from repro.fatbin import constants as FC
from repro.fatbin.builder import FatbinBuilder
from repro.fatbin.cubin import Cubin, KernelFlags
from repro.fatbin.cuobjdump import (
    extract_cubins,
    find_kernel,
    kernel_inventory,
    list_fatbin_elements,
    total_gpu_code_bytes,
)
from repro.fatbin.parser import parse_fatbin
from repro.fatbin.structs import ElementHeader, RegionHeader
from repro.utils.sparsefile import SparseFile

from tests.conftest import build_small_library


def make_cubin(n=5, entries=2, edges=((0, 3), (1, 4))):
    mask = np.zeros(n, dtype=bool)
    mask[:entries] = True
    return Cubin.build(
        names=[f"k{i}" for i in range(n)],
        code_sizes=np.full(n, 100, dtype=np.int64),
        entry_mask=mask,
        launch_edges=list(edges),
    )


class TestHeaders:
    def test_region_roundtrip(self):
        hdr = RegionHeader(body_size=4096)
        assert RegionHeader.unpack(hdr.pack()) == hdr

    def test_region_magic_checked(self):
        raw = bytearray(RegionHeader().pack())
        raw[0] ^= 0xFF
        with pytest.raises(FatbinFormatError):
            RegionHeader.unpack(bytes(raw))

    def test_element_roundtrip(self):
        hdr = ElementHeader(sm_arch=80, payload_size=100, padded_payload_size=104)
        assert ElementHeader.unpack(hdr.pack()) == hdr

    def test_element_kind_checked(self):
        hdr = ElementHeader(kind=99, payload_size=8, padded_payload_size=8)
        with pytest.raises(FatbinFormatError):
            ElementHeader.unpack(hdr.pack())

    def test_element_padding_invariant(self):
        hdr = ElementHeader(payload_size=100, padded_payload_size=96)
        with pytest.raises(FatbinFormatError):
            ElementHeader.unpack(hdr.pack())

    def test_pad_to(self):
        assert FC.pad_to(5) == 8
        assert FC.pad_to(8) == 8
        assert FC.pad_to(0) == 0


class TestCubin:
    def test_build_counts(self):
        cubin = make_cubin()
        assert len(cubin) == 5
        assert cubin.code_size == 500
        assert cubin.entry_kernel_names() == ["k0", "k1"]

    def test_device_flags_from_edges(self):
        cubin = make_cubin()
        assert set(cubin.device_only_names()) == {"k3", "k4"}

    def test_launches(self):
        cubin = make_cubin()
        assert list(cubin.launches(0)) == [3]
        assert list(cubin.launches(2)) == []

    def test_call_graph_closure(self):
        cubin = make_cubin(edges=((0, 3), (3, 4)))
        assert cubin.call_graph_closure([0]) == {0, 3, 4}

    def test_closure_handles_cycles(self):
        cubin = make_cubin(edges=((0, 3), (3, 0)))
        assert cubin.call_graph_closure([0]) == {0, 3}

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_cubin(edges=((0, 99),))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Cubin.build(["a"], np.array([1, 2]), np.array([True]))

    def test_serialize_parse_roundtrip(self):
        cubin = make_cubin()
        out = SparseFile(0)
        size = cubin.serialize_into(out, 0)
        assert size == cubin.serialized_size()
        parsed = Cubin.parse(out, 0, size)
        assert parsed.names == cubin.names
        assert np.array_equal(parsed.edges, cubin.edges)
        assert parsed.entry_kernel_names() == cubin.entry_kernel_names()

    def test_code_area_stays_sparse(self):
        cubin = make_cubin()
        out = SparseFile(0)
        size = cubin.serialize_into(out, 0)
        assert out.materialized_size < size - cubin.code_size + 64

    def test_parse_bad_magic(self):
        out = SparseFile(64)
        with pytest.raises(CubinFormatError):
            Cubin.parse(out, 0, 64)

    def test_flags_enum(self):
        assert KernelFlags.ENTRY | KernelFlags.DEVICE == 3

    @settings(max_examples=50)
    @given(st.integers(1, 30), st.integers(0, 20))
    def test_roundtrip_property(self, n, n_edges):
        entries = max(1, n // 2)
        rng = np.random.default_rng(n * 31 + n_edges)
        edges = [
            (int(rng.integers(0, entries)), int(rng.integers(0, n)))
            for _ in range(n_edges)
        ]
        mask = np.zeros(n, dtype=bool)
        mask[:entries] = True
        cubin = Cubin.build(
            [f"k{i}" for i in range(n)],
            rng.integers(32, 512, size=n).astype(np.int64),
            mask,
            edges,
        )
        out = SparseFile(0)
        size = cubin.serialize_into(out, 128)
        parsed = Cubin.parse(out, 128, size)
        assert parsed.names == cubin.names
        assert np.array_equal(parsed.table["code_size"], cubin.table["code_size"])


class TestBuilderParser:
    def _image(self, archs=(70, 75), cubins=2):
        fb = FatbinBuilder()
        for arch in archs:
            region = fb.add_region()
            for _ in range(cubins):
                region.add_element(make_cubin(), sm_arch=arch)
        payload = fb.build()
        return parse_fatbin(payload.copy()), payload

    def test_element_indices_one_based_global(self):
        image, _ = self._image()
        assert [e.index for e in image.elements()] == [1, 2, 3, 4]

    def test_architectures(self):
        image, _ = self._image(archs=(90, 75))
        assert image.architectures() == [75, 90]

    def test_element_by_index(self):
        image, _ = self._image()
        assert image.element_by_index(3).sm_arch == 75
        with pytest.raises(FatbinFormatError):
            image.element_by_index(99)

    def test_element_ranges_disjoint_and_in_bounds(self):
        image, payload = self._image()
        prev_end = 0
        for element in image.elements():
            rng = element.file_range
            assert rng.start >= prev_end
            assert rng.stop <= payload.logical_size
            prev_end = rng.stop

    def test_empty_region_rejected(self):
        fb = FatbinBuilder()
        fb.add_region()
        with pytest.raises(ConfigurationError):
            fb.build()

    def test_invalid_arch_rejected(self):
        fb = FatbinBuilder()
        with pytest.raises(ConfigurationError):
            fb.add_region().add_element(make_cubin(), sm_arch=0)

    def test_truncated_fatbin_rejected(self):
        _, payload = self._image()
        truncated = SparseFile.from_bytes(payload.to_bytes()[:40])
        with pytest.raises(FatbinFormatError):
            parse_fatbin(truncated)

    def test_parse_with_base_offset(self):
        _, payload = self._image()
        shifted = SparseFile(payload.logical_size + 512)
        for extent in payload.extents():
            shifted.write(512 + extent.start,
                          payload.read(extent.start, len(extent)))
        image = parse_fatbin(shifted, base_offset=512,
                             size=payload.logical_size)
        assert image.element_count() == 4
        assert image.elements()[0].header_offset >= 512

    def test_cubin_lazy_parse(self):
        image, _ = self._image()
        element = image.elements()[0]
        assert element.cubin.kernel_names() == [f"k{i}" for i in range(5)]


class TestCuobjdump:
    def test_extract_matches_elements(self, small_library):
        cubins = extract_cubins(small_library)
        assert len(cubins) == small_library.element_count
        assert cubins[0].index == 1
        assert all("k_" in name for c in cubins for name in c.kernel_names)

    def test_extract_filename_convention(self, small_library):
        c = extract_cubins(small_library)[0]
        assert c.filename == f"extracted.1.sm_{c.sm_arch}.cubin"

    def test_listing(self, small_library):
        lines = list_fatbin_elements(small_library)
        assert len(lines) == small_library.element_count
        assert lines[0].startswith("ELF file 1:")

    def test_find_kernel(self, small_library):
        hits = find_kernel(small_library, "k_0_0")
        # Present in cubin 0 of every architecture.
        assert len(hits) == 2

    def test_inventory(self, small_library):
        inv = kernel_inventory(small_library)
        assert len(inv["k_0_0"]) == 2

    def test_total_bytes_within_section(self, small_library):
        assert total_gpu_code_bytes(small_library) <= small_library.gpu_code_size

    def test_no_gpu_library(self):
        lib = build_small_library(archs=())
        assert extract_cubins(lib) == []
        assert total_gpu_code_bytes(lib) == 0

"""Experiment harness and CLI tests.

Experiments run at the tiny test scale: we assert each produces its table
and that the *structural* paper-shape checks hold (a few checks are
scale-sensitive and only asserted at the default/benchmark scale; see
benchmarks/).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import common as excommon
from repro.experiments.cli import main as experiments_main
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.tools.cli import main as tool_main
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE


@pytest.fixture(autouse=True, scope="module")
def _warm_cache():
    """Experiments share the report cache; warm it once per module."""
    yield


class TestHarness:
    def test_report_cached(self, monkeypatch):
        # Pin an enabled cache so this holds under REPRO_PIPELINE_CACHE=0
        # CI legs too (the suite must pass with the global cache disabled).
        monkeypatch.setattr(
            excommon, "PIPELINE_CACHE", excommon.PipelineCache(enabled=True)
        )
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        a = excommon.report_for(spec, TEST_SCALE)
        b = excommon.report_for(spec, TEST_SCALE)
        assert a is b

    def test_cell_formats(self):
        assert excommon.cell_mb(100 << 20, 45 << 20) == "100 (55)"
        assert excommon.cell_count(616_000, 43_000) == "616K (93)"

    def test_shape_check_strings(self):
        assert excommon.shape_check("x", True).startswith("[PASS]")
        assert excommon.shape_check("x", False).startswith("[DEVIATION]")

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("table99")


class TestExperimentOutputs:
    def test_registry_complete(self):
        expected = {
            "fig1", "table1", "table2", "table3", "table4", "table5",
            "fig5", "fig6", "fig7", "table6", "table7", "table8",
            "sec46", "sec5_used_bloat", "sec5_saturation", "table9",
            "table10", "ablation_granularity",
            "ablation_arch", "ablation_detector_scaling",
        }
        assert set(EXPERIMENTS) == expected

    @pytest.mark.parametrize("eid", ["fig1", "table1"])
    def test_cheap_experiments_render(self, eid):
        out = run_experiment(eid, scale=TEST_SCALE)
        assert EXPERIMENTS[eid].TITLE.split(":")[0] in out

    def test_table2_checks_pass_at_test_scale(self):
        out = run_experiment("table2", scale=TEST_SCALE)
        assert "MobileNetV2" in out
        assert "[PASS] GPU code is more bloated than CPU code" in out

    def test_fig7_reason_i_dominates(self):
        out = run_experiment("fig7", scale=TEST_SCALE)
        assert "[PASS] Reason I" in out

    def test_table5_runs(self):
        out = run_experiment("table5", scale=TEST_SCALE)
        assert "Average absolute reduction" in out

    def test_sec46_detector_beats_nsys(self):
        out = run_experiment("sec46", scale=TEST_SCALE)
        assert "[PASS] Detector overhead well below NSys" in out

    def test_ablation_granularity(self):
        out = run_experiment("ablation_granularity", scale=TEST_SCALE)
        assert "[PASS] Exact-kernel retention breaks" in out

    def test_ablation_arch(self):
        out = run_experiment("ablation_arch", scale=TEST_SCALE)
        assert "[PASS] Single-arch build eliminates Reason I" in out

    def test_table6_modes_agree(self):
        out = run_experiment("table6", scale=TEST_SCALE)
        assert "size reductions identical across loading modes" in out

    def test_table7_lazy_collapse(self):
        out = run_experiment("table7", scale=TEST_SCALE)
        assert "[PASS] vllm: CPU-memory savings collapse under lazy loading" in out


class TestExperimentsCli:
    def test_list(self, capsys):
        assert experiments_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig7" in out

    def test_run_single(self, capsys, tmp_path):
        target = tmp_path / "out.txt"
        code = experiments_main(
            ["table1", "--scale", str(TEST_SCALE), "-o", str(target)]
        )
        assert code == 0
        assert "MobileNetV2" in target.read_text()


class TestToolCli:
    def test_workloads(self, capsys):
        assert tool_main(["workloads"]) == 0
        assert "pytorch/train/mobilenetv2" in capsys.readouterr().out

    def test_inspect(self, capsys):
        code = tool_main(
            ["--scale", str(TEST_SCALE), "inspect", "pytorch",
             "libtorch_cuda.so", "--sections", "--kernels"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GPU code (.nv_fatbin)" in out
        assert ".symtab" in out
        assert "sm_75" in out

    def test_inspect_unknown_library(self, capsys):
        code = tool_main(
            ["--scale", str(TEST_SCALE), "inspect", "pytorch", "nope.so"]
        )
        assert code == 1

    def test_debloat(self, capsys):
        code = tool_main(
            ["--scale", str(TEST_SCALE), "debloat",
             "pytorch/inference/mobilenetv2", "--top", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verification: verified" in out
        assert "reduction) across 111 libraries" in out

    def test_serve(self, capsys):
        code = tool_main(
            ["--scale", str(TEST_SCALE), "serve",
             "pytorch/train/mobilenetv2", "pytorch/inference/mobilenetv2",
             "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving admissions: pytorch" in out
        assert "store generation 2" in out

    def test_serve_federates_mixed_frameworks(self, capsys):
        """Mixed-framework arrivals route to per-framework store shards."""
        code = tool_main(
            ["--scale", str(TEST_SCALE), "serve",
             "pytorch/train/mobilenetv2", "tensorflow/train/mobilenetv2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving admissions: pytorch+tensorflow" in out
        assert "pytorch store generation 1" in out
        assert "tensorflow store generation 1" in out

    def test_serve_ttl_eviction(self, capsys):
        code = tool_main(
            ["--scale", str(TEST_SCALE), "serve",
             "pytorch/train/mobilenetv2", "pytorch/inference/mobilenetv2",
             "--evict", "ttl", "--ttl-s", "0", "--pin",
             "pytorch/train/mobilenetv2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eviction policy ttl: final sweep evicted 1 workload(s)" in out
        assert "pytorch/inference/mobilenetv2 [pytorch] (ttl" in out

    def test_serve_rejects_malformed_policy(self, capsys):
        code = tool_main(
            ["--scale", str(TEST_SCALE), "serve", "--evict", "ttl"]
        )
        assert code == 1
        assert "ttl" in capsys.readouterr().err

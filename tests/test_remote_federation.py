"""Tests for distributed federation: remote shard workers, warm snapshot
export/import, consistent-hash routing, and crash recovery.

The contract under test: a replica built from a snapshot serves
byte-identical reports and libraries with **zero** workload runs, and a
SIGKILLed remote shard comes back byte-identical from its auto-exported
snapshot - including under the ``ci-standard`` fault plan, with zero hung
tickets.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import DebloatEngine, EngineConfig
from repro.api.federation import StoreFederation
from repro.core.debloat import DebloatOptions
from repro.core.serialize import (
    STORE_KIND,
    multi_report_to_payload,
    payload_dumps,
    payload_equal,
    store_from_payload,
)

def multi_reports_equal(a, b) -> bool:
    return payload_equal(multi_report_to_payload(a), multi_report_to_payload(b))
from repro.errors import (
    FaultError,
    RemoteShardError,
    SnapshotError,
    SnapshotSchemaError,
    TransientError,
    UsageError,
)
from repro.serving import snapshot as snapshots
from repro.serving.remote import (
    HashRing,
    RemoteShardPool,
    RemoteShardSupervisor,
)
from repro.serving.server import DebloatServer
from repro.serving.store import DebloatStore
from repro.testing import faults
from repro.utils.retry import DEFAULT_RETRYABLE, RetryPolicy
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE

OPTS = DebloatOptions(runtime_comparison_top_n=0)

PT_IDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
]
TF_ID = "tensorflow/train/mobilenetv2"


def pt_specs():
    return [workload_by_id(wid) for wid in PT_IDS]


def image_bytes(store, counters: bool = True) -> bytes:
    """A store's serialized image; ``counters=False`` strips the
    operational counters, which are telemetry rather than state: a
    batched replay legitimately does fewer delta passes (and a
    cache-warmed run more cache hits) than a sequential cold run while
    producing byte-identical libraries, extents, and generations."""
    image = store.export_state()
    if not counters:
        image = {**image, "counters": {}}
    return payload_dumps(image)


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.deactivate()
    yield
    faults.deactivate()


def fed_config(**kwargs) -> EngineConfig:
    defaults = dict(scale=TEST_SCALE, options=OPTS)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


@pytest.fixture()
def pool(tmp_path):
    p = RemoteShardPool(
        2,
        scale=TEST_SCALE,
        archs=tuple(EngineConfig().archs),
        snapshot_root=str(tmp_path / "workers"),
    )
    yield p
    p.shutdown()


# -- store image round-trip ----------------------------------------------------


class TestStoreImage:
    def test_export_import_byte_identical(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        for spec in pt_specs():
            store.admit(spec)
        image = store.export_state()
        blob = payload_dumps(image)
        assert image["kind"] == STORE_KIND
        assert image["generation"] == store.generation

        fresh = DebloatStore(pytorch, OPTS)
        fresh.import_state(image)
        assert fresh.generation == store.generation
        assert payload_dumps(fresh.export_state()) == blob
        assert multi_reports_equal(fresh.report(), store.report())
        fresh.validate_invariants()

    def test_store_from_payload_rebuilds_framework(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.admit(pt_specs()[0])
        image = store.export_state()
        replica = store_from_payload(image)
        assert payload_dumps(replica.export_state()) == payload_dumps(image)
        # The replica keeps serving: a further admission works and lands
        # on the next generation.
        result = replica.admit(pt_specs()[1])
        assert result.generation == store.generation + 1

    def test_import_rejects_framework_mismatch(self, pytorch, tensorflow):
        store = DebloatStore(pytorch, OPTS)
        store.admit(pt_specs()[0])
        other = DebloatStore(tensorflow, OPTS)
        with pytest.raises(SnapshotError, match="this store serves"):
            other.import_state(store.export_state())

    def test_import_rejects_wrong_kind_and_schema(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.admit(pt_specs()[0])
        image = store.export_state()
        with pytest.raises(SnapshotError):
            store.import_state({**image, "kind": "not_a_store"})
        with pytest.raises(SnapshotSchemaError):
            store.import_state({**image, "schema": 999})


# -- snapshot directory --------------------------------------------------------


class TestSnapshotDirectory:
    def _snapshot(self, pytorch, directory):
        store = DebloatStore(pytorch, OPTS)
        for spec in pt_specs()[:2]:
            store.admit(spec)
        manifest = snapshots.write_snapshot(
            str(directory), {"pytorch": store.export_state()}
        )
        return store, manifest

    def test_round_trip_and_reexport_identical(self, pytorch, tmp_path):
        store, manifest = self._snapshot(pytorch, tmp_path)
        assert [e["framework"] for e in manifest["shards"]] == ["pytorch"]
        payloads = snapshots.load_snapshot(str(tmp_path))
        assert payload_dumps(payloads["pytorch"]) == payload_dumps(
            store.export_state()
        )
        # Re-exporting an unchanged store rewrites byte-identical files.
        before = (tmp_path / "shard--pytorch.rdbc").read_bytes()
        snapshots.write_snapshot(
            str(tmp_path), {"pytorch": store.export_state()}
        )
        assert (tmp_path / "shard--pytorch.rdbc").read_bytes() == before

    def test_missing_snapshot_raises(self, tmp_path):
        assert not snapshots.snapshot_exists(str(tmp_path))
        with pytest.raises(SnapshotError, match="manifest"):
            snapshots.read_manifest(str(tmp_path))

    def test_manifest_schema_skew(self, pytorch, tmp_path):
        self._snapshot(pytorch, tmp_path)
        path = tmp_path / snapshots.MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["schema"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotSchemaError):
            snapshots.load_snapshot(str(tmp_path))

    def test_tampered_shard_fails_digest(self, pytorch, tmp_path):
        self._snapshot(pytorch, tmp_path)
        path = tmp_path / "shard--pytorch.rdbc"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="digest"):
            snapshots.load_snapshot(str(tmp_path))

    def test_snapshot_read_fault_site(self, pytorch, tmp_path):
        self._snapshot(pytorch, tmp_path)
        plan = faults.FaultPlan(
            (faults.FaultRule("snapshot.read", ordinals=(1,),
                              kind="corrupt"),),
            seed=7,
        )
        with faults.fault_plan(plan):
            with pytest.raises(FaultError):
                snapshots.load_snapshot(str(tmp_path))
            # The injected corrupt read is transient: the retry succeeds.
            assert "pytorch" in snapshots.load_snapshot(str(tmp_path))


# -- fresh-replica import: zero workload runs ----------------------------------


_REPLICA_SCRIPT = """
import sys

import repro.workloads.runner as runner

def _refuse(self):
    raise AssertionError("workload ran during snapshot import")

runner.WorkloadRunner.run = _refuse

from repro.api import DebloatEngine, EngineConfig
from repro.core.debloat import DebloatOptions
from repro.core.serialize import payload_dumps

snapdir, outdir, scale = sys.argv[1], sys.argv[2], float(sys.argv[3])
config = EngineConfig(
    scale=scale, options=DebloatOptions(runtime_comparison_top_n=0)
)
with DebloatEngine(config) as engine:
    generations = engine.import_snapshot(snapdir).value["generations"]
    engine.export_snapshot(outdir)
print(len(generations))
"""


class TestFreshReplicaImport:
    def test_subprocess_import_is_byte_identical_with_zero_runs(
        self, pytorch, tmp_path
    ):
        fed = StoreFederation(fed_config())
        for spec in pt_specs():
            fed.admit(spec)
        fed.admit(workload_by_id(TF_ID))
        snapdir = tmp_path / "snap"
        manifest = fed.export_snapshot(str(snapdir))
        assert {e["framework"] for e in manifest["shards"]} == {
            "pytorch", "tensorflow",
        }
        outdir = tmp_path / "reexport"
        proc = subprocess.run(
            [sys.executable, "-c", _REPLICA_SCRIPT, str(snapdir),
             str(outdir), str(TEST_SCALE)],
            capture_output=True, text=True, timeout=300,
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "2"
        # Byte-identity file by file: library bytes, extents, generations
        # all live inside the store image containers.
        for entry in manifest["shards"]:
            original = (snapdir / entry["file"]).read_bytes()
            replica = (outdir / entry["file"]).read_bytes()
            assert replica == original, entry["framework"]


# -- consistent-hash ring ------------------------------------------------------


class TestHashRing:
    def test_deterministic_and_total(self):
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        again = HashRing(["shard-2", "shard-0", "shard-1"])
        keys = [f"fingerprint-{i}" for i in range(64)]
        assert [ring.node_for(k) for k in keys] == [
            again.node_for(k) for k in keys
        ]
        assert {ring.node_for(k) for k in keys} == {
            "shard-0", "shard-1", "shard-2",
        }

    def test_node_removal_only_moves_its_keys(self):
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        smaller = HashRing(["shard-0", "shard-1"])
        keys = [f"fingerprint-{i}" for i in range(256)]
        moved = 0
        for key in keys:
            before = ring.node_for(key)
            after = smaller.node_for(key)
            if before != "shard-2":
                assert after == before
            else:
                moved += 1
        assert 0 < moved < len(keys)


# -- typed errors + retry coverage ---------------------------------------------


class TestRemoteErrors:
    def test_remote_shard_error_is_transient_and_retryable(self):
        err = RemoteShardError("shard-0", "connection dropped")
        assert isinstance(err, TransientError)
        assert isinstance(err, DEFAULT_RETRYABLE)
        assert err.shard == "shard-0"
        assert "shard-0" in str(err)

    def test_snapshot_schema_error_is_not_transient(self):
        err = SnapshotSchemaError("schema 999")
        assert isinstance(err, SnapshotError)
        assert not isinstance(err, TransientError)

    def test_retry_policy_recovers_dropped_connection(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise RemoteShardError("shard-1", "worker died")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.001)
        assert policy.call(flaky, sleep=lambda _: None) == "ok"
        assert calls["n"] == 2


# -- remote shard worker processes ---------------------------------------------


class TestRemoteWorkers:
    def test_remote_matches_local_byte_identical(self, pytorch, pool):
        fed = StoreFederation(fed_config(), remote_pool=pool)
        for spec in pt_specs():
            fed.admit(spec)
        shard = fed.shard("pytorch")
        assert shard.remote
        assert fed.route_for("pytorch") == shard.store.worker

        local = DebloatStore(pytorch, OPTS)
        for spec in pt_specs():
            local.admit(spec)
        assert image_bytes(shard.store, counters=False) == image_bytes(
            local, counters=False
        )
        assert multi_reports_equal(fed.report("pytorch"), local.report())

    def test_sigkill_recovers_byte_identical_zero_runs(self, pool):
        fed = StoreFederation(fed_config(), remote_pool=pool)
        for spec in pt_specs()[:2]:
            fed.admit(spec)
        shard = fed.shard("pytorch")
        image = payload_dumps(shard.store.export_state())
        supervisor = pool.supervisor_for("pytorch")
        pid = supervisor.pid
        assert pid is not None
        os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while supervisor.alive and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not supervisor.alive
        # The next call notices the dead worker, respawns it, and the
        # replacement restores from its auto-exported snapshot: same
        # generation, same bytes, no workload re-runs (generation would
        # advance if anything were re-admitted).
        snap = shard.store.snapshot()
        assert supervisor.restarts == 1
        assert supervisor.pid != pid
        assert snap.generation == 2
        assert payload_dumps(shard.store.export_state()) == image

    def test_health_reports_routes_and_restarts(self, pool):
        fed = StoreFederation(fed_config(), remote_pool=pool)
        fed.admit(pt_specs()[0])
        health = fed.health()
        assert health["state"] == "ok"
        row = health["shards"]["pytorch"]
        assert row["route"].startswith("shard-")
        assert row["generation"] == 1
        pool_health = pool.health()
        assert pool_health["workers"] == 2
        assert pool_health["restarts"] == 0

    def test_usage_error_crosses_the_wire_untyped_no_retry(self, pool):
        fed = StoreFederation(fed_config(), remote_pool=pool)
        fed.admit(pt_specs()[0])
        shard = fed.shard("pytorch")
        with pytest.raises(UsageError):
            shard.store.evict("pytorch/not/admitted")
        # The worker survives a typed rejection: same process, no restart.
        assert pool.supervisor_for("pytorch").restarts == 0
        assert shard.store.generation == 1


class TestRemoteFaultSites:
    def test_send_fault_surfaces_as_remote_shard_error(self, pool):
        fed = StoreFederation(fed_config(), remote_pool=pool)
        fed.admit(pt_specs()[0])
        plan = faults.FaultPlan(
            (faults.FaultRule("remote.send", ordinals=(1,)),), seed=7
        )
        shard = fed.shard("pytorch")
        with faults.fault_plan(plan):
            with pytest.raises(RemoteShardError):
                shard.store.snapshot()
            # Transient: the immediate retry respawns and succeeds.
            assert shard.store.snapshot().generation == 1
        assert pool.supervisor_for("pytorch").restarts == 1

    def test_ci_standard_mixed_traffic_sigkill_byte_identity(
        self, pytorch, pool
    ):
        """The acceptance scenario: mixed-framework traffic through the
        queue server against remote shards under ci-standard, one shard
        SIGKILLed mid-traffic - zero hung tickets, every admission lands,
        end state byte-identical to a fault-free local run."""
        arrivals = pt_specs() + [workload_by_id(TF_ID), pt_specs()[0]]
        fed = StoreFederation(fed_config(), remote_pool=pool)
        plan = faults.named_plan("ci-standard")
        # One worker keeps the admission *order* deterministic so the
        # byte-compare against a sequential local run is exact; the
        # failure modes (injected frame drops, the SIGKILL) are the same.
        # The plan's remote faults compound on one admission (a dropped
        # frame forces a respawn, which the spawn fault then fails), so
        # remote deployments need a deeper retry budget than the 3-shot
        # default.
        retry = RetryPolicy(max_attempts=6, base_backoff_s=0.01)
        with faults.fault_plan(plan):
            with DebloatServer(fed, workers=1, retry=retry) as server:
                first = server.submit(arrivals[0])
                first.result(timeout=120)
                os.kill(
                    pool.supervisor_for("pytorch").pid, signal.SIGKILL
                )
                tickets = [(s, server.submit(s)) for s in arrivals[1:]]
                for spec, ticket in tickets:
                    ticket.result(timeout=120)
        assert pool.supervisor_for("pytorch").restarts >= 1
        assert plan.stats()  # injected faults really fired

        from repro.core import serialize

        # (a) Determinism: a local store fed the exact committed
        # admission sequence - including the duplicates that retried
        # admissions legitimately append after a dropped response frame -
        # reproduces the remote store byte-for-byte (counters aside).
        remote_image = fed.shard("pytorch").store.export_state()
        replay = DebloatStore(pytorch, OPTS)
        for payload in remote_image["admissions"]:
            replay.admit(serialize.spec_from_payload(payload))
        assert payload_dumps({**remote_image, "counters": {}}) == (
            payload_dumps({**replay.export_state(), "counters": {}})
        )

        # (b) The serving contract: libraries and union end-state are
        # byte-identical to a fault-free run of the arrivals (duplicate
        # re-admissions are idempotent on the union).
        local = DebloatStore(pytorch, OPTS)
        for spec in arrivals:
            if spec.framework == "pytorch":
                local.admit(spec)
        remote_report = fed.report("pytorch")
        local_report = local.report()
        assert sorted(set(remote_report.workload_ids)) == sorted(
            set(local_report.workload_ids)
        )
        assert payload_equal(
            [serialize.library_to_payload(lib)
             for lib in remote_report.libraries],
            [serialize.library_to_payload(lib)
             for lib in local_report.libraries],
        )
        assert fed.shard("tensorflow").store.generation == 1


# -- federation snapshot + engine integration ----------------------------------


class TestFederationSnapshots:
    def test_remote_import_matches_local_export(self, pool, tmp_path):
        source = StoreFederation(fed_config())
        for spec in pt_specs()[:2]:
            source.admit(spec)
        snapdir = str(tmp_path / "fed-snap")
        source.export_snapshot(snapdir)

        target = StoreFederation(fed_config(), remote_pool=pool)
        generations = target.import_snapshot(snapdir)
        assert generations == {"pytorch": 2}
        assert target.shard("pytorch").remote
        assert payload_dumps(
            target.shard("pytorch").store.export_state()
        ) == payload_dumps(source.shard("pytorch").store.export_state())
        # Imported workloads are live traffic for the eviction clock.
        assert set(target.shard("pytorch").last_served) == set(
            source.shard("pytorch").store.snapshot().workload_ids
        )

    def test_engine_export_import_and_default_dirs(self, tmp_path):
        snapdir = str(tmp_path / "engine-snap")
        config = fed_config(snapshot_dir=snapdir)
        with DebloatEngine(config) as engine:
            from repro.api import AdmitRequest

            engine.admit(AdmitRequest(spec=pt_specs()[0]))
            result = engine.export_snapshot()
            assert result.value["directory"] == os.path.join(
                snapdir, "federation"
            )
        with DebloatEngine(config) as replica:
            imported = replica.import_snapshot()
            assert imported.value["generations"] == {"pytorch": 1}
        with DebloatEngine(fed_config()) as bare:
            with pytest.raises(UsageError, match="snapshot directory"):
                bare.export_snapshot()

    def test_engine_remote_shards_lifecycle(self, tmp_path):
        from repro.api import AdmitRequest

        config = fed_config(
            remote_shards=1, snapshot_dir=str(tmp_path / "sd")
        )
        with DebloatEngine(config) as engine:
            engine.admit(AdmitRequest(spec=pt_specs()[0]))
            health = engine.health()
            assert health["remote"]["workers"] == 1
            assert health["remote"]["alive"] == 1
            pool = engine._remote_pool
        # close() shuts the workers down.
        assert pool.health()["alive"] == 0

    def test_config_rejects_negative_remote_shards(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            EngineConfig(remote_shards=-1)

"""Tests for the content-addressed block store and byte-budget eviction.

The block layer's contract is exactness: refcounts are *recomputed* from
registered manifests by ``validate_invariants``, so every test here ends
by proving the store can still account for every physical byte - after
dedupe, copy-on-write replacement, racing admits/evicts across shards,
mid-admission rollback, and WAL crash recovery.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import AdmitRequest, DebloatEngine, EngineConfig
from repro.api.config import DurabilityConfig, EvictionPolicy
from repro.api.federation import StoreFederation
from repro.core.debloat import DebloatOptions
from repro.core.serialize import (
    block_digest,
    deflate_store_payload,
    inflate_store_payload,
    iter_block_pieces,
    payload_dumps,
)
from repro.errors import BlockStoreError, ConfigurationError, UsageError
from repro.storage import (
    BlockStore,
    CostAwareEvictor,
    EvictionCandidate,
)
from repro.utils.sparsefile import SparseFile
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE

OPTS = DebloatOptions(runtime_comparison_top_n=0)

PT_IDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
]
HF_ID = "transformers/inference/llama2-7b"


# -- chunking ----------------------------------------------------------------


class TestChunking:
    def test_pieces_split_at_absolute_offsets(self):
        # An extent spanning a block boundary splits *at* the boundary,
        # not at relative offsets - the property cross-file dedupe needs.
        assert list(iter_block_pieces(10, 20, 16)) == [(10, 16), (16, 20)]
        assert list(iter_block_pieces(0, 32, 16)) == [(0, 16), (16, 32)]
        assert list(iter_block_pieces(5, 9, 16)) == [(5, 9)]

    def test_pieces_partition_the_extent(self):
        pieces = list(iter_block_pieces(3, 1000, 64))
        assert pieces[0][0] == 3
        assert pieces[-1][1] == 1000
        for (_, e1), (s2, _) in zip(pieces, pieces[1:]):
            assert e1 == s2
        assert all(s < e for s, e in pieces)


# -- store unit behaviour ----------------------------------------------------


def make_sf(extents: list[tuple[int, bytes]], size: int = 0) -> SparseFile:
    sf = SparseFile(size)
    for offset, data in extents:
        sf.write(offset, data)
    return sf


class TestBlockStoreUnit:
    def test_roundtrip_view(self):
        store = BlockStore(block_size=8)
        owner = store.new_owner("t")
        sf = make_sf([(3, b"abcdefgh"), (40, b"xy")], size=64)
        manifest = store.ingest(owner, "f", sf)
        view = store.view(manifest)
        assert view.logical_size == 64
        assert view.read(0, 64) == sf.read(0, 64)
        clone = view.to_sparsefile()
        assert clone == sf
        store.validate_invariants()

    def test_identical_content_dedupes(self):
        store = BlockStore(block_size=8)
        owner_a = store.new_owner("a")
        owner_b = store.new_owner("b")
        sf = make_sf([(0, b"0123456789abcdef")])
        store.ingest(owner_a, "f", sf)
        before = store.stats()["bytes_physical"]
        store.ingest(owner_b, "f", sf)
        after = store.stats()
        assert after["bytes_physical"] == before
        assert after["bytes_logical"] == 2 * before
        assert after["dedupe_ratio"] == pytest.approx(2.0)
        assert all(c == 2 for c in store.snapshot_refcounts().values())
        store.validate_invariants()

    def test_cow_replacement_reuses_unchanged_blocks(self):
        store = BlockStore(block_size=8)
        owner = store.new_owner("t")
        sf1 = make_sf([(0, bytes(range(32)))])
        m1 = store.ingest(owner, "f", sf1)
        sf2 = make_sf([(0, bytes(range(32)))])
        sf2.write(8, b"CHANGED!")  # exactly the second block
        m2 = store.ingest(owner, "f", sf2)
        shared = {r.digest for r in m1.refs} & {r.digest for r in m2.refs}
        assert len(shared) == 3  # blocks 0, 2, 3 survive the replacement
        assert store.stats()["blocks_total"] == 4
        store.validate_invariants()

    def test_release_frees_only_unshared_blocks(self):
        store = BlockStore(block_size=8)
        owner = store.new_owner("t")
        sf = make_sf([(0, bytes(range(16)))])
        store.ingest(owner, "f", sf)
        store.ingest(owner, "g", sf)
        assert store.release(owner, "f") == 0  # still referenced by "g"
        assert store.release(owner, "g") == 16
        assert store.stats()["blocks_total"] == 0
        assert store.stats()["evicted_bytes_total"] == 16
        store.validate_invariants()

    def test_double_release_raises(self):
        store = BlockStore(block_size=8)
        owner = store.new_owner("t")
        store.ingest(owner, "f", make_sf([(0, b"hi")]))
        store.release(owner, "f")
        with pytest.raises(BlockStoreError):
            store.release(owner, "f")

    def test_drop_owner_releases_everything(self):
        store = BlockStore(block_size=8)
        owner = store.new_owner("t")
        store.ingest(owner, "f", make_sf([(0, b"0123456789")]))
        store.ingest(owner, "g", make_sf([(0, b"0123456789")]))
        assert store.drop_owner(owner) == 10
        assert store.stats() == {
            "blocks_total": 0,
            "bytes_physical": 0,
            "bytes_logical": 0,
            "dedupe_ratio": 1.0,
            "evicted_bytes_total": 10,
            "ingested_bytes_total": 20,
            "deduped_bytes_total": 10,
            "owners": 0,
        }

    def test_validate_catches_drifted_refcount(self):
        store = BlockStore(block_size=8)
        owner = store.new_owner("t")
        m = store.ingest(owner, "f", make_sf([(0, b"payload")]))
        store._refs[m.refs[0].digest] += 1  # simulate drift
        with pytest.raises(BlockStoreError, match="refcount drift"):
            store.validate_invariants()

    def test_validate_catches_leaked_block(self):
        store = BlockStore(block_size=8)
        store._blocks["deadbeef"] = b"leak"
        store._bytes_physical += 4
        with pytest.raises(BlockStoreError, match="leaked"):
            store.validate_invariants()


# -- hypothesis fuzz: chunk/dedupe round-trips -------------------------------


@st.composite
def sparse_files(draw):
    """Random small SparseFiles with 0-5 disjoint extents."""
    n = draw(st.integers(min_value=0, max_value=5))
    writes = []
    cursor = 0
    for _ in range(n):
        gap = draw(st.integers(min_value=1, max_value=40))
        length = draw(st.integers(min_value=1, max_value=70))
        data = draw(st.binary(min_size=length, max_size=length))
        writes.append((cursor + gap, data))
        cursor += gap + length
    size = cursor + draw(st.integers(min_value=0, max_value=20))
    return make_sf(writes, size=size)


class TestFuzzRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(sf=sparse_files(), block_size=st.sampled_from([1, 7, 16, 64]))
    def test_ingest_view_roundtrip(self, sf, block_size):
        store = BlockStore(block_size=block_size)
        owner = store.new_owner("fuzz")
        manifest = store.ingest(owner, "f", sf)
        view = store.view(manifest)
        assert view.to_sparsefile() == sf
        assert view.read(0, sf.logical_size) == sf.read(0, sf.logical_size)
        assert view.extents() == sf.extents()
        store.validate_invariants()
        # Ingesting the same content twice never grows physical bytes.
        physical = store.stats()["bytes_physical"]
        store.ingest(owner, "g", sf)
        assert store.stats()["bytes_physical"] == physical
        store.validate_invariants()

    @settings(max_examples=60, deadline=None)
    @given(sf=sparse_files(), block_size=st.sampled_from([1, 7, 16, 64]))
    def test_pieces_digests_reconstruct(self, sf, block_size):
        extents = sf.extents()
        pool: dict[str, bytes] = {}
        refs = []
        for s, e in zip(extents.starts.tolist(), extents.stops.tolist()):
            for ps, pe in iter_block_pieces(s, e, block_size):
                piece = sf.read(ps, pe - ps)
                pool[block_digest(piece)] = piece
                refs.append((ps, block_digest(piece)))
        rebuilt = SparseFile(sf.logical_size)
        for offset, digest in refs:
            rebuilt.write(offset, pool[digest])
        assert rebuilt == sf


# -- deflate/inflate store payloads ------------------------------------------


class TestPayloadDeflation:
    @pytest.fixture(scope="class")
    def payload(self, pytorch):
        from repro.serving.store import DebloatStore

        store = DebloatStore(pytorch, OPTS)
        store.admit(workload_by_id(PT_IDS[0]))
        return store.export_state()

    def test_inflate_inverts_deflate_byte_exactly(self, payload):
        pool: dict[str, bytes] = {}
        deflated = deflate_store_payload(payload, pool)
        assert pool
        restored = inflate_store_payload(deflated, pool)
        assert payload_dumps(restored) == payload_dumps(payload)

    def test_shared_pool_across_payloads_dedupes(self, payload):
        pool: dict[str, bytes] = {}
        deflate_store_payload(payload, pool)
        first = sum(len(b) for b in pool.values())
        deflate_store_payload(payload, pool)  # same content again
        assert sum(len(b) for b in pool.values()) == first


# -- federation: shared blocks, racing, rollback, recovery -------------------


def fed(**kwargs) -> StoreFederation:
    cfg = EngineConfig(scale=TEST_SCALE, options=OPTS, **kwargs)
    return StoreFederation(cfg)


class TestFederationSharing:
    def test_two_shards_share_physical_blocks(self):
        federation = fed()
        solo = fed()
        solo.admit(workload_by_id(PT_IDS[0]))
        solo_physical = solo.blockstore.stats()["bytes_physical"]
        federation.admit(workload_by_id(PT_IDS[0]))
        federation.admit(workload_by_id(HF_ID))
        stats = federation.blockstore.stats()
        # The transformers shard rides on the same torch-family build:
        # two shards occupy less than 2x one shard's physical bytes.
        assert stats["bytes_physical"] < 2 * solo_physical
        assert stats["dedupe_ratio"] > 1.0
        federation.blockstore.validate_invariants()
        for name in federation.frameworks():
            federation.shard(name).store.validate_invariants()

    def test_racing_admits_and_evicts_stay_consistent(self):
        federation = fed()
        errors: list[BaseException] = []

        def admit_loop(wids):
            try:
                for _ in range(3):
                    for wid in wids:
                        federation.admit(workload_by_id(wid))
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def evict_loop():
            try:
                for _ in range(6):
                    for wid in PT_IDS + [HF_ID]:
                        try:
                            federation.evict(wid)
                        except UsageError:
                            pass  # not admitted right now; keep hammering
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=admit_loop, args=(PT_IDS,)),
            threading.Thread(target=admit_loop, args=([HF_ID],)),
            threading.Thread(target=evict_loop),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        federation.blockstore.validate_invariants()
        for name in federation.frameworks():
            federation.shard(name).store.validate_invariants()

    def test_evicting_every_workload_frees_every_block(self):
        federation = fed()
        for wid in PT_IDS:
            federation.admit(workload_by_id(wid))
        for wid in PT_IDS:
            federation.evict(wid)
        stats = federation.blockstore.stats()
        assert stats["blocks_total"] == 0
        assert stats["bytes_physical"] == 0
        federation.blockstore.validate_invariants()


class TestRollbackRestoresRefcounts:
    def test_mid_admission_failure_leaves_refcounts_untouched(self, pytorch):
        from repro.serving.store import DebloatStore

        store = DebloatStore(pytorch, OPTS)
        store.admit(workload_by_id(PT_IDS[0]))
        before = store.blockstore.snapshot_refcounts()
        stats_before = store.blockstore.stats()

        real = store._compactor.compact

        def boom(*args, **kwargs):
            raise RuntimeError("injected mid-admission failure")

        store._compactor.compact = boom
        try:
            with pytest.raises(RuntimeError, match="injected"):
                store.admit(workload_by_id(PT_IDS[2]))
        finally:
            store._compactor.compact = real

        assert store.blockstore.snapshot_refcounts() == before
        assert store.blockstore.stats() == stats_before
        store.validate_invariants()
        # The store still works: the failed admission can be retried.
        store.admit(workload_by_id(PT_IDS[2]))
        store.validate_invariants()


class TestCrashRecoveryRebuildsRefcounts:
    def test_wal_replay_reconstructs_exact_refcounts(self, tmp_path):
        cfg = EngineConfig(
            scale=TEST_SCALE,
            options=OPTS,
            use_cache=True,
            durability=DurabilityConfig(
                enabled=True,
                directory=str(tmp_path / "durability"),
                fsync="off",
            ),
        )
        with DebloatEngine(cfg) as engine:
            for wid in PT_IDS[:2]:
                engine.admit(AdmitRequest(workload_id=wid))
            committed = engine.federation.blockstore.snapshot_refcounts()
            committed_stats = engine.federation.blockstore.stats()
        # A fresh engine recovers purely from the WAL + snapshot on disk.
        with DebloatEngine(cfg) as engine:
            assert engine.recovery is not None
            recovered = engine.federation.blockstore
            refs = recovered.snapshot_refcounts()
            assert refs == committed
            stats = recovered.stats()
            for key in ("blocks_total", "bytes_physical", "bytes_logical"):
                assert stats[key] == committed_stats[key]
            recovered.validate_invariants()
            for shard in engine.federation.local_shards():
                shard.store.validate_invariants()


# -- byte-budget eviction ----------------------------------------------------


class TestCostAwareEvictor:
    def test_pick_prefers_cheapest_rebuild_per_byte(self):
        cheap = EvictionCandidate("pt", "a", rebuild_cost_s=1.0,
                                  bytes_estimate=1000)
        costly = EvictionCandidate("pt", "b", rebuild_cost_s=50.0,
                                   bytes_estimate=1000)
        ev = CostAwareEvictor(budget_bytes=1)
        assert ev.pick([costly, cheap]) is cheap

    def test_tie_breaks_prefer_bigger_then_idler(self):
        small = EvictionCandidate("pt", "a", rebuild_cost_s=2.0,
                                  bytes_estimate=1000)
        big = EvictionCandidate("pt", "b", rebuild_cost_s=4.0,
                                bytes_estimate=2000)  # same score, more bytes
        ev = CostAwareEvictor(budget_bytes=1)
        assert ev.pick([small, big]) is big

    def test_over_budget(self):
        ev = CostAwareEvictor(budget_bytes=100)
        assert not ev.over_budget(100)
        assert ev.over_budget(101)

    def test_federation_bytes_sweep_respects_budget_and_pins(self):
        federation = fed(
            eviction=EvictionPolicy(mode="bytes", budget_bytes=1)
        )
        federation.admit(workload_by_id(PT_IDS[0]), pinned=True)
        federation.admit(workload_by_id(PT_IDS[1]))
        federation.admit(workload_by_id(PT_IDS[2]))
        swept = federation.sweep()
        assert swept, "over-budget federation must evict something"
        assert all(s.reason == "bytes" for s in swept)
        swept_ids = {s.workload_id for s in swept}
        assert PT_IDS[0] not in swept_ids, "pinned workloads are immune"
        assert swept_ids == {PT_IDS[1], PT_IDS[2]}
        federation.blockstore.validate_invariants()

    def test_sweep_stops_once_under_budget(self):
        federation = fed(
            eviction=EvictionPolicy(mode="bytes", budget_bytes=10**12)
        )
        for wid in PT_IDS:
            federation.admit(workload_by_id(wid))
        assert federation.sweep() == []
        assert federation.stats()["sweeps"] == 1


# -- EvictionPolicy validation -----------------------------------------------


class TestEvictionPolicyValidation:
    def test_bytes_mode_requires_budget(self):
        with pytest.raises(ConfigurationError, match="budget_bytes"):
            EvictionPolicy(mode="bytes")

    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="budget_bytes"):
            EvictionPolicy(mode="bytes", budget_bytes=0)

    def test_contradictory_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="ttl_s"):
            EvictionPolicy(mode="bytes", budget_bytes=1, ttl_s=5.0)
        with pytest.raises(ConfigurationError, match="budget_bytes"):
            EvictionPolicy(mode="ttl", ttl_s=5.0, budget_bytes=1)
        with pytest.raises(ConfigurationError, match="max_workloads"):
            EvictionPolicy(mode="bytes", budget_bytes=1, max_workloads=3)

    def test_error_names_the_offending_field(self):
        with pytest.raises(ConfigurationError, match="field 'budget_bytes'"):
            EvictionPolicy(mode="bytes", budget_bytes=-4)

    def test_valid_bytes_policy(self):
        policy = EvictionPolicy(mode="bytes", budget_bytes=123)
        assert policy.budget_bytes == 123

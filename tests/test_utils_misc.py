"""Tests for RNG streams, stats helpers, units, and table rendering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import RngStream, stable_seed
from repro.utils.stats import (
    FiveNumberSummary,
    ascii_violin,
    items_for_share,
    jaccard,
    pareto_series,
    top_k_share,
)
from repro.utils.tables import Table, kv_block
from repro.utils.units import (
    fmt_bytes,
    fmt_count,
    fmt_mb,
    fmt_value_with_reduction,
    mb,
    pct_reduction,
)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_token_boundaries_matter(self):
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")


class TestRngStream:
    def test_same_identity_same_draws(self):
        a = RngStream("x", 1).integers(0, 1000, size=10)
        b = RngStream("x", 1).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_child_independent(self):
        parent = RngStream("x")
        assert parent.child("a").seed != parent.child("b").seed

    def test_heavy_tail_exact_total(self):
        sizes = RngStream("t").heavy_tail_sizes(100, 50_000, min_size=8)
        assert sizes.sum() == 50_000
        assert sizes.min() >= 8

    def test_heavy_tail_is_heavy(self):
        sizes = RngStream("t2").heavy_tail_sizes(500, 1_000_000, alpha=1.1)
        assert sizes.max() > 10 * np.median(sizes)

    def test_heavy_tail_rejects_impossible(self):
        with pytest.raises(ValueError):
            RngStream("t").heavy_tail_sizes(10, 5, min_size=1)

    def test_heavy_tail_weights_bias(self):
        rng = RngStream("w")
        weights = np.ones(1000)
        weights[:100] = 50.0
        sizes = rng.heavy_tail_sizes(1000, 10_000_000, weights=weights)
        assert sizes[:100].mean() > 5 * sizes[100:].mean()

    def test_subset_mask_count(self):
        mask = RngStream("m").subset_mask(200, 0.25)
        assert mask.sum() == 50

    def test_subset_mask_at_least_one(self):
        mask = RngStream("m").subset_mask(100, 0.001)
        assert mask.sum() == 1

    def test_subset_mask_empty(self):
        assert RngStream("m").subset_mask(0, 0.5).size == 0

    def test_lognormal_int_clips(self):
        vals = RngStream("l").lognormal_int(0.0, 3.0, size=100, low=5)
        assert vals.min() >= 5

    @given(st.integers(1, 50), st.integers(0, 10_000))
    def test_heavy_tail_property_exact_sum(self, count, extra):
        total = count * 4 + extra
        sizes = RngStream("p", count, extra).heavy_tail_sizes(
            count, total, min_size=4
        )
        assert sizes.sum() == total


class TestStats:
    def test_five_number(self):
        s = FiveNumberSummary.from_values([0, 25, 50, 75, 100])
        assert s.median == 50
        assert s.minimum == 0 and s.maximum == 100
        assert s.count == 5

    def test_five_number_empty(self):
        assert FiveNumberSummary.from_values([]).count == 0

    def test_pareto_series_sorted(self):
        vals, cum = pareto_series([1, 5, 3])
        assert list(vals) == [5, 3, 1]
        assert cum[-1] == pytest.approx(100.0)

    def test_top_k_share(self):
        # One item holds 90 of 100 -> top 10% of 10 items = that item.
        values = [90] + [10 / 9] * 9
        assert top_k_share(values, 0.1) == pytest.approx(90.0)

    def test_items_for_share(self):
        values = [50, 40, 5, 5]
        assert items_for_share(values, 90.0) == 2

    def test_jaccard_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_jaccard_empty_sets(self):
        assert jaccard(set(), set()) == 1.0

    def test_jaccard_formula(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(2 / 4)

    def test_ascii_violin_lines(self):
        lines = ascii_violin([10, 10, 90], bins=10)
        assert len(lines) == 10


class TestUnits:
    def test_mb_roundtrip(self):
        assert fmt_mb(mb(881)) == "881"

    def test_fmt_bytes_units(self):
        assert fmt_bytes(512) == "512 B"
        assert "KB" in fmt_bytes(2048)
        assert "GB" in fmt_bytes(3 << 30)

    def test_fmt_count_k(self):
        assert fmt_count(616_000) == "616K"

    def test_fmt_count_small(self):
        assert fmt_count(113) == "113"

    def test_pct_reduction(self):
        assert pct_reduction(100, 25) == 75.0

    def test_pct_reduction_zero_before(self):
        assert pct_reduction(0, 0) == 0.0

    def test_value_with_reduction_cell(self):
        assert fmt_value_with_reduction(mb(100), mb(45), as_mb=True) == "100 (55)"


class TestTables:
    def test_render_alignment(self):
        t = Table(["a", "bbb"])
        t.add_row("xx", 1)
        out = t.render()
        assert "a   bbb" in out
        assert "xx  1" in out

    def test_row_arity_checked(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_markdown_mode(self):
        t = Table(["a"], title="T")
        t.add_row("v")
        md = t.render(markdown=True)
        assert md.startswith("**T**")
        assert "| v" in md

    def test_add_rows(self):
        t = Table(["a", "b"])
        t.add_rows([(1, 2), (3, 4)])
        assert len(t.rows) == 2

    def test_kv_block(self):
        out = kv_block("Title", [("key", "value"), ("k2", 3)])
        assert "Title" in out and "key" in out and ": 3" in out

"""Analysis tests: Jaccard matrices, Pareto, distributions, reasons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distribution import reduction_distributions
from repro.analysis.jaccard import combined_table, jaccard_matrix
from repro.analysis.pareto import library_pareto
from repro.analysis.reasons import reason_breakdown
from repro.core.debloat import Debloater, DebloatOptions
from repro.frameworks.catalog import get_framework
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def report():
    fw = get_framework("pytorch", scale=TEST_SCALE)
    return Debloater(fw, DebloatOptions(runtime_comparison_top_n=0)).debloat(
        workload_by_id("pytorch/inference/mobilenetv2")
    )


class TestJaccard:
    def test_matrix_symmetric_unit_diagonal(self):
        m = jaccard_matrix({"a": {1, 2}, "b": {2, 3}, "c": {9}})
        assert np.allclose(m.values, m.values.T)
        assert np.allclose(np.diag(m.values), 1.0)

    def test_at(self):
        m = jaccard_matrix({"a": {1, 2}, "b": {2, 3}})
        assert m.at("a", "b") == pytest.approx(1 / 3)

    def test_off_diagonal_stats(self):
        m = jaccard_matrix({"a": {1}, "b": {1}, "c": {2}})
        assert m.max_off_diagonal() == 1.0
        assert m.min_off_diagonal() == 0.0

    def test_combined_table_layout(self):
        funcs = {"x": {1, 2}, "y": {2}}
        kerns = {"x": {5}, "y": {6}}
        rows = combined_table(funcs, kerns)
        assert rows[0][1] == "-"
        assert rows[0][2] == "0.50"  # functions upper-right
        assert rows[1][1] == "0.00"  # kernels lower-left

    def test_combined_table_label_mismatch(self):
        with pytest.raises(ValueError):
            combined_table({"a": set()}, {"b": set()})


class TestPareto:
    def test_concentration(self, report):
        pareto = library_pareto(report)
        assert pareto.top_10pct_share > 80.0
        assert pareto.libraries_for_90pct < 20
        assert pareto.cumulative_pct[-1] == pytest.approx(100.0)

    def test_series_sorted(self, report):
        pareto = library_pareto(report)
        series = pareto.series(5)
        assert len(series) == 5
        removed = [row[1] for row in series]
        assert removed == sorted(removed, reverse=True)

    def test_biggest_contributor_is_core_lib(self, report):
        pareto = library_pareto(report)
        assert pareto.sonames[0] in ("libtorch_cuda.so", "libtorch_cpu.so",
                                     "libcublasLt.so.12")


class TestDistributions:
    def test_series_lengths(self, report):
        dists = reduction_distributions([report])
        gpu_libs = sum(1 for lib in report.libraries if lib.has_gpu_code)
        assert len(dists.gpu_size_reduction) == gpu_libs
        assert len(dists.element_count_reduction) == gpu_libs
        assert len(dists.cpu_size_reduction) == report.n_libraries

    def test_gpu_above_cpu(self, report):
        dists = reduction_distributions([report])
        summaries = dists.summaries()
        assert (
            summaries["GPU code size reduction"].median
            > summaries["CPU code size reduction"].median
        )

    def test_all_elements_above_80(self, report):
        dists = reduction_distributions([report])
        assert dists.min_element_reduction() > 80.0


class TestReasons:
    def test_breakdown_sums(self, report):
        b = reason_breakdown(report)
        assert b.reason_i + b.reason_ii == b.removed_total
        assert b.reason_i_pct + b.reason_ii_pct == pytest.approx(100.0)

    def test_reason_i_dominates(self, report):
        b = reason_breakdown(report)
        assert b.reason_i_pct > 70.0

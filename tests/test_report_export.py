"""Report aggregation and JSON-export tests."""

from __future__ import annotations

import json

import pytest

from repro.core.debloat import Debloater
from repro.core.export import library_to_dict, report_to_dict, report_to_json
from repro.core.report import DebloatTiming, LibraryReduction
from repro.frameworks.catalog import get_framework
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def report():
    fw = get_framework("pytorch", scale=TEST_SCALE)
    return Debloater(fw).debloat(workload_by_id("pytorch/inference/mobilenetv2"))


class TestLibraryReduction:
    def _row(self):
        return LibraryReduction(
            soname="x.so", file_size=1000, cpu_size=400, n_functions=10,
            gpu_size=500, n_elements=6, file_size_after=300,
            cpu_size_after=100, n_functions_after=2, gpu_size_after=100,
            n_elements_after=1,
        )

    def test_reduction_percentages(self):
        row = self._row()
        assert row.file_reduction_pct == 70.0
        assert row.cpu_reduction_pct == 75.0
        assert row.function_reduction_pct == 80.0
        assert row.gpu_reduction_pct == 80.0
        assert row.element_reduction_pct == pytest.approx(83.333, rel=1e-3)
        assert row.file_reduction_bytes == 700
        assert row.has_gpu_code

    def test_zero_divisions_safe(self):
        row = LibraryReduction(
            soname="x.so", file_size=0, cpu_size=0, n_functions=0,
            gpu_size=0, n_elements=0, file_size_after=0, cpu_size_after=0,
            n_functions_after=0, gpu_size_after=0, n_elements_after=0,
        )
        assert row.file_reduction_pct == 0.0
        assert not row.has_gpu_code


class TestWorkloadReportAggregates:
    def test_totals_sum_rows(self, report):
        assert report.total_file_size == sum(
            lib.file_size for lib in report.libraries
        )
        assert report.total_elements_after == sum(
            lib.n_elements_after for lib in report.libraries
        )

    def test_library_lookup(self, report):
        assert report.library("libtorch_cuda.so").soname == "libtorch_cuda.so"
        with pytest.raises(KeyError):
            report.library("nope.so")

    def test_top_by_file_reduction_ordered(self, report):
        top = report.top_by_file_reduction(5)
        values = [lib.file_reduction_bytes for lib in top]
        assert values == sorted(values, reverse=True)

    def test_largest_library(self, report):
        assert report.largest_library().soname == "libtorch_cuda.so"

    def test_element_decisions_count(self, report):
        assert len(report.element_decisions()) == report.total_elements

    def test_timing_total(self):
        t = DebloatTiming(1.0, 2.0, 3.0, 4.0)
        assert t.total_s == 10.0


class TestJsonExport:
    def test_roundtrips_through_json(self, report):
        payload = json.loads(report_to_json(report))
        assert payload["workload_id"] == "pytorch/inference/mobilenetv2"
        assert payload["n_libraries"] == 111
        assert payload["verification"]["ok"] is True
        assert len(payload["libraries"]) == 111

    def test_totals_consistent(self, report):
        payload = report_to_dict(report)
        assert payload["totals"]["file_size"] == report.total_file_size
        assert payload["totals"]["file_reduction_pct"] == pytest.approx(
            report.file_reduction_pct, abs=0.01
        )

    def test_reason_shares_sum(self, report):
        payload = report_to_dict(report)
        assert sum(payload["removal_reasons_pct"].values()) == pytest.approx(
            100.0, abs=0.1
        )

    def test_runtime_block(self, report):
        payload = report_to_dict(report)
        base, after = payload["runtime"]["execution_time_s"]
        assert after < base

    def test_library_dict_fields(self, report):
        row = library_to_dict(report.library("libtorch_cuda.so"))
        assert row["soname"] == "libtorch_cuda.so"
        assert row["elements"] > row["elements_after"]
        assert 0 <= row["gpu_reduction_pct"] <= 100

"""Integration: the paper's headline quantitative shapes must hold.

These assertions encode the calibrated bands (paper value, generous
tolerance) for the reproduction's key results.  They are the regression
fence around everything the benchmarks report.
"""

from __future__ import annotations

import pytest

from repro.core.debloat import Debloater
from repro.frameworks.catalog import get_framework
from repro.utils.units import MB
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def train_report():
    fw = get_framework("pytorch", scale=TEST_SCALE)
    return Debloater(fw).debloat(workload_by_id("pytorch/train/mobilenetv2"))


#: Scale for count-magnitude checks: at very small scales per-kind cubin
#: floors dominate counts, so these run at the default experiment scale.
COUNT_SCALE = 0.125


@pytest.fixture(scope="module")
def train_report_default():
    fw = get_framework("pytorch", scale=COUNT_SCALE)
    return Debloater(fw).debloat(workload_by_id("pytorch/train/mobilenetv2"))


class TestTable2Shape:
    """PyTorch/Train/MobileNetV2 row: 113 libs, 3,762 MB (55%), CPU 557 MB
    (68%), 616K fns (93%), GPU 2,279 MB (75%), 14,062 elements (98%)."""

    def test_library_count_exact(self, train_report):
        assert train_report.n_libraries == 113

    def test_total_file_size_band(self, train_report):
        assert train_report.total_file_size / MB == pytest.approx(3762, rel=0.15)

    def test_file_reduction_band(self, train_report):
        assert 45 <= train_report.file_reduction_pct <= 70

    def test_cpu_size_band(self, train_report):
        assert train_report.total_cpu_size / MB == pytest.approx(557, rel=0.25)

    def test_cpu_reduction_band(self, train_report):
        assert 55 <= train_report.cpu_reduction_pct <= 90

    def test_function_reduction_band(self, train_report):
        assert 80 <= train_report.function_reduction_pct <= 97

    def test_gpu_size_band(self, train_report):
        assert train_report.total_gpu_size / MB == pytest.approx(2279, rel=0.15)

    def test_gpu_reduction_band(self, train_report):
        assert 65 <= train_report.gpu_reduction_pct <= 92

    def test_element_count_paper_magnitude(self, train_report_default):
        # 14,062 elements at scale 1; counts scale linearly above the
        # per-kind cubin floor.
        assert train_report_default.total_elements / COUNT_SCALE == (
            pytest.approx(14_062, rel=0.15)
        )

    def test_element_reduction_band(self, train_report_default):
        assert train_report_default.element_reduction_pct >= 95

    def test_element_reduction_band_tiny_scale(self, train_report):
        # Retention floors bite harder at 2% scale; still >90%.
        assert train_report.element_reduction_pct >= 90

    def test_gpu_more_bloated_than_cpu(self, train_report):
        assert train_report.gpu_reduction_pct >= (
            train_report.cpu_reduction_pct - 15
        )


class TestTable3Shape:
    """libtorch_cuda.so: 841 MB (76%), CPU 42 MB (91%), GPU 729 MB (82%),
    2,324 elements (98%)."""

    def test_core_library_row(self, train_report):
        core = train_report.library("libtorch_cuda.so")
        assert core.file_size / MB == pytest.approx(841, rel=0.05)
        assert core.cpu_size / MB == pytest.approx(42, rel=0.05)
        assert core.gpu_size / MB == pytest.approx(729, rel=0.10)
        assert 60 <= core.file_reduction_pct <= 90
        assert 80 <= core.cpu_reduction_pct <= 98
        assert 70 <= core.gpu_reduction_pct <= 95

    def test_core_library_element_magnitude(self, train_report_default):
        core = train_report_default.library("libtorch_cuda.so")
        assert core.n_elements / COUNT_SCALE == pytest.approx(2324, rel=0.1)


class TestFig7Shape:
    def test_reason_i_band(self, train_report):
        shares = train_report.removal_reason_shares()
        from repro.core.locate import RemovalReason

        assert 78 <= shares[RemovalReason.ARCH_MISMATCH] <= 95


class TestTable5Shape:
    def test_runtime_improvements(self, train_report):
        base, after = train_report.baseline, train_report.debloated_run
        # Training: small relative time gain (paper 2.3%).
        time_red = 1 - after.execution_time_s / base.execution_time_s
        assert 0.005 <= time_red <= 0.12
        # CPU memory: large gain (paper 64.2%).
        cpu_red = 1 - after.peak_cpu_mem_bytes / base.peak_cpu_mem_bytes
        assert cpu_red >= 0.25
        # GPU memory: material gain for PyTorch (paper 48.1%).
        gpu_red = 1 - after.peak_gpu_mem_bytes / base.peak_gpu_mem_bytes
        assert gpu_red >= 0.15

    def test_baseline_magnitudes(self, train_report):
        base = train_report.baseline
        assert base.execution_time_s == pytest.approx(179, rel=0.35)
        assert base.peak_cpu_mem_mb == pytest.approx(5487, rel=0.35)
        assert base.peak_gpu_mem_mb == pytest.approx(1539, rel=0.35)


class TestCrossFramework:
    def test_tensorflow_used_bloat(self):
        fw = get_framework("tensorflow", scale=TEST_SCALE)
        report = Debloater(fw).debloat(
            workload_by_id("tensorflow/inference/mobilenetv2")
        )
        tf_core = report.library("libtensorflow_cc.so.2")
        # Paper: only ~52% of tf_cc functions removable vs ~93 for torch.
        assert tf_core.function_reduction_pct <= 70
        assert report.verification.ok

    def test_every_table1_workload_verifies(self):
        from repro.workloads.spec import TABLE1_WORKLOADS
        from repro.core.debloat import DebloatOptions

        for spec in TABLE1_WORKLOADS:
            fw = get_framework(spec.framework, scale=TEST_SCALE)
            report = Debloater(
                fw, DebloatOptions(runtime_comparison_top_n=0)
            ).debloat(spec)
            assert report.verification is not None
            assert report.verification.ok, spec.workload_id

"""ELF64 container tests: structs, string/symbol tables, builder/parser
round trips, and the validator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.elf import constants as C
from repro.elf.builder import ElfBuilder
from repro.elf.image import Section
from repro.elf.parser import parse_shared_library
from repro.elf.structs import Elf64Header, Elf64SectionHeader, Elf64Sym
from repro.elf.strtab import StringTable, StringTableBuilder
from repro.elf.symtab import SymbolTable
from repro.elf.validate import validate_shared_library
from repro.errors import ConfigurationError, ElfFormatError
from repro.utils.sparsefile import SparseFile

from tests.conftest import build_small_library


class TestStructs:
    def test_header_roundtrip(self):
        hdr = Elf64Header(e_shoff=0x1234, e_shnum=7, e_shstrndx=6)
        assert Elf64Header.unpack(hdr.pack()) == hdr

    def test_header_size(self):
        assert len(Elf64Header().pack()) == C.EHDR_SIZE

    def test_bad_magic_rejected(self):
        raw = bytearray(Elf64Header().pack())
        raw[0] = 0x7E
        with pytest.raises(ElfFormatError):
            Elf64Header.unpack(bytes(raw))

    def test_elf32_rejected(self):
        raw = bytearray(Elf64Header().pack())
        raw[4] = 1  # ELFCLASS32
        with pytest.raises(ElfFormatError):
            Elf64Header.unpack(bytes(raw))

    def test_big_endian_rejected(self):
        raw = bytearray(Elf64Header().pack())
        raw[5] = 2
        with pytest.raises(ElfFormatError):
            Elf64Header.unpack(bytes(raw))

    def test_truncated_header(self):
        with pytest.raises(ElfFormatError):
            Elf64Header.unpack(b"\x7fELF")

    def test_shdr_roundtrip(self):
        shdr = Elf64SectionHeader(
            sh_name=5, sh_type=C.SHT_PROGBITS, sh_offset=64, sh_size=100
        )
        assert Elf64SectionHeader.unpack(shdr.pack()) == shdr

    def test_sym_roundtrip(self):
        sym = Elf64Sym(
            st_name=9,
            st_info=C.st_info(C.STB_GLOBAL, C.STT_FUNC),
            st_shndx=1,
            st_value=0x40,
            st_size=32,
        )
        parsed = Elf64Sym.unpack(sym.pack())
        assert parsed == sym
        assert parsed.bind == C.STB_GLOBAL
        assert parsed.type == C.STT_FUNC

    def test_st_info_packing(self):
        info = C.st_info(C.STB_WEAK, C.STT_OBJECT)
        assert C.st_bind(info) == C.STB_WEAK
        assert C.st_type(info) == C.STT_OBJECT


class TestStringTable:
    def test_empty_string_at_zero(self):
        b = StringTableBuilder()
        assert b.add("") == 0

    def test_dedup(self):
        b = StringTableBuilder()
        assert b.add("foo") == b.add("foo")

    def test_nul_rejected(self):
        with pytest.raises(ValueError):
            StringTableBuilder().add("a\x00b")

    def test_roundtrip(self):
        b = StringTableBuilder()
        off = b.add("hello")
        table = StringTable(b.finish())
        assert table.get(off) == "hello"

    def test_add_many_offsets(self):
        b = StringTableBuilder()
        names = [f"n{i}" for i in range(100)]
        offsets = b.add_many(names)
        table = StringTable(b.finish())
        assert table.get_many(offsets) == names

    def test_must_start_with_nul(self):
        with pytest.raises(ElfFormatError):
            StringTable(b"abc\x00")

    def test_must_end_with_nul(self):
        with pytest.raises(ElfFormatError):
            StringTable(b"\x00abc")

    def test_offset_out_of_range(self):
        table = StringTable(b"\x00ab\x00")
        with pytest.raises(ElfFormatError):
            table.get(99)

    @given(st.lists(st.text(
        alphabet=st.characters(blacklist_characters="\x00",
                               blacklist_categories=("Cs",)),
        min_size=1, max_size=12), min_size=1, max_size=20, unique=True))
    def test_roundtrip_property(self, names):
        b = StringTableBuilder()
        offsets = b.add_many(names)
        table = StringTable(b.finish())
        assert table.get_many(offsets) == names


class TestSymbolTable:
    def _table(self, n=10):
        names = [f"fn{i}" for i in range(n)]
        values = np.arange(n, dtype=np.int64) * 100
        sizes = np.full(n, 100, dtype=np.int64)
        return SymbolTable.for_functions(names, values, sizes, section_index=1)

    def test_counts(self):
        t = self._table(7)
        assert len(t) == 7
        assert t.function_count() == 7
        assert t.function_bytes() == 700

    def test_serialization_roundtrip(self):
        t = self._table()
        strtab = StringTableBuilder()
        raw = t.to_bytes(strtab)
        parsed = SymbolTable.parse(raw, strtab.finish())
        assert parsed.names == t.names
        assert np.array_equal(parsed.values, t.values)
        assert np.array_equal(parsed.sizes, t.sizes)

    def test_index_of(self):
        t = self._table()
        assert t.index_of("fn3") == 3
        with pytest.raises(KeyError):
            t.index_of("nope")

    def test_name_index(self):
        assert self._table(4).name_index()["fn2"] == 2

    def test_misaligned_size_rejected(self):
        with pytest.raises(ElfFormatError):
            SymbolTable.parse(b"\x00" * 25, b"\x00")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SymbolTable(np.zeros(2, dtype=self._table().entries.dtype), ["a"])


class TestBuilderParser:
    def test_roundtrip_counts(self, small_library):
        assert small_library.function_count == 12
        assert small_library.element_count == 4
        assert small_library.cpu_code_size == 12 * 64

    def test_vaddr_equals_offset(self, small_library):
        values, sizes = small_library.function_file_ranges()
        text = small_library.text
        assert values[0] == text.header.sh_offset
        data = small_library.data.read(int(values[0]), int(sizes[0]))
        assert len(data) == 64

    def test_full_byte_roundtrip(self, small_library):
        raw = small_library.data.to_bytes()
        reparsed = parse_shared_library(raw, small_library.soname)
        assert reparsed.function_count == small_library.function_count
        assert reparsed.element_count == small_library.element_count
        assert [s.name for s in reparsed.sections] == [
            s.name for s in small_library.sections
        ]

    def test_sparse_section_has_logical_size(self):
        b = ElfBuilder("lib.so")
        b.add_section(".blob", logical_size=1 << 20)
        lib = parse_shared_library(b.build(), "lib.so")
        sec = lib.section(".blob")
        assert sec is not None and sec.size == 1 << 20
        assert lib.data.materialized_size < 4096

    def test_duplicate_section_rejected(self):
        b = ElfBuilder("x.so")
        b.add_text(10)
        with pytest.raises(ConfigurationError):
            b.add_text(10)

    def test_exactly_one_payload_source(self):
        b = ElfBuilder("x.so")
        with pytest.raises(ConfigurationError):
            b.add_section(".a", data=b"x", logical_size=4)
        with pytest.raises(ConfigurationError):
            b.add_section(".b")

    def test_symbols_require_text_section(self):
        b = ElfBuilder("x.so")
        b.set_function_symbols(
            SymbolTable.for_functions(["f"], np.array([0]), np.array([4]), 1)
        )
        with pytest.raises(ConfigurationError):
            b.build()

    def test_sparse_payload_section(self):
        payload = SparseFile(1000)
        payload.write(10, b"marker")
        b = ElfBuilder("x.so")
        b.add_section(".payload", sparse=payload)
        lib = parse_shared_library(b.build(), "x.so")
        sec = lib.section(".payload")
        assert lib.data.read(sec.header.sh_offset + 10, 6) == b"marker"

    def test_no_section_table_rejected(self):
        with pytest.raises(ElfFormatError):
            parse_shared_library(Elf64Header().pack() + b"\x00" * 64)

    def test_truncated_file_rejected(self):
        with pytest.raises(ElfFormatError):
            parse_shared_library(b"\x7fELF")


class TestValidator:
    def test_clean_library_has_no_errors(self, small_library):
        findings = validate_shared_library(small_library)
        assert not [f for f in findings if f.severity == "error"]

    def test_symbol_outside_text_detected(self, small_library):
        lib = small_library.copy()
        lib.symtab.entries["st_value"][0] = 10**9
        findings = validate_shared_library(lib)
        assert any("outside .text" in f.message for f in findings)

    def test_overlapping_sections_detected(self, small_library):
        lib = small_library.copy()
        # Force .nv_fatbin to overlap .text.
        fat = lib.fatbin_section
        fat.header.sh_offset = lib.text.header.sh_offset
        findings = validate_shared_library(lib)
        assert any("overlap" in f.message for f in findings)

    def test_strict_mode_raises(self, small_library):
        lib = small_library.copy()
        lib.symtab.entries["st_value"][0] = 10**9
        with pytest.raises(ElfFormatError):
            validate_shared_library(lib, strict=True)

    def test_structural_ranges_exclude_code(self, small_library):
        structural = small_library.structural_ranges()
        text = small_library.text
        assert not structural.contains_offset(text.header.sh_offset)
        assert structural.contains_offset(0)  # ELF header


class TestSectionHelpers:
    def test_section_lookup(self, small_library):
        assert small_library.section(".text") is not None
        assert small_library.section(".missing") is None

    def test_require_section(self, small_library):
        with pytest.raises(ElfFormatError):
            small_library.require_section(".missing")

    def test_file_range(self, small_library):
        sec = small_library.text
        assert len(sec.file_range) == sec.size

    def test_copy_is_deep_for_data(self, small_library):
        dup = small_library.copy()
        dup.data.write(0, b"\x00")
        assert small_library.data.read(0, 4) == C.ELF_MAGIC

    def test_repr(self, small_library):
        assert "libsmall.so" in repr(small_library)

    def test_function_names(self):
        lib = build_small_library(n_functions=3)
        assert lib.function_names() == ["fn_0", "fn_1", "fn_2"]

"""Unit + model-based property tests for the sparse file container."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.intervals import Range, RangeSet
from repro.utils.sparsefile import SparseFile


class TestBasics:
    def test_empty(self):
        f = SparseFile()
        assert f.logical_size == 0
        assert f.materialized_size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SparseFile(-1)

    def test_holes_read_zero(self):
        f = SparseFile(10)
        assert f.read(0, 10) == b"\x00" * 10

    def test_write_extends_logical_size(self):
        f = SparseFile(0)
        f.write(100, b"ab")
        assert f.logical_size == 102

    def test_write_then_read(self):
        f = SparseFile(20)
        f.write(5, b"hello")
        assert f.read(5, 5) == b"hello"
        assert f.read(0, 20) == b"\x00" * 5 + b"hello" + b"\x00" * 10

    def test_read_past_end_rejected(self):
        f = SparseFile(10)
        with pytest.raises(ValueError):
            f.read(5, 6)

    def test_read_negative_rejected(self):
        f = SparseFile(10)
        with pytest.raises(ValueError):
            f.read(-1, 2)

    def test_empty_write_is_noop(self):
        f = SparseFile(10)
        f.write(5, b"")
        assert f.materialized_size == 0


class TestExtentMerging:
    def test_adjacent_writes_merge(self):
        f = SparseFile(20)
        f.write(0, b"aa")
        f.write(2, b"bb")
        assert len(f.extents()) == 1
        assert f.read(0, 4) == b"aabb"

    def test_overlapping_write_wins(self):
        f = SparseFile(20)
        f.write(0, b"aaaa")
        f.write(2, b"bb")
        assert f.read(0, 4) == b"aabb"

    def test_disjoint_writes_stay_separate(self):
        f = SparseFile(20)
        f.write(0, b"a")
        f.write(10, b"b")
        assert len(f.extents()) == 2

    def test_bridging_write_merges_three(self):
        f = SparseFile(30)
        f.write(0, b"aa")
        f.write(10, b"cc")
        f.write(2, b"b" * 8)
        assert len(f.extents()) == 1
        assert f.read(0, 12) == b"aa" + b"b" * 8 + b"cc"


class TestZero:
    def test_zero_punches_hole(self):
        f = SparseFile(10)
        f.write(0, b"x" * 10)
        f.zero(3, 4)
        assert f.read(0, 10) == b"xxx\x00\x00\x00\x00xxx"
        assert f.materialized_size == 6

    def test_zero_whole_extent_removes_it(self):
        f = SparseFile(10)
        f.write(2, b"ab")
        f.zero(0, 10)
        assert f.materialized_size == 0

    def test_zero_beyond_end_clamped(self):
        f = SparseFile(5)
        f.write(0, b"abcde")
        f.zero(3, 100)
        assert f.read(0, 5) == b"abc\x00\x00"

    def test_zero_ranges(self):
        f = SparseFile(10)
        f.write(0, b"y" * 10)
        f.zero_ranges(RangeSet([(0, 2), (8, 10)]))
        assert f.read(0, 10) == b"\x00\x00yyyyyy\x00\x00"

    def test_zero_noop_on_hole(self):
        f = SparseFile(10)
        f.zero(0, 5)
        assert f.materialized_size == 0


class TestTruncate:
    def test_shrink_drops_extents(self):
        f = SparseFile(20)
        f.write(15, b"abc")
        f.truncate(10)
        assert f.logical_size == 10
        assert f.materialized_size == 0

    def test_shrink_trims_partial_extent(self):
        f = SparseFile(10)
        f.write(4, b"abcd")
        f.truncate(6)
        assert f.read(4, 2) == b"ab"
        assert f.materialized_size == 2

    def test_grow(self):
        f = SparseFile(5)
        f.truncate(50)
        assert f.read(40, 10) == b"\x00" * 10


class TestConversions:
    def test_bytes_roundtrip(self):
        data = b"\x00abc\x00\x00def"
        f = SparseFile.from_bytes(data)
        assert f.to_bytes() == data

    def test_copy_independent(self):
        f = SparseFile(10)
        f.write(0, b"abc")
        g = f.copy()
        g.write(0, b"xyz")
        assert f.read(0, 3) == b"abc"

    def test_equality(self):
        a = SparseFile(10)
        b = SparseFile(10)
        a.write(1, b"q")
        assert a != b
        b.write(1, b"q")
        assert a == b

    def test_dump_to_real_file(self):
        f = SparseFile(16)
        f.write(4, b"data")
        buf = io.BytesIO()
        f.dump(buf)
        assert buf.getvalue()[4:8] == b"data"

    def test_extents_reported(self):
        f = SparseFile(100)
        f.write(10, b"ab")
        f.write(50, b"cd")
        assert f.extents() == RangeSet([Range(10, 12), Range(50, 52)])


# -- model-based property test ------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 60),
                  st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("zero"), st.integers(0, 60), st.integers(0, 30)),
        # Batched multi-range punch: the vectorized _punch path (affected-
        # chunk masking + survivor slicing) interleaved with everything else.
        st.tuples(
            st.just("zero_ranges"),
            st.lists(
                st.tuples(st.integers(0, 90), st.integers(0, 25)),
                min_size=1, max_size=5,
            ),
        ),
        st.tuples(st.just("truncate"), st.integers(0, 96)),
    ),
    max_size=14,
)


class TestAgainstReferenceModel:
    @settings(max_examples=200)
    @given(_ops)
    def test_matches_bytearray_model(self, ops):
        """SparseFile behaves exactly like a zero-initialized bytearray."""
        size = 96
        sparse = SparseFile(size)
        model = bytearray(size)
        for op in ops:
            if op[0] == "write":
                _, offset, data = op
                sparse.write(offset, data)
                if offset + len(data) > len(model):
                    model.extend(bytes(offset + len(data) - len(model)))
                    size = len(model)
                model[offset : offset + len(data)] = data
            elif op[0] == "zero":
                _, offset, length = op
                sparse.zero(offset, length)
                end = min(offset + length, size)
                if offset < end:
                    model[offset:end] = b"\x00" * (end - offset)
            elif op[0] == "zero_ranges":
                ranges = RangeSet(
                    [(a, a + ln) for a, ln in op[1]]
                )
                sparse.zero_ranges(ranges)
                for rng in ranges:
                    end = min(rng.stop, size)
                    if rng.start < end:
                        model[rng.start:end] = b"\x00" * (end - rng.start)
            else:
                _, new_size = op
                sparse.truncate(new_size)
                model = model[:new_size] + bytearray(
                    max(0, new_size - len(model))
                )
                size = new_size
            self._check_invariants(sparse)
        assert sparse.logical_size == len(model)
        assert sparse.to_bytes() == bytes(model)
        # Materialized bytes never exceed the number of nonzero-ish bytes
        # plus overwritten runs; at minimum, all nonzero bytes are stored.
        nonzero = sum(1 for b in model if b)
        assert sparse.materialized_size >= nonzero

    @staticmethod
    def _check_invariants(sparse: SparseFile) -> None:
        """Extents stay sorted, disjoint, non-adjacent, chunk-aligned."""
        starts = sparse._starts
        ends = sparse._ends
        assert len(starts) == len(ends) == len(sparse._chunks)
        for i, chunk in enumerate(sparse._chunks):
            assert ends[i] - starts[i] == len(chunk)
        if len(starts) > 1:
            # Strictly increasing with a gap: no touching extents survive.
            assert (starts[1:] > ends[:-1]).all()


class TestWriteBatch:
    """``write_batch`` == sequential ``write`` calls, structurally."""

    def _assert_structurally_equal(self, a: SparseFile, b: SparseFile):
        assert a == b  # extent starts + chunk payloads
        assert a.logical_size == b.logical_size
        assert (a._ends == b._ends).all()

    def test_interior_patches_match_sequential(self):
        base = bytes(range(256)) * 4
        batched = SparseFile.from_bytes(base)
        sequential = SparseFile.from_bytes(base)
        offsets = [0, 17, 500, 1020]
        blobs = [b"AAAA", b"bb", b"cccccc", b"dddd"]
        batched.write_batch(offsets, blobs)
        for offset, blob in zip(offsets, blobs):
            sequential.write(offset, blob)
        self._assert_structurally_equal(batched, sequential)

    def test_multiple_patches_in_one_chunk_apply_in_order(self):
        batched = SparseFile.from_bytes(b"\xff" * 64)
        sequential = SparseFile.from_bytes(b"\xff" * 64)
        offsets = [10, 8, 12]  # overlapping: later writes win
        blobs = [b"XXXX", b"yyyy", b"zz"]
        batched.write_batch(offsets, blobs)
        for offset, blob in zip(offsets, blobs):
            sequential.write(offset, blob)
        self._assert_structurally_equal(batched, sequential)

    def test_fallback_for_extending_or_bridging_writes(self):
        for offsets, blobs in (
            ([100], [b"grow"]),          # past the last extent
            ([30], [b"bridge" * 4]),     # spans a hole between extents
        ):
            batched = SparseFile(64)
            batched.write(0, b"a" * 32)
            batched.write(40, b"b" * 8)
            sequential = batched.copy()
            batched.write_batch(offsets, blobs)
            for offset, blob in zip(offsets, blobs):
                sequential.write(offset, blob)
            self._assert_structurally_equal(batched, sequential)

    def test_empty_batch_and_empty_blobs(self):
        sparse = SparseFile.from_bytes(b"abcdef")
        before = sparse.copy()
        sparse.write_batch([], [])
        sparse.write_batch([2], [b""])
        self._assert_structurally_equal(sparse, before)

    def test_mismatched_lengths_rejected(self):
        sparse = SparseFile.from_bytes(b"abcdef")
        with pytest.raises(ValueError):
            sparse.write_batch([1, 2], [b"x"])
        with pytest.raises(ValueError):
            sparse.write_batch([-1], [b"x"])

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=600),
                st.binary(min_size=0, max_size=40),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_fuzz_equivalence(self, writes):
        base = SparseFile(640)
        base.write(50, b"\x11" * 100)
        base.write(300, b"\x22" * 200)
        batched = base.copy()
        sequential = base.copy()
        offsets = [o for o, _ in writes]
        blobs = [b for _, b in writes]
        batched.write_batch(offsets, blobs)
        for offset, blob in writes:
            sequential.write(offset, blob)
        assert batched == sequential
        assert batched.to_bytes() == sequential.to_bytes()

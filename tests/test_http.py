"""Tests for the asyncio HTTP/JSON serving tier: routes and wire schemas,
backpressure (503 load-shed), deadlines (504), request coalescing
byte-identity, health flipping under the ci-standard fault plan, and
graceful drain with zero hung requests."""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.api import DebloatEngine, EngineConfig, HttpConfig
from repro.api.federation import StoreFederation
from repro.core.debloat import DebloatOptions
from repro.errors import ConfigurationError, UsageError
from repro.serving.http import BackgroundHttpServer, parse_http_address
from repro.serving.store import DebloatStore
from repro.testing import faults
from repro.utils.retry import RetryPolicy
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE

OPTS = DebloatOptions(runtime_comparison_top_n=0)

PT_IDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
]


def engine_cfg(http: HttpConfig, **kwargs) -> EngineConfig:
    defaults = dict(
        scale=TEST_SCALE, options=OPTS, use_cache=False,
        workers=2, batch_max=8, http=http,
    )
    defaults.update(kwargs)
    return EngineConfig(**defaults)


def http_cfg(**kwargs) -> HttpConfig:
    defaults = dict(port=0, coalesce_window_s=0.01)
    defaults.update(kwargs)
    return HttpConfig(**defaults)


def request(
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    timeout: float = 120.0,
):
    """One HTTP exchange -> (status, headers dict, decoded JSON or text)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body)
        resp = conn.getresponse()
        raw = resp.read()
        headers = {k.lower(): v for k, v in resp.getheaders()}
        if headers.get("content-type", "").startswith("application/json"):
            return resp.status, headers, json.loads(raw)
        return resp.status, headers, raw.decode()
    finally:
        conn.close()


def assert_same_libraries(a: dict, b: dict) -> None:
    assert sorted(a) == sorted(b)
    for soname, d in a.items():
        other = b[soname]
        assert d.lib.data == other.lib.data, soname
        assert d.removed_cpu_ranges == other.removed_cpu_ranges, soname
        assert d.removed_gpu_ranges == other.removed_gpu_ranges, soname


class TestWireSchemas:
    def test_parse_http_address(self):
        assert parse_http_address(":8000") == ("127.0.0.1", 8000)
        assert parse_http_address("8000") == ("127.0.0.1", 8000)
        assert parse_http_address("0.0.0.0:80") == ("0.0.0.0", 80)
        with pytest.raises(UsageError):
            parse_http_address("nope")
        with pytest.raises(UsageError):
            parse_http_address(":70000")

    def test_http_config_validation(self):
        with pytest.raises(ConfigurationError):
            HttpConfig(queue_bound=0)
        with pytest.raises(ConfigurationError):
            HttpConfig(request_deadline_s=0)
        with pytest.raises(ConfigurationError):
            HttpConfig(coalesce_window_s=-1)


class TestRoutes:
    @pytest.fixture(scope="class")
    def served(self, pytorch):
        engine = DebloatEngine(engine_cfg(http_cfg()))
        with BackgroundHttpServer(engine, engine.config.http) as bg:
            yield bg

    def test_admit_then_inspect(self, served):
        status, _, body = request(
            served.port, "POST", "/v1/admit", {"workload_id": PT_IDS[0]}
        )
        assert status == 200
        assert body["workload_id"] == PT_IDS[0]
        assert body["generation"] == 1
        assert body["new_kernels"] > 0
        assert body["cache_source"] in ("cache", "run")
        assert body["latency_s"] > 0
        assert "queue_wait_s" in body

        status, _, snap = request(served.port, "GET", "/v1/snapshot")
        assert status == 200
        assert PT_IDS[0] in snap["shards"]["pytorch"]["workload_ids"]

        status, _, health = request(served.port, "GET", "/healthz")
        assert status == 200
        assert health["state"] == "ok"

        status, headers, text = request(served.port, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert "negativa_admissions_served_total 1" in text
        assert "negativa_admission_latency_seconds_bucket" in text
        assert "negativa_serving_served 1" in text
        for gauge in (
            "storage_blocks_total",
            "storage_bytes_physical",
            "storage_bytes_logical",
            "storage_dedupe_ratio",
            "storage_evicted_bytes_total",
        ):
            assert f"negativa_{gauge} " in text, gauge

        audit = list(served.server.audit)
        admit_records = [r for r in audit if r["path"] == "/v1/admit"]
        assert admit_records and admit_records[0]["outcome"] == "served"
        assert admit_records[0]["workload_id"] == PT_IDS[0]
        assert "request_id" in admit_records[0]
        assert "queue_wait_s" in admit_records[0]

    def test_admit_batch(self, served):
        status, _, body = request(
            served.port, "POST", "/v1/admit_batch",
            {"workloads": [{"workload_id": wid} for wid in PT_IDS[:2]]},
        )
        assert status == 200
        assert not body["failed"]
        assert [r["workload_id"] for r in body["results"]] == PT_IDS[:2]

    def test_evict(self, served):
        request(
            served.port, "POST", "/v1/admit", {"workload_id": PT_IDS[0]}
        )
        status, _, body = request(
            served.port, "POST", "/v1/evict", {"workload_id": PT_IDS[0]}
        )
        assert status == 200
        assert body["workload_id"] == PT_IDS[0]
        assert "pytorch" in body["evicted"]

    def test_snapshot_export(self, served, tmp_path):
        request(
            served.port, "POST", "/v1/admit", {"workload_id": PT_IDS[0]}
        )
        directory = str(tmp_path / "snap")
        status, _, body = request(
            served.port, "POST", "/v1/snapshot/export",
            {"directory": directory},
        )
        assert status == 200
        assert body["directory"] == directory
        assert body["wall_s"] >= 0
        (entry,) = body["shards"]
        assert entry["framework"] == "pytorch"
        assert entry["generation"] >= 1
        shard_path = tmp_path / "snap" / entry["file"]
        assert shard_path.stat().st_size == entry["bytes"] > 0
        assert (tmp_path / "snap" / "MANIFEST.json").exists()

        # No directory in the body and no configured snapshot_dir: 400.
        status, _, body = request(
            served.port, "POST", "/v1/snapshot/export", {}
        )
        assert status == 400
        assert body["type"] == "UsageError"

        status, _, body = request(
            served.port, "POST", "/v1/snapshot/export", {"directory": 7}
        )
        assert status == 400
        assert body["type"] == "ProtocolError"

    def test_protocol_errors_are_400(self, served):
        cases = [
            ("POST", "/v1/admit", {"workload_id": "no/such/workload"}),
            ("POST", "/v1/admit", {"workload_id": PT_IDS[0],
                                   "batch_size": "eight"}),
            ("POST", "/v1/admit", {"workload_id": PT_IDS[0],
                                   "deadline_s": -1}),
            ("POST", "/v1/admit_batch", {"workloads": []}),
            ("POST", "/v1/evict", {}),
        ]
        for method, path, payload in cases:
            status, _, body = request(served.port, method, path, payload)
            assert status == 400, (path, payload, body)
            assert body["type"] == "ProtocolError"

    def test_unknown_routes(self, served):
        status, _, _ = request(served.port, "GET", "/nope")
        assert status == 404
        status, _, _ = request(served.port, "GET", "/v1/admit")
        assert status == 405
        conn = http.client.HTTPConnection(
            "127.0.0.1", served.port, timeout=30
        )
        try:
            conn.request("POST", "/v1/admit", b"{not json",
                         {"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()


class _GatedAdmits:
    """Monkeypatch StoreFederation.admit to block on a gate event."""

    def __init__(self, monkeypatch):
        self.gate = threading.Event()
        self.entered = threading.Semaphore(0)
        original = StoreFederation.admit
        harness = self

        def gated(self, spec, verify=False, pinned=False):
            harness.entered.release()
            assert harness.gate.wait(120), "gate never released"
            return original(self, spec, verify=verify, pinned=pinned)

        monkeypatch.setattr(StoreFederation, "admit", gated)


class TestBackpressure:
    def test_queue_full_sheds_503_with_retry_after(
        self, pytorch, monkeypatch
    ):
        gated = _GatedAdmits(monkeypatch)
        engine = DebloatEngine(engine_cfg(
            http_cfg(queue_bound=2, coalesce_window_s=0.0),
            workers=1, batch_max=1,
        ))
        with BackgroundHttpServer(engine, engine.config.http) as bg:
            outcomes: list[int] = []

            def admit_blocking():
                status, _, _ = request(
                    bg.port, "POST", "/v1/admit",
                    {"workload_id": PT_IDS[0]},
                )
                outcomes.append(status)

            holders = [
                threading.Thread(target=admit_blocking) for _ in range(2)
            ]
            for t in holders:
                t.start()
            # Wait until the worker is inside the gated admit, so both
            # slots of the bound are provably occupied.
            assert gated.entered.acquire(timeout=60)
            deadline = time.monotonic() + 60
            while bg.server._inflight < 2:
                assert time.monotonic() < deadline
                time.sleep(0.005)

            status, headers, body = request(
                bg.port, "POST", "/v1/admit", {"workload_id": PT_IDS[1]}
            )
            assert status == 503
            assert headers["retry-after"] == "1"
            assert "full" in body["error"]

            gated.gate.set()
            for t in holders:
                t.join(timeout=120)
            assert outcomes == [200, 200]
            shed = [
                r for r in bg.server.audit
                if r["path"] == "/v1/admit" and r["status"] == 503
            ]
            assert shed, "shed request must be audited"

    def test_deadline_resolves_504(self, pytorch, monkeypatch):
        gated = _GatedAdmits(monkeypatch)
        engine = DebloatEngine(engine_cfg(
            http_cfg(coalesce_window_s=0.0), workers=1, batch_max=1,
        ))
        with BackgroundHttpServer(engine, engine.config.http) as bg:
            started = time.monotonic()
            status, _, body = request(
                bg.port, "POST", "/v1/admit",
                {"workload_id": PT_IDS[0], "deadline_s": 0.3},
            )
            waited = time.monotonic() - started
            assert status == 504
            assert body["type"] == "TicketTimeoutError"
            assert waited < 30  # resolved by the deadline, not the admit
            gated.gate.set()
            # The ticket stays valid: the admission still lands, and the
            # server drains cleanly on exit.
            deadline = time.monotonic() + 120
            while not bg.server.engine.server().stats()["served"]:
                assert time.monotonic() < deadline
                time.sleep(0.01)


class TestCoalescing:
    def test_coalesced_equals_sequential_byte_identically(self, pytorch):
        engine = DebloatEngine(engine_cfg(
            http_cfg(coalesce_window_s=0.25, coalesce_max=8), workers=1,
        ))
        with BackgroundHttpServer(engine, engine.config.http) as bg:
            statuses: list[int] = []
            barrier = threading.Barrier(len(PT_IDS))

            def admit(wid: str) -> None:
                barrier.wait()
                status, _, _ = request(
                    bg.port, "POST", "/v1/admit", {"workload_id": wid}
                )
                statuses.append(status)

            threads = [
                threading.Thread(target=admit, args=(wid,))
                for wid in PT_IDS
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert statuses == [200, 200, 200]
            store = engine.federation.shard("pytorch").store
            coalesced = bg.server.metrics.counter_total(
                "coalesced_admissions_total"
            )
            assert coalesced == len(PT_IDS)

        sequential = DebloatStore(pytorch, OPTS)
        for wid in PT_IDS:
            sequential.admit(workload_by_id(wid))
        assert_same_libraries(
            store.debloated_libraries(), sequential.debloated_libraries()
        )
        assert store.generation == sequential.generation


class TestHealthUnderFaults:
    def test_healthz_flips_503_and_recovers(self, pytorch):
        engine = DebloatEngine(engine_cfg(
            http_cfg(coalesce_window_s=0.0),
            workers=1, batch_max=1, retry=RetryPolicy(max_attempts=1),
        ))
        plan = faults.named_plan("ci-standard")
        with BackgroundHttpServer(engine, engine.config.http) as bg:
            # Warm the shard first: a failure before the framework's
            # shard registers is (by design) not attributable to it.
            status, _, _ = request(
                bg.port, "POST", "/v1/admit", {"workload_id": PT_IDS[0]}
            )
            assert status == 200
            status, _, _ = request(bg.port, "GET", "/healthz")
            assert status == 200

            with faults.fault_plan(plan):
                # ci-standard: worker.pre_merge fires on the first
                # admission under the plan -> AdmissionError -> shard
                # degraded.
                status, _, body = request(
                    bg.port, "POST", "/v1/admit",
                    {"workload_id": PT_IDS[0]},
                )
                assert status == 500
                assert body["type"] == "AdmissionError"
                status, _, health = request(bg.port, "GET", "/healthz")
                assert status == 503
                assert health["target"]["state"] != "ok"

                # Re-admitting eventually clears the plan's one-shot
                # ordinals; the first 200 flips health back.
                for _ in range(8):
                    status, _, _ = request(
                        bg.port, "POST", "/v1/admit",
                        {"workload_id": PT_IDS[0]},
                    )
                    if status == 200:
                        break
                assert status == 200
                status, _, health = request(bg.port, "GET", "/healthz")
                assert status == 200
                assert health["target"]["state"] == "ok"


class TestDrain:
    def test_drain_with_requests_in_flight_never_hangs(self, pytorch):
        engine = DebloatEngine(engine_cfg(
            http_cfg(coalesce_window_s=0.0), workers=2,
        ))
        bg = BackgroundHttpServer(engine, engine.config.http).start()
        statuses: list[int] = []

        def admit(wid: str) -> None:
            status, _, _ = request(
                bg.port, "POST", "/v1/admit", {"workload_id": wid}
            )
            statuses.append(status)

        threads = [
            threading.Thread(target=admit, args=(wid,)) for wid in PT_IDS
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 60
        while bg.server._inflight < len(PT_IDS) and not statuses:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        # Drain while admissions are in flight: close() semantics
        # guarantee each gets a final response.
        bg.stop()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "request hung through drain"
        assert len(statuses) == len(PT_IDS)
        # Queued admissions are drained (200) - close() never strands
        # one - and anything the engine refused is a clean typed 503.
        assert set(statuses) <= {200, 503}
        assert statuses.count(200) >= 1

    def test_admit_after_drain_is_refused(self, pytorch):
        engine = DebloatEngine(engine_cfg(http_cfg()))
        bg = BackgroundHttpServer(engine, engine.config.http).start()
        port = bg.port
        request(port, "POST", "/v1/admit", {"workload_id": PT_IDS[0]})
        bg.stop()
        with pytest.raises(OSError):
            request(port, "POST", "/v1/admit", {"workload_id": PT_IDS[1]})


class TestConcurrentClients:
    def test_http_end_state_matches_in_process(self, pytorch):
        """Acceptance: >= 8 concurrent HTTP clients; end state must be
        byte-identical to admitting the same arrivals in-process."""
        arrivals = [PT_IDS[i % len(PT_IDS)] for i in range(8)]
        engine = DebloatEngine(engine_cfg(http_cfg(), workers=2))
        with BackgroundHttpServer(engine, engine.config.http) as bg:
            statuses: list[int] = []
            lock = threading.Lock()
            barrier = threading.Barrier(len(arrivals))

            def client(wid: str) -> None:
                barrier.wait()
                status, _, _ = request(
                    bg.port, "POST", "/v1/admit", {"workload_id": wid}
                )
                with lock:
                    statuses.append(status)

            threads = [
                threading.Thread(target=client, args=(wid,))
                for wid in arrivals
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            assert statuses == [200] * len(arrivals)
            store = engine.federation.shard("pytorch").store

        in_process = DebloatStore(pytorch, OPTS)
        for wid in arrivals:
            in_process.admit(workload_by_id(wid))
        assert_same_libraries(
            store.debloated_libraries(), in_process.debloated_libraries()
        )
        assert store.generation == in_process.generation
        assert (
            sorted(store.snapshot().workload_ids)
            == sorted(in_process.snapshot().workload_ids)
        )

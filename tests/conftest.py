"""Shared fixtures: tiny-scale framework builds and canonical workloads.

Tests run at ``scale=0.02`` (entity counts ~2% of paper magnitude, byte
sizes unchanged) so a full debloat pipeline takes well under a second.
Framework builds are session-scoped: generation is deterministic, and the
pipeline never mutates original libraries (compaction copies).

Every test gets an isolated ``REPRO_PIPELINE_CACHE_DIR`` (a per-test tmp
dir): the pipeline cache's disk tier resolves that variable on every
operation, so the suite can exercise persistence freely without ever
reading - or polluting - a developer's real ``~/.cache/repro-debloat``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuda.clock import VirtualClock
from repro.elf.builder import ElfBuilder
from repro.elf.parser import parse_shared_library
from repro.elf.symtab import SymbolTable
from repro.fatbin.builder import FatbinBuilder
from repro.fatbin.cubin import Cubin
from repro.frameworks.catalog import get_framework
from repro.workloads.spec import TABLE1_WORKLOADS, workload_by_id

TEST_SCALE = 0.02


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    """Point the pipeline cache's disk tier at a per-test tmp directory."""
    monkeypatch.setenv(
        "REPRO_PIPELINE_CACHE_DIR", str(tmp_path / "pipeline-cache")
    )


@pytest.fixture(scope="session")
def pytorch():
    return get_framework("pytorch", scale=TEST_SCALE)


@pytest.fixture(scope="session")
def tensorflow():
    return get_framework("tensorflow", scale=TEST_SCALE)


@pytest.fixture(scope="session")
def transformers_fw():
    return get_framework("transformers", scale=TEST_SCALE)


@pytest.fixture(scope="session")
def vllm_fw():
    return get_framework("vllm", scale=TEST_SCALE)


@pytest.fixture()
def mobilenet_train_spec():
    return workload_by_id("pytorch/train/mobilenetv2")


@pytest.fixture()
def mobilenet_infer_spec():
    return workload_by_id("pytorch/inference/mobilenetv2")


@pytest.fixture()
def all_workloads():
    return TABLE1_WORKLOADS


@pytest.fixture()
def clock():
    return VirtualClock()


def build_small_library(
    soname: str = "libsmall.so",
    n_functions: int = 12,
    fn_size: int = 64,
    archs: tuple[int, ...] = (70, 75),
    kernels_per_cubin: int = 4,
    cubins_per_arch: int = 2,
    with_edges: bool = True,
):
    """Hand-built tiny library with known geometry (unit-test workhorse)."""
    names = [f"fn_{i}" for i in range(n_functions)]
    sizes = np.full(n_functions, fn_size, dtype=np.int64)
    offsets = np.arange(n_functions, dtype=np.int64) * fn_size
    symtab = SymbolTable.for_functions(names, offsets, sizes, section_index=1)

    fb = FatbinBuilder()
    for arch in archs:
        region = fb.add_region()
        for c in range(cubins_per_arch):
            n = kernels_per_cubin
            entry = np.zeros(n, dtype=bool)
            entry[: max(1, n // 2)] = True
            edges = []
            if with_edges and n >= 2:
                edges = [(0, n - 1)]
            cubin = Cubin.build(
                names=[f"k_{c}_{j}" for j in range(n)],
                code_sizes=np.full(n, 128, dtype=np.int64),
                entry_mask=entry,
                launch_edges=edges,
            )
            region.add_element(cubin, sm_arch=arch)

    builder = ElfBuilder(soname)
    builder.add_text(int(sizes.sum()))
    builder.add_fatbin(fb.build())
    builder.set_function_symbols(symtab)
    return parse_shared_library(builder.build(), soname)


@pytest.fixture()
def small_library():
    return build_small_library()

"""Tests for the §5 extensions: used-bloat analysis and multi-workload
debloating."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.debloat import Debloater, DebloatOptions
from repro.core.usedbloat import analyze_used_bloat
from repro.errors import UsageError
from repro.frameworks.catalog import get_framework
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE


class TestUsedBloat:
    @pytest.fixture(scope="class")
    def torch_report(self):
        spec = workload_by_id("pytorch/train/mobilenetv2")
        return analyze_used_bloat(spec, get_framework("pytorch", TEST_SCALE))

    def test_partitions_executed_code(self, torch_report):
        for lib in torch_report.libraries:
            assert 0 <= lib.startup_only_functions <= lib.used_functions
            assert 0 <= lib.startup_only_bytes <= lib.used_bytes
            assert lib.recurring_functions == (
                lib.used_functions - lib.startup_only_functions
            )

    def test_infra_is_startup_only(self, torch_report):
        """Boot-time infra pools never recur - pure used-bloat candidates."""
        lib = torch_report.library("libc.so.6")
        assert lib.used_functions > 0
        assert lib.startup_only_functions == lib.used_functions

    def test_op_code_recurs(self, torch_report):
        """Kernel-library op pools are first touched inside the loop."""
        lib = torch_report.library("libcudnn_cnn_infer.so.8")
        assert lib.recurring_functions > 0

    def test_share_bounds(self, torch_report):
        assert 0 < torch_report.startup_share_pct <= 100

    def test_tf_exceeds_torch(self, torch_report):
        tf_spec = workload_by_id("tensorflow/train/mobilenetv2")
        tf_report = analyze_used_bloat(
            tf_spec, get_framework("tensorflow", TEST_SCALE)
        )
        assert (
            tf_report.total_startup_only_bytes
            > torch_report.total_startup_only_bytes
        )

    def test_top_by_startup_bytes(self, torch_report):
        top = torch_report.top_by_startup_bytes(3)
        assert len(top) == 3
        assert top[0].startup_only_bytes >= top[-1].startup_only_bytes

    def test_unknown_library(self, torch_report):
        with pytest.raises(KeyError):
            torch_report.library("nope.so")


class TestMultiWorkloadDebloat:
    @pytest.fixture(scope="class")
    def multi(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        debloater = Debloater(fw, DebloatOptions(runtime_comparison_top_n=0))
        specs = [
            workload_by_id("pytorch/train/mobilenetv2"),
            workload_by_id("pytorch/inference/mobilenetv2"),
            workload_by_id("pytorch/train/transformer"),
        ]
        return debloater, debloater.debloat_many(specs)

    def test_all_workloads_verify(self, multi):
        _, report = multi
        assert report.all_verified
        assert len(report.verifications) == 3

    def test_reduction_still_substantial(self, multi):
        _, report = multi
        assert report.file_reduction_pct > 40

    def test_union_retains_more_than_any_solo(self, multi):
        debloater, report = multi
        fw = get_framework("pytorch", scale=TEST_SCALE)
        solo = Debloater(
            fw, DebloatOptions(runtime_comparison_top_n=0)
        ).debloat(workload_by_id("pytorch/train/mobilenetv2"))
        assert report.total_file_size_after > solo.total_file_size_after

    def test_usage_saturates(self, multi):
        _, report = multi
        series = report.saturation_series()
        assert series[0][1] > series[1][1]  # first workload pins the most

    def test_requires_matching_framework(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        with pytest.raises(UsageError):
            Debloater(fw).debloat_many(
                [workload_by_id("tensorflow/train/mobilenetv2")]
            )

    def test_requires_nonempty(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        with pytest.raises(UsageError):
            Debloater(fw).debloat_many([])

    def test_requires_single_architecture(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        with pytest.raises(UsageError):
            Debloater(fw).debloat_many(
                [
                    workload_by_id("pytorch/inference/mobilenetv2"),
                    workload_by_id("pytorch/inference/mobilenetv2").variant(
                        device_name="h100"
                    ),
                ]
            )

    def test_cross_workload_use_breaks_solo_debloat(self):
        """A library debloated for workload A alone must fail workload B -
        the motivation for multi-workload debloating."""
        from repro.core.verify import verify_debloat
        from repro.workloads.runner import WorkloadRunner

        fw = get_framework("pytorch", scale=TEST_SCALE)
        spec_a = workload_by_id("pytorch/inference/mobilenetv2")
        spec_b = workload_by_id("pytorch/train/transformer")
        debloater = Debloater(fw, DebloatOptions(runtime_comparison_top_n=0))
        debloater.debloat(spec_a)
        baseline_b = WorkloadRunner(spec_b, fw).run()
        result = verify_debloat(
            spec_b, fw, debloater.debloated_libraries, baseline_b
        )
        assert not result.ok

"""Process-sharded locate/compact fan-out tests.

``locate_workers_mode="process"`` shards the per-library loop across a
ProcessPoolExecutor and ships ``DebloatedLibrary``/``LocateResult``
payloads back through :mod:`repro.core.serialize`.  The contract: reports,
timings, and the compacted library *bytes* are identical to serial and
threaded execution, and non-catalog builds fall back to threads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import serialize
from repro.core.compact import Compactor
from repro.core.cpu import FunctionLocator
from repro.core.debloat import (
    DebloatOptions,
    Debloater,
    _process_sharded_locate_compact,
)
from repro.core.locate import KernelLocator
from repro.errors import ConfigurationError
from repro.frameworks.catalog import build_key_for, get_framework
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE, build_small_library

FAST = dict(verify=False, runtime_comparison_top_n=0)


class TestShardPayloadRoundTrip:
    def _compacted(self):
        lib = build_small_library()
        gpu = KernelLocator().locate(lib, frozenset({"k_0_0"}), 75)
        cpu = FunctionLocator().locate(lib, np.array([0, 1, 5]))
        return lib, Compactor().compact(lib, cpu, gpu)

    def test_sparsefile_roundtrip_exact(self):
        lib, debloated = self._compacted()
        payload = serialize.sparsefile_to_payload(debloated.lib.data)
        rebuilt = serialize.sparsefile_from_payload(payload)
        assert rebuilt == debloated.lib.data  # extents AND chunks
        assert rebuilt.logical_size == debloated.lib.data.logical_size

    def test_debloated_roundtrip(self):
        lib, debloated = self._compacted()
        payload = serialize.debloated_to_payload(debloated)
        # The payload survives the binary container (what workers ship).
        payload = serialize.value_loads(
            serialize.value_dumps(payload, serialize.SHARD_RESULT_KIND),
            serialize.SHARD_RESULT_KIND,
        )
        rebuilt = serialize.debloated_from_payload(payload, lib)
        assert rebuilt.lib.data == debloated.lib.data
        assert rebuilt.original is lib
        assert rebuilt.removed_cpu_ranges == debloated.removed_cpu_ranges
        assert rebuilt.removed_gpu_ranges == debloated.removed_gpu_ranges
        assert rebuilt.removed_elements == debloated.removed_elements
        assert rebuilt.removed_functions == debloated.removed_functions
        assert rebuilt.compacted_file_size == debloated.compacted_file_size
        assert rebuilt.lib.tags.keys() == debloated.lib.tags.keys()
        assert np.array_equal(
            rebuilt.lib.tags["removed_function_mask"],
            debloated.lib.tags["removed_function_mask"],
        )

    def test_mismatched_original_rejected(self):
        lib, debloated = self._compacted()
        other = build_small_library(soname="libother.so")
        payload = serialize.debloated_to_payload(debloated)
        with pytest.raises(Exception):
            serialize.debloated_from_payload(payload, other)


class TestProcessFanOutIdentity:
    @pytest.mark.parametrize("spec_id", ["pytorch/train/mobilenetv2"])
    def test_serial_thread_process_identical(self, pytorch, spec_id):
        spec = workload_by_id(spec_id)
        reports, libsets = {}, {}
        for label, opts in [
            ("serial", DebloatOptions(**FAST)),
            ("thread", DebloatOptions(locate_workers=4, **FAST)),
            (
                "process",
                DebloatOptions(
                    locate_workers=4, locate_workers_mode="process", **FAST
                ),
            ),
        ]:
            debloater = Debloater(pytorch, opts)
            reports[label] = debloater.debloat(spec)
            libsets[label] = debloater.debloated_libraries
        for label in ("thread", "process"):
            assert serialize.reports_equal(
                reports["serial"], reports[label]
            ), label
            for soname, d in libsets["serial"].items():
                other = libsets[label][soname]
                assert d.lib.data == other.lib.data, (label, soname)
                assert d.removed_cpu_ranges == other.removed_cpu_ranges
                assert d.removed_gpu_ranges == other.removed_gpu_ranges
                assert d.compacted_file_size == other.compacted_file_size

    def test_non_catalog_build_falls_back(self, pytorch):
        """A hand-made framework cannot be regenerated in a worker."""
        from repro.frameworks.spec import Framework

        orphan = Framework(
            spec=pytorch.spec, libraries=pytorch.libraries,
            scale=pytorch.scale,
        )
        assert build_key_for(orphan) is None
        assert (
            _process_sharded_locate_compact(
                orphan, list(pytorch.libraries.values())[:2], {}, {}, 75,
                DebloatOptions(), 2,
            )
            is None
        )
        # ...and the full pipeline still works (thread fallback).
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        opts = DebloatOptions(
            locate_workers=2, locate_workers_mode="process", **FAST
        )
        report = Debloater(orphan, opts).debloat(spec)
        reference = Debloater(pytorch, DebloatOptions(**FAST)).debloat(spec)
        assert serialize.reports_equal(report, reference)

    def test_catalog_build_key_roundtrip(self, pytorch):
        assert build_key_for(pytorch) is not None
        name, scale, archs = build_key_for(pytorch)
        assert get_framework(name, scale=scale, archs=archs) is pytorch

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            DebloatOptions(locate_workers_mode="fleet")

    def test_mode_default_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCATE_WORKERS_MODE", "process")
        assert DebloatOptions().locate_workers_mode == "process"
        monkeypatch.delenv("REPRO_LOCATE_WORKERS_MODE")
        assert DebloatOptions().locate_workers_mode == "thread"

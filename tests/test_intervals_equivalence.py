"""Equivalence fuzzing: the vectorized engine vs the pure-Python oracle.

``repro.utils.intervals.RangeSet`` (NumPy-backed) must be semantically
identical to ``repro.utils._intervals_py.PyRangeSet`` (the seed
implementation, kept as the reference) on arbitrary interval sets: same
normalization, same algebra, same queries.  Hypothesis drives the small
adversarial cases; a seeded NumPy fuzzer covers 10k-range workloads like the
ones the locators produce at paper scale.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils._intervals_py import PyRangeSet
from repro.utils.intervals import Range, RangeSet


def pairs_strategy(max_val: int = 300, max_count: int = 12):
    pair = st.tuples(
        st.integers(0, max_val), st.integers(0, max_val)
    ).map(lambda ab: (min(ab), max(ab)))
    return st.lists(pair, max_size=max_count)


def as_tuples(rs) -> tuple[tuple[int, int], ...]:
    return tuple((r.start, r.stop) for r in rs)


def assert_same(vectorized: RangeSet, reference: PyRangeSet) -> None:
    assert as_tuples(vectorized) == as_tuples(reference)


class TestAlgebraEquivalence:
    @given(pairs_strategy())
    def test_normalization(self, pairs):
        assert_same(RangeSet(pairs), PyRangeSet(pairs))

    @given(pairs_strategy(), pairs_strategy())
    def test_union(self, a, b):
        assert_same(RangeSet(a) | RangeSet(b), PyRangeSet(a) | PyRangeSet(b))

    @given(pairs_strategy(), pairs_strategy())
    def test_intersection(self, a, b):
        assert_same(RangeSet(a) & RangeSet(b), PyRangeSet(a) & PyRangeSet(b))

    @given(pairs_strategy(), pairs_strategy())
    def test_difference(self, a, b):
        assert_same(RangeSet(a) - RangeSet(b), PyRangeSet(a) - PyRangeSet(b))

    @given(pairs_strategy(), st.integers(0, 200), st.integers(0, 200))
    def test_complement(self, a, u0, u1):
        lo, hi = min(u0, u1), max(u0, u1)
        assert_same(
            RangeSet(a).complement((lo, hi)),
            PyRangeSet(a).complement((lo, hi)),
        )

    @given(pairs_strategy(), st.integers(0, 200), st.integers(0, 200))
    def test_clamp(self, a, u0, u1):
        lo, hi = min(u0, u1), max(u0, u1)
        assert_same(RangeSet(a).clamp((lo, hi)), PyRangeSet(a).clamp((lo, hi)))

    @given(pairs_strategy(), st.integers(0, 1000))
    def test_shift(self, a, delta):
        assert_same(RangeSet(a).shift(delta), PyRangeSet(a).shift(delta))


class TestQueryEquivalence:
    @given(pairs_strategy(), st.integers(0, 320))
    def test_contains_offset(self, a, offset):
        assert RangeSet(a).contains_offset(offset) == PyRangeSet(
            a
        ).contains_offset(offset)

    @given(pairs_strategy(), st.integers(0, 300), st.integers(0, 300))
    def test_covers(self, a, r0, r1):
        lo, hi = min(r0, r1), max(r0, r1)
        assert RangeSet(a).covers((lo, hi)) == PyRangeSet(a).covers((lo, hi))

    @given(pairs_strategy())
    def test_scalar_queries(self, a):
        vec, ref = RangeSet(a), PyRangeSet(a)
        assert vec.total() == ref.total()
        assert len(vec) == len(ref)
        assert bool(vec) == bool(ref)
        assert vec.bounds() == ref.bounds()

    @given(pairs_strategy())
    def test_contains_offsets_matches_scalar(self, a):
        vec = RangeSet(a)
        offsets = np.arange(0, 320, dtype=np.int64)
        batched = vec.contains_offsets(offsets)
        assert batched.tolist() == [
            vec.contains_offset(int(o)) for o in offsets
        ]

    @given(pairs_strategy())
    def test_equal_sets_hash_equal(self, a):
        assert hash(RangeSet(a)) == hash(RangeSet(tuple(RangeSet(a))))


class TestBatchedApis:
    def test_from_arrays_matches_constructor(self):
        starts = np.array([40, 0, 10, 10, 90], dtype=np.int64)
        stops = np.array([45, 5, 30, 20, 90], dtype=np.int64)
        assert RangeSet.from_arrays(starts, stops) == RangeSet(
            zip(starts.tolist(), stops.tolist())
        )

    def test_from_arrays_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            RangeSet.from_arrays(np.zeros(3, np.int64), np.zeros(2, np.int64))

    def test_from_arrays_rejects_invalid_ranges(self):
        with pytest.raises(ValueError):
            RangeSet.from_arrays(
                np.array([5], np.int64), np.array([2], np.int64)
            )
        with pytest.raises(ValueError):
            RangeSet.from_arrays(
                np.array([-1], np.int64), np.array([2], np.int64)
            )

    def test_lengths(self):
        rs = RangeSet([(0, 3), (10, 14)])
        assert rs.lengths.tolist() == [3, 4]
        assert rs.starts.tolist() == [0, 10]
        assert rs.stops.tolist() == [3, 14]

    def test_backing_arrays_are_read_only(self):
        rs = RangeSet([(0, 10), (20, 30)])
        with pytest.raises(ValueError):
            rs.starts[0] = 25
        with pytest.raises(ValueError):
            rs.stops[0] = 5
        assert rs.contains_offset(5)

    def test_contains_offsets_empty_set(self):
        assert not RangeSet.empty().contains_offsets(
            np.array([0, 5], dtype=np.int64)
        ).any()


@settings(deadline=None, max_examples=20)
@given(st.integers(0, 2**32 - 1))
def test_large_random_sets_full_algebra(seed):
    """10k-range workloads through the whole algebra, vs the oracle."""
    rng = np.random.default_rng(seed)
    n = 2000

    def make():
        starts = rng.integers(0, 1_000_000, n)
        lengths = rng.integers(0, 400, n)
        return list(zip(starts.tolist(), (starts + lengths).tolist()))

    pa, pb = make(), make()
    a, b = RangeSet(pa), RangeSet(pb)
    ra, rb = PyRangeSet(pa), PyRangeSet(pb)

    assert_same(a | b, ra | rb)
    assert_same(a & b, ra & rb)
    assert_same(a - b, ra - rb)
    assert_same(b - a, rb - ra)
    universe = (0, 1_000_400)
    assert_same(a.complement(universe), ra.complement(universe))

    probes = rng.integers(0, 1_000_400, 256)
    batched = a.contains_offsets(probes)
    assert batched.tolist() == [
        ra.contains_offset(int(o)) for o in probes
    ]
    for r in list(rb)[:64]:
        assert a.covers((r.start, r.stop)) == ra.covers((r.start, r.stop))

"""KernelUsageIndex + vectorized locator tests.

The vectorized ``KernelLocator.locate``/``locate_delta`` passes must be
*indistinguishable* from the seed per-element loop (kept as the
``repro.core._locate_py`` oracle): identical decisions, ranges, aggregate
bytes, reason counts, and clock charges, for arbitrary fatbins and used
sets.  Plus the name-ID table's collision handling and the cached-index
``cuobjdump`` query routing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core.kindex as kindex
from repro.core._locate_py import locate_delta_py, locate_py
from repro.core.kindex import assign_name_ids, build_index, index_for
from repro.core.locate import KernelLocator, LocateResult
from repro.cuda.clock import VirtualClock
from repro.elf.builder import ElfBuilder
from repro.elf.parser import parse_shared_library
from repro.elf.symtab import SymbolTable
from repro.errors import LocationError
from repro.fatbin.builder import FatbinBuilder
from repro.fatbin.cubin import Cubin
from repro.fatbin.cuobjdump import extract_cubins, find_kernel, kernel_inventory

from tests.conftest import build_small_library

#: Kernel-name pool the random fatbins draw from: shared prefixes,
#: duplicates across cubins, and names of equal length (collision bait for
#: the salted-ID regression below).
NAME_POOL = [
    "gemm_f32", "gemm_f16", "conv_k3", "conv_k5", "softmax", "relu",
    "add", "mul", "sum", "norm_a", "norm_b", "attn", "rope", "drop",
]

ARCH_POOL = [70, 75, 80, 86]


@st.composite
def random_libraries(draw):
    """A small random shared library with a random fatbin layout."""
    regions = draw(st.lists(st.sampled_from(ARCH_POOL), min_size=1,
                            max_size=3))
    fb = FatbinBuilder()
    for arch in regions:
        region = fb.add_region()
        n_cubins = draw(st.integers(1, 3))
        for _ in range(n_cubins):
            names = draw(
                st.lists(st.sampled_from(NAME_POOL), min_size=1, max_size=5)
            )
            n = len(names)
            entry = np.asarray(
                draw(st.lists(st.booleans(), min_size=n, max_size=n)),
                dtype=bool,
            )
            edges = []
            if n >= 2 and draw(st.booleans()):
                edges = [(0, n - 1)]
            region.add_element(
                Cubin.build(
                    names=names,
                    code_sizes=np.full(n, 64, dtype=np.int64),
                    entry_mask=entry,
                    launch_edges=edges,
                ),
                sm_arch=arch,
            )
    n_fn = 4
    symtab = SymbolTable.for_functions(
        [f"fn_{i}" for i in range(n_fn)],
        np.arange(n_fn, dtype=np.int64) * 32,
        np.full(n_fn, 32, dtype=np.int64),
        section_index=1,
    )
    builder = ElfBuilder("librandom.so")
    builder.add_text(n_fn * 32)
    builder.add_fatbin(fb.build())
    builder.set_function_symbols(symtab)
    return parse_shared_library(builder.build(), "librandom.so")


used_sets = st.sets(st.sampled_from(NAME_POOL + ["not_in_any_library"]))


def assert_equivalent(a: LocateResult, b: LocateResult) -> None:
    assert a.decisions == b.decisions
    assert a.retain_ranges == b.retain_ranges
    assert a.remove_ranges == b.remove_ranges
    assert a.retained_bytes == b.retained_bytes
    assert a.removed_bytes == b.removed_bytes
    assert a.reason_counts() == b.reason_counts()
    assert np.array_equal(
        a.removed_element_indices(), b.removed_element_indices()
    )


class TestLocateEquivalenceFuzz:
    @settings(max_examples=60, deadline=None)
    @given(lib=random_libraries(), used=used_sets,
           arch=st.sampled_from(ARCH_POOL + [99]))
    def test_locate_matches_oracle(self, lib, used, arch):
        locator = KernelLocator()
        c_vec, c_py = VirtualClock(), VirtualClock()
        vec = locator.locate(lib, frozenset(used), arch, clock=c_vec)
        ref = locate_py(lib, frozenset(used), arch, clock=c_py,
                        costs=locator.costs)
        assert_equivalent(vec, ref)
        assert c_vec.now == c_py.now

    @settings(max_examples=60, deadline=None)
    @given(lib=random_libraries(), first=used_sets, second=used_sets,
           arch=st.sampled_from(ARCH_POOL))
    def test_locate_delta_matches_oracle_and_full(self, lib, first, second,
                                                  arch):
        locator = KernelLocator()
        added = frozenset(second - first)
        prev_vec = locator.locate(lib, frozenset(first), arch)
        prev_py = locate_py(lib, frozenset(first), arch)
        c_vec, c_py = VirtualClock(), VirtualClock()
        delta_vec = locator.locate_delta(lib, prev_vec, added, clock=c_vec)
        delta_py = locate_delta_py(lib, prev_py, added, clock=c_py,
                                   costs=locator.costs)
        full = locator.locate(lib, frozenset(first | second), arch)
        assert_equivalent(delta_vec, delta_py)
        assert_equivalent(delta_vec, full)
        assert c_vec.now == c_py.now

    @settings(max_examples=30, deadline=None)
    @given(lib=random_libraries(), first=used_sets, second=used_sets,
           arch=st.sampled_from(ARCH_POOL))
    def test_delta_against_decision_list_previous(self, lib, first, second,
                                                  arch):
        """Deserialized results carry decisions only - same delta output."""
        locator = KernelLocator()
        added = frozenset(second - first)
        prev = locate_py(lib, frozenset(first), arch)  # list-backed
        assert prev.table is None
        delta = locator.locate_delta(lib, prev, added)
        full = locator.locate(lib, frozenset(first | second), arch)
        assert_equivalent(delta, full)


class TestNameIdTable:
    def test_ids_stable_across_calls(self):
        a, salt_a = assign_name_ids(["x", "y", "z"])
        b, salt_b = assign_name_ids(["z", "y", "x", "x"])
        assert a == b and salt_a == salt_b == 0

    def test_collision_bumps_salt(self, monkeypatch):
        """Two names colliding at salt 0 re-derive the table at salt 1."""
        real = kindex.name_id

        def weak(name: str, salt: int = 0) -> int:
            if salt == 0:
                return len(name)  # every equal-length pair collides
            return real(name, salt)

        monkeypatch.setattr(kindex, "name_id", weak)
        table, salt = assign_name_ids(["ab", "cd", "xyz"])
        assert salt == 1
        assert len(set(table.values())) == 3

    def test_collision_pressure_keeps_locate_correct(self, monkeypatch):
        """An index built under collision pressure locates identically."""
        real = kindex.name_id

        def weak(name: str, salt: int = 0) -> int:
            if salt == 0:
                return len(name)
            return real(name, salt)

        monkeypatch.setattr(kindex, "name_id", weak)
        lib = build_small_library()
        index = build_index(lib)
        assert index.salt == 1  # k_0_0 / k_1_0 etc. collide at salt 0
        result = KernelLocator().locate(
            lib, frozenset({"k_0_0"}), 75, index=index
        )
        ref = locate_py(lib, frozenset({"k_0_0"}), 75)
        assert_equivalent(result, ref)

    def test_unresolvable_collisions_raise(self, monkeypatch):
        monkeypatch.setattr(kindex, "name_id", lambda name, salt=0: 7)
        with pytest.raises(LocationError):
            assign_name_ids(["a", "b"])


class TestIndexCachingAndQueries:
    def test_index_cached_on_library(self):
        lib = build_small_library()
        assert index_for(lib) is index_for(lib)

    def test_index_matches_extraction(self):
        lib = build_small_library()
        index = index_for(lib)
        cubins = extract_cubins(lib)
        assert index.n == len(cubins)
        for row, extracted in enumerate(cubins):
            assert int(index.element_index[row]) == extracted.index
            assert int(index.sm_arch[row]) == extracted.sm_arch
            assert index.element_names(row) == extracted.kernel_names
            assert (
                index.element_entry_names(row)
                == extracted.entry_kernel_names
            )

    def test_find_kernel_routes_through_index(self):
        lib = build_small_library()
        via_index = find_kernel(lib, "k_0_0")
        via_extraction = [
            c for c in extract_cubins(lib) if "k_0_0" in c.kernel_names
        ]
        assert via_index == via_extraction
        assert find_kernel(lib, "missing_kernel") == []

    def test_kernel_inventory_routes_through_index(self):
        lib = build_small_library()
        expected: dict[str, list[int]] = {}
        for cubin in extract_cubins(lib):
            for name in cubin.kernel_names:
                expected.setdefault(name, []).append(cubin.index)
        assert kernel_inventory(lib) == expected

    def test_unknown_used_names_are_ignored(self):
        lib = build_small_library()
        index = index_for(lib)
        assert index.used_id_array({"nope", "also_nope"}).size == 0

    def test_stale_index_rejected_in_delta(self):
        locator = KernelLocator()
        lib = build_small_library()
        other = build_small_library(cubins_per_arch=3)
        prev = locator.locate(lib, frozenset(), 75)
        with pytest.raises(LocationError):
            locator.locate_delta(other, prev, frozenset({"k_0_0"}))

"""Detector/NSys/locator tests: the paper's §3.1-§3.2 mechanisms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cpu import FunctionLocator
from repro.core.detect import KernelDetector
from repro.core.locate import ElementDecision, KernelLocator, RemovalReason
from repro.core.nsys import NsysTracer
from repro.cuda.arch import get_device
from repro.cuda.clock import VirtualClock
from repro.cuda.driver import CudaDriver
from repro.errors import LocationError
from repro.frameworks.catalog import get_framework
from repro.utils.intervals import RangeSet
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE, build_small_library


class TestKernelDetector:
    def _run_with_detector(self, spec_id="pytorch/inference/mobilenetv2"):
        spec = workload_by_id(spec_id)
        fw = get_framework(spec.framework, scale=TEST_SCALE)
        detector = KernelDetector()
        metrics = WorkloadRunner(spec, fw, subscribers=(detector,)).run()
        return detector, metrics

    def test_detector_matches_ground_truth(self):
        """The CUPTI hook rediscovers exactly the runtime's entry kernels."""
        detector, metrics = self._run_with_detector()
        assert detector.used_kernels() == metrics.used_kernels

    def test_once_per_kernel(self):
        detector, _ = self._run_with_detector()
        assert detector.interceptions == detector.total_detected()

    def test_detects_no_device_launched_kernels(self):
        detector, _ = self._run_with_detector()
        fw = get_framework("pytorch", scale=TEST_SCALE)
        for soname, names in detector.used_kernels().items():
            lib = fw.libraries[soname]
            entry_names = set()
            for element in lib.fatbin.elements():
                entry_names.update(element.cubin.entry_kernel_names())
            assert names <= entry_names

    def test_overhead_proportional_to_distinct_kernels(self):
        detector, metrics = self._run_with_detector()
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        fw = get_framework("pytorch", scale=TEST_SCALE)
        base = WorkloadRunner(spec, fw).run()
        per_kernel = detector.costs.detector_callback
        expected = detector.total_detected() * per_kernel
        overhead = metrics.execution_time_s - base.execution_time_s
        # attach cost + per-kernel interceptions dominate the overhead
        assert overhead == pytest.approx(
            expected + detector.costs.cupti_attach, rel=0.05
        )

    def test_clear(self):
        detector, _ = self._run_with_detector()
        detector.clear()
        assert detector.total_detected() == 0


class TestNsys:
    def test_nsys_sees_every_launch(self):
        spec = workload_by_id("pytorch/train/mobilenetv2")
        fw = get_framework("pytorch", scale=TEST_SCALE)
        nsys = NsysTracer()
        metrics = WorkloadRunner(spec, fw, subscribers=(nsys,)).run()
        assert nsys.launch_records == metrics.counters["launches"]

    def test_nsys_detection_equivalent(self):
        """NSys *can* serve as a detector (timeline covers used kernels)."""
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        fw = get_framework(spec.framework, scale=TEST_SCALE)
        nsys = NsysTracer()
        metrics = WorkloadRunner(spec, fw, subscribers=(nsys,)).run()
        assert nsys.used_kernels() == metrics.used_kernels

    def test_nsys_costlier_than_detector(self):
        spec = workload_by_id("pytorch/train/mobilenetv2")
        fw = get_framework(spec.framework, scale=TEST_SCALE)
        base = WorkloadRunner(spec, fw).run().execution_time_s
        det = WorkloadRunner(
            spec, fw, subscribers=(KernelDetector(),)
        ).run().execution_time_s
        nsys = WorkloadRunner(
            spec, fw, subscribers=(NsysTracer(),)
        ).run().execution_time_s
        assert base < det < nsys

    def test_top_kernels(self):
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        fw = get_framework(spec.framework, scale=TEST_SCALE)
        nsys = NsysTracer()
        WorkloadRunner(spec, fw, subscribers=(nsys,)).run()
        top = nsys.top_kernels(5)
        assert len(top) == 5
        assert top[0][2] >= top[-1][2]


class TestKernelLocator:
    def test_decisions_cover_all_elements(self, small_library):
        result = KernelLocator().locate(small_library, frozenset(), 75)
        assert result.element_count == small_library.element_count

    def test_arch_mismatch_reason(self, small_library):
        result = KernelLocator().locate(small_library, frozenset({"k_0_0"}), 75)
        reasons = {d.index: d.reason for d in result.decisions}
        # archs are (70, 75): elements 1-2 are sm_70 -> Reason I.
        assert reasons[1] is RemovalReason.ARCH_MISMATCH
        assert reasons[2] is RemovalReason.ARCH_MISMATCH

    def test_retention_criteria(self, small_library):
        result = KernelLocator().locate(small_library, frozenset({"k_0_0"}), 75)
        retained = [d.index for d in result.retained]
        # Only the sm_75 replica of cubin 0 is retained (element index 3).
        assert retained == [3]
        removed_ii = result.removed_by_reason(RemovalReason.NO_USED_KERNELS)
        assert [d.index for d in removed_ii] == [4]

    def test_no_used_kernels_removes_all_matching(self, small_library):
        result = KernelLocator().locate(small_library, frozenset(), 75)
        assert not result.retained
        assert len(result.removed_by_reason(RemovalReason.NO_USED_KERNELS)) == 2

    def test_device_kernel_name_does_not_retain(self, small_library):
        """Only CPU-launching (entry) kernels drive retention."""
        result = KernelLocator().locate(small_library, frozenset({"k_0_3"}), 75)
        assert not result.retained

    def test_ranges_partition_elements(self, small_library):
        used = frozenset({"k_0_0", "k_1_0"})
        result = KernelLocator().locate(small_library, used, 75)
        assert not (result.retain_ranges & result.remove_ranges)
        total = result.retain_ranges.total() + result.remove_ranges.total()
        assert total == sum(d.size for d in result.decisions)

    def test_whole_element_retention_keeps_children(self, small_library):
        """Retaining the element keeps the full call-graph closure."""
        result = KernelLocator().locate(small_library, frozenset({"k_0_0"}), 75)
        element = small_library.fatbin.element_by_index(result.retained[0].index)
        closure = element.cubin.call_graph_closure([0])
        for k in closure:
            offset = element.payload_offset
            assert result.retain_ranges.contains_offset(offset)

    def test_clock_charged(self, small_library):
        clock = VirtualClock()
        KernelLocator().locate(small_library, frozenset(), 75, clock=clock)
        assert clock.now > 0

    def test_library_without_gpu(self):
        lib = build_small_library(archs=())
        result = KernelLocator().locate(lib, frozenset(), 75)
        assert result.element_count == 0
        assert not result.retain_ranges

    def test_decision_invariant(self):
        with pytest.raises(LocationError):
            ElementDecision(1, 75, 10, 2, retained=True,
                            reason=RemovalReason.ARCH_MISMATCH)

    @settings(max_examples=30)
    @given(st.sets(st.sampled_from(
        [f"k_{c}_{j}" for c in range(2) for j in range(4)]
    )))
    def test_retained_iff_used_entry_property(self, used):
        lib = build_small_library()
        result = KernelLocator().locate(lib, frozenset(used), 75)
        for d in result.decisions:
            element = lib.fatbin.element_by_index(d.index)
            entry = set(element.cubin.entry_kernel_names())
            should_retain = d.sm_arch == 75 and bool(entry & used)
            assert d.retained == should_retain


class TestFunctionLocator:
    def test_ranges_merge_consecutive(self, small_library):
        result = FunctionLocator().locate(small_library, np.array([0, 1, 2, 5]))
        assert len(result.retain_ranges) == 2  # [0..3) and [5..6) runs
        assert result.used_bytes == 4 * 64

    def test_partition_of_text(self, small_library):
        result = FunctionLocator().locate(small_library, np.array([3, 7]))
        text = small_library.text
        union = result.retain_ranges | result.remove_ranges
        assert union.total() == text.size
        assert not (result.retain_ranges & result.remove_ranges)

    def test_empty_usage_removes_all(self, small_library):
        result = FunctionLocator().locate(
            small_library, np.zeros(0, dtype=np.int64)
        )
        assert result.used_functions == 0
        assert result.removed_bytes == small_library.cpu_code_size

    def test_full_usage_removes_nothing(self, small_library):
        result = FunctionLocator().locate(small_library, np.arange(12))
        assert not result.remove_ranges
        assert result.removed_functions == 0

    def test_out_of_range_rejected(self, small_library):
        with pytest.raises(LocationError):
            FunctionLocator().locate(small_library, np.array([999]))

    @settings(max_examples=30)
    @given(st.sets(st.integers(0, 11)))
    def test_bytes_accounting_property(self, used):
        lib = build_small_library()
        indices = np.array(sorted(used), dtype=np.int64)
        result = FunctionLocator().locate(lib, indices)
        assert result.used_bytes == len(used) * 64
        assert result.retain_ranges.total() == result.used_bytes
        assert result.remove_ranges.total() == (12 - len(used)) * 64

"""Fault-tolerance tests: deterministic injection via repro.testing.faults,
transactional admission rollback, retry/backoff in the server workers,
process-pool degrade, disk-cache quarantine, and degraded-mode health.

The end-to-end class runs the acceptance plan (``ci-standard``, or
whatever ``$REPRO_FAULT_PLAN`` names in the CI fault leg) against a live
server and asserts the contract: zero hung tickets, every admission
succeeds after retry or fails typed, and the end-state store is
byte-identical to a fault-free run of the same arrivals.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import debloat as core_debloat
from repro.core.debloat import DebloatOptions
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    FaultError,
    ServerClosedError,
    TicketTimeoutError,
    TransientError,
    UsageError,
)
from repro.serving import DebloatServer, DebloatStore, RetryPolicy
from repro.testing import faults
from repro.utils.retry import DEFAULT_RETRYABLE
from repro.workloads.spec import workload_by_id

from tests.test_serving import OPTS, SPEC_IDS, assert_same_libraries, specs


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """No plan, no fan-out residue, default degrade mode around each test."""
    faults.deactivate()
    core_debloat.clear_fanout_events()
    core_debloat.configure_fanout(True)
    yield
    faults.deactivate()
    core_debloat.clear_fanout_events()
    core_debloat.configure_fanout(True)


# -- retry policy --------------------------------------------------------------


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        sleeps: list[float] = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("not yet")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.01)
        assert policy.call(flaky, sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential backoff

    def test_permanent_error_not_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise UsageError("malformed")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(UsageError):
            policy.call(broken, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_budget_exhaustion_reraises_last_error(self):
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("disk on fire")

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(OSError):
            policy.call(always_fails, sleep=lambda _: None)
        assert calls["n"] == 3

    def test_jitter_is_deterministic_per_token_and_attempt(self):
        a = RetryPolicy()
        b = RetryPolicy()
        for attempt in (1, 2, 3):
            assert a.backoff_s(attempt, token="w1") == b.backoff_s(
                attempt, token="w1"
            )
        # Different tokens decorrelate (thundering-herd protection).
        assert a.backoff_s(1, token="w1") != a.backoff_s(1, token="w2")

    def test_deadline_stops_retrying(self):
        now = {"t": 0.0}

        def clock():
            return now["t"]

        def sleep(s):
            now["t"] += s

        def fails():
            now["t"] += 0.2
            raise TransientError("slow and flaky")

        policy = RetryPolicy(
            max_attempts=100, base_backoff_s=0.01, deadline_s=0.5
        )
        calls = {"n": 0}

        def counted():
            calls["n"] += 1
            fails()

        with pytest.raises(TransientError):
            policy.call(counted, sleep=sleep, clock=clock)
        assert calls["n"] < 100  # the deadline cut the budget short

    def test_fault_error_is_retryable_by_default(self):
        assert issubclass(FaultError, DEFAULT_RETRYABLE)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)


# -- the fault plan itself -----------------------------------------------------


class TestFaultPlan:
    def test_inactive_check_is_a_noop(self):
        faults.check("store.merge")  # no active plan: nothing raises

    def test_ordinal_rule_fires_exactly_on_its_ordinals(self):
        plan = faults.FaultPlan(
            [faults.FaultRule("site.a", ordinals=(2,))], seed=1
        )
        plan.check("site.a")
        with pytest.raises(FaultError):
            plan.check("site.a")
        plan.check("site.a")  # ordinal 3: quiet again
        assert plan.stats() == {"site.a": 1}

    def test_prefix_matching(self):
        plan = faults.FaultPlan(
            [faults.FaultRule("locate.shard", ordinals=(1,),
                              kind="broken_pool")],
            seed=1,
        )
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            plan.check("locate.shard.0")
        plan.check("locate.other")  # unrelated site: no match, no count

    def test_rate_rule_is_deterministic(self):
        def run(plan):
            fired = []
            for i in range(200):
                try:
                    plan.check("site.r")
                except FaultError:
                    fired.append(i)
            return fired

        rule = faults.FaultRule("site.r", rate=0.1)
        first = run(faults.FaultPlan([rule], seed=42))
        second = run(faults.FaultPlan([rule], seed=42))
        assert first == second
        assert 0 < len(first) < 60  # ~10% of 200
        assert run(faults.FaultPlan([rule], seed=43)) != first

    def test_reset_rewinds_counters(self):
        plan = faults.FaultPlan(
            [faults.FaultRule("site.a", ordinals=(1,))], seed=1
        )
        with pytest.raises(FaultError):
            plan.check("site.a")
        plan.reset()
        with pytest.raises(FaultError):
            plan.check("site.a")

    def test_context_manager_restores_previous_plan(self):
        outer = faults.activate(
            faults.FaultPlan([faults.FaultRule("x", ordinals=(99,))])
        )
        inner = faults.FaultPlan([faults.FaultRule("y", ordinals=(99,))])
        with faults.fault_plan(inner):
            assert faults.active_plan() is inner
        assert faults.active_plan() is outer

    def test_parse_named_plan(self):
        plan = faults.parse_plan("ci-standard")
        assert plan.name == "ci-standard"
        assert plan.seed == faults.CI_STANDARD_SEED
        assert faults.parse_plan("ci-standard:123").seed == 123

    def test_parse_inline_spec(self):
        plan = faults.parse_plan(
            "seed=7;store.merge@1,3;diskcache.read%0.05:corrupt"
        )
        assert plan.seed == 7
        assert plan.rules[0].ordinals == (1, 3)
        assert plan.rules[1].rate == 0.05
        assert plan.rules[1].kind == "corrupt"

    def test_parse_rejects_garbage(self):
        for bad in ("", "no-such-plan", "seed=7", "site.a",
                    "site.a@1:weird"):
            with pytest.raises(ConfigurationError):
                faults.parse_plan(bad)

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv(faults.PLAN_ENV, raising=False)
        assert faults.plan_from_env() is None
        monkeypatch.setenv(faults.PLAN_ENV, "ci-standard")
        assert faults.plan_from_env().name == "ci-standard"


# -- transactional admission ---------------------------------------------------


class TestTransactionalRollback:
    def test_mid_admission_fault_rolls_back_to_prior_epoch(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.admit(specs()[0])
        before = store.snapshot()
        with faults.fault_plan(faults.parse_plan("seed=1;store.process@1")):
            with pytest.raises(FaultError):
                store.admit(specs()[2])
        after = store.snapshot()
        assert after.generation == before.generation
        assert after.workload_ids == before.workload_ids
        assert set(after.libraries) == set(before.libraries)
        assert store.stats()["rollbacks"] == 1
        assert store.last_error is not None
        store.validate_invariants()

    def test_readmission_after_rollback_is_byte_identical(self, pytorch):
        faulted = DebloatStore(pytorch, OPTS)
        with faults.fault_plan(faults.parse_plan("seed=1;store.merge@2")):
            faulted.admit(specs()[0])
            with pytest.raises(FaultError):
                faulted.admit(specs()[1])
            faulted.admit(specs()[1])  # retry: plan ordinal passed
            faulted.admit(specs()[2])
        clean = DebloatStore(pytorch, OPTS)
        for s in specs():
            clean.admit(s)
        assert_same_libraries(
            faulted.debloated_libraries(), clean.debloated_libraries()
        )
        assert (
            faulted.snapshot().workload_ids == clean.snapshot().workload_ids
        )
        assert faulted.stats()["rollbacks"] == 1

    def test_mid_batch_fault_rolls_back_whole_batch(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        with faults.fault_plan(faults.parse_plan("seed=1;store.merge@2")):
            with pytest.raises(FaultError):
                store.admit_many(specs())
        snap = store.snapshot()
        assert snap.generation == 0
        assert snap.workload_ids == ()
        assert len(snap.libraries) == 0
        assert store.stats()["rollbacks"] == 1
        # The store is fully usable afterwards.
        store.admit_many(specs())
        clean = DebloatStore(pytorch, OPTS)
        clean.admit_many(specs())
        assert_same_libraries(
            store.debloated_libraries(), clean.debloated_libraries()
        )

    def test_rollback_preserves_counters_of_committed_work(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.admit(specs()[0])
        committed = store.stats()
        with faults.fault_plan(faults.parse_plan("seed=1;store.process@1")):
            with pytest.raises(FaultError):
                store.admit(specs()[2])
        after = store.stats()
        assert after["admissions"] == committed["admissions"]
        assert after["recompactions"] == committed["recompactions"]

    def test_concurrent_evict_races_inflight_admit(self, pytorch):
        """An eviction racing an in-flight admission: both transactions
        serialize, invariants hold, and the end state is one of the two
        serial orders (which converge on membership)."""
        store = DebloatStore(pytorch, OPTS)
        store.admit(specs()[0])
        store.admit(specs()[1])
        errors: list[BaseException] = []

        def admit_third():
            try:
                store.admit(specs()[2])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def evict_first():
            try:
                store.evict(SPEC_IDS[0])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=admit_third),
            threading.Thread(target=evict_first),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        store.validate_invariants()
        assert set(store.snapshot().workload_ids) == {
            SPEC_IDS[1], SPEC_IDS[2]
        }
        expected = DebloatStore(pytorch, OPTS)
        expected.admit(specs()[1])
        expected.admit(specs()[2])
        assert_same_libraries(
            store.debloated_libraries(), expected.debloated_libraries()
        )


# -- server retry / close / sweeper --------------------------------------------


class _BlockingStore:
    """Duck-typed admission target whose admit() parks on an event."""

    def __init__(self):
        self.release = threading.Event()
        self.admitted: list[str] = []

    def admit(self, spec, verify=False):
        self.release.wait(30)
        self.admitted.append(spec.workload_id)
        raise UsageError("released without result")

    def stats(self):
        return {}


class TestServerFaultTolerance:
    def test_transient_fault_retried_to_success(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        plan = faults.parse_plan("seed=1;worker.pre_merge@1")
        with faults.fault_plan(plan):
            with DebloatServer(store, workers=1) as server:
                res = server.admit(specs()[0], timeout=120)
                stats = server.stats()
        assert res.workload_id == SPEC_IDS[0]
        assert stats["retries"] == 1
        assert stats["served"] == 1
        assert stats["failed"] == 0

    def test_exhausted_retries_fail_typed(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        retry = RetryPolicy(max_attempts=2, base_backoff_s=0.001)
        plan = faults.parse_plan("seed=1;worker.pre_merge%1.0")
        with faults.fault_plan(plan):
            with DebloatServer(store, workers=1, retry=retry) as server:
                ticket = server.submit(specs()[0])
                with pytest.raises(AdmissionError) as err:
                    ticket.result(120)
        assert err.value.workload_id == SPEC_IDS[0]
        assert err.value.attempts == 2
        assert isinstance(err.value.__cause__, FaultError)
        # The fault fired before any store mutation: nothing admitted.
        assert store.snapshot().generation == 0

    def test_result_timeout_leaves_ticket_valid(self):
        target = _BlockingStore()
        server = DebloatServer(target, workers=1)
        try:
            ticket = server.submit(specs()[0])
            start = time.perf_counter()
            with pytest.raises(TicketTimeoutError):
                ticket.result(timeout=0.05)
            assert time.perf_counter() - start < 5
            assert not ticket.done()
            target.release.set()
            with pytest.raises(UsageError):
                ticket.result(timeout=30)
        finally:
            target.release.set()
            server.close(timeout=5)

    def test_ticket_timeout_is_a_timeout_error(self):
        assert issubclass(TicketTimeoutError, TimeoutError)

    def test_close_fails_pending_tickets_immediately(self):
        target = _BlockingStore()
        server = DebloatServer(target, workers=1)
        stuck = server.submit(specs()[0])
        queued = server.submit(specs()[1])
        server.close(timeout=0.2)  # worker is parked: close gives up waiting
        start = time.perf_counter()
        with pytest.raises(ServerClosedError):
            queued.result()  # no timeout: must not hang
        with pytest.raises(ServerClosedError):
            stuck.result()
        assert time.perf_counter() - start < 5
        assert server.stats()["failed"] == 2
        with pytest.raises(ServerClosedError):
            server.submit(specs()[2])
        target.release.set()

    def test_sweeper_survives_a_failing_tick(self):
        class SweepTarget:
            def __init__(self):
                self.sweeps = 0

            def sweep(self):
                self.sweeps += 1
                return []

            def stats(self):
                return {}

        target = SweepTarget()
        plan = faults.parse_plan("seed=1;sweeper.tick@1")
        with faults.fault_plan(plan):
            server = DebloatServer(target, workers=1, sweep_interval_s=0.01)
            try:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if server.stats()["sweeps_run"] >= 1:
                        break
                    time.sleep(0.01)
                stats = server.stats()
                health = server.health()
            finally:
                server.close(timeout=5)
        assert stats["sweeps_failed"] == 1
        assert stats["sweeps_run"] >= 1  # the tick after the fault swept
        assert health["sweeper"]["alive"]
        assert "FaultError" in health["sweeper"]["last_error"]

    def test_health_reports_store_rollbacks(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        with DebloatServer(store, workers=1) as server:
            server.admit(specs()[0], timeout=120)
            health = server.health()
        assert health["state"] == "ok"
        assert health["workers_alive"] == 1
        assert health["store"] == {"rollbacks": 0, "last_error": None}


# -- process fan-out degrade ---------------------------------------------------


PROCESS_OPTS = DebloatOptions(
    runtime_comparison_top_n=0,
    locate_workers=2,
    locate_workers_mode="process",
)


class TestFanoutDegrade:
    """The process-sharded locate/compact path (the full pipeline's
    ``locate_workers_mode="process"``) under a poisoned pool."""

    def _serial(self, pytorch):
        debloater = core_debloat.Debloater(pytorch, OPTS)
        debloater.debloat(specs()[0])
        return debloater.debloated_libraries

    def test_broken_pool_rebuilt_once_byte_identical(self, pytorch):
        serial = self._serial(pytorch)
        plan = faults.parse_plan("seed=1;locate.shard@1:broken_pool")
        with faults.fault_plan(plan):
            debloater = core_debloat.Debloater(pytorch, PROCESS_OPTS)
            debloater.debloat(specs()[0])
        assert plan.stats() == {"locate.shard": 1}
        assert core_debloat.fanout_events() == ()  # rebuild succeeded
        assert_same_libraries(debloater.debloated_libraries, serial)

    def test_double_break_degrades_to_threads(self, pytorch):
        serial = self._serial(pytorch)
        plan = faults.parse_plan("seed=1;locate.shard@1,2:broken_pool")
        with faults.fault_plan(plan):
            debloater = core_debloat.Debloater(pytorch, PROCESS_OPTS)
            debloater.debloat(specs()[0])
        events = core_debloat.fanout_events()
        assert len(events) == 1
        assert events[0].framework == "pytorch"
        assert "injected broken pool" in events[0].reason
        # Degraded to the thread path, still byte-identical.
        assert_same_libraries(debloater.debloated_libraries, serial)

    def test_degrade_disabled_surfaces_the_failure(self, pytorch):
        from concurrent.futures.process import BrokenProcessPool

        core_debloat.configure_fanout(False)
        plan = faults.parse_plan("seed=1;locate.shard@1,2:broken_pool")
        with faults.fault_plan(plan):
            debloater = core_debloat.Debloater(pytorch, PROCESS_OPTS)
            with pytest.raises(BrokenProcessPool):
                debloater.debloat(specs()[0])


# -- disk-cache quarantine -----------------------------------------------------


class TestDiskQuarantine:
    def test_corrupt_entry_quarantined_and_recomputed(self, monkeypatch):
        import repro.experiments.common as excommon
        from repro.experiments.diskcache import QUARANTINE_DIR
        from repro.frameworks.catalog import get_framework

        from tests.conftest import TEST_SCALE

        monkeypatch.setattr(
            excommon, "PIPELINE_CACHE", excommon.PipelineCache(enabled=True)
        )
        fw = get_framework("pytorch", scale=TEST_SCALE)
        cold = DebloatStore(fw, use_cache=True)
        for s in specs():
            cold.admit(s)
        # A fresh cache instance = a "restarted" process: the memory tier
        # is empty, so the warm admissions read the persisted disk tier.
        restarted = excommon.PipelineCache(enabled=True)
        monkeypatch.setattr(excommon, "PIPELINE_CACHE", restarted)
        plan = faults.parse_plan("seed=1;diskcache.read@1:corrupt")
        with faults.fault_plan(plan):
            warm = DebloatStore(fw, use_cache=True)
            for s in specs():
                warm.admit(s)
        # One read was "corrupt": quarantined, recomputed, byte-identical.
        assert plan.stats() == {"diskcache.read": 1}
        stats = restarted.stats()
        assert stats["disk_quarantined"] == 1
        qdir = restarted.disk.directory / QUARANTINE_DIR
        assert len(list(qdir.iterdir())) == 1
        assert_same_libraries(
            warm.debloated_libraries(), cold.debloated_libraries()
        )

    def test_quarantine_disabled_drops_entry(self, monkeypatch):
        import repro.experiments.common as excommon
        from repro.experiments.diskcache import QUARANTINE_DIR
        from repro.frameworks.catalog import get_framework

        from tests.conftest import TEST_SCALE

        cache = excommon.PipelineCache(enabled=True)
        cache.configure(quarantine=False)
        monkeypatch.setattr(excommon, "PIPELINE_CACHE", cache)
        fw = get_framework("pytorch", scale=TEST_SCALE)
        DebloatStore(fw, use_cache=True).admit(specs()[0])
        restarted = excommon.PipelineCache(enabled=True)
        restarted.configure(quarantine=False)
        monkeypatch.setattr(excommon, "PIPELINE_CACHE", restarted)
        plan = faults.parse_plan("seed=1;diskcache.read@1:corrupt")
        with faults.fault_plan(plan):
            DebloatStore(fw, use_cache=True).admit(specs()[0])
        assert plan.stats() == {"diskcache.read": 1}
        assert restarted.stats()["disk_quarantined"] == 0
        # Quarantine off: the corrupt entry was dropped, not moved aside.
        assert not (restarted.disk.directory / QUARANTINE_DIR).exists()


# -- federation degraded modes -------------------------------------------------


class TestFederationDegradedModes:
    def _federation(self):
        from repro.api import EngineConfig
        from repro.api.federation import StoreFederation

        from tests.conftest import TEST_SCALE

        return StoreFederation(
            EngineConfig(scale=TEST_SCALE, options=OPTS, use_cache=False)
        )

    def test_recovering_shard_serves_last_good_snapshot(self):
        fed = self._federation()
        fed.admit(specs()[0])
        good_gen = fed.shard("pytorch").store.generation
        fed.mark_recovering(specs()[1], TransientError("mid-retry"))
        snap = fed.snapshot()
        assert snap.shards["pytorch"].state == "recovering"
        assert snap.shards["pytorch"].store.generation == good_gen
        health = fed.health()
        assert health["state"] == "recovering"
        assert health["shards"]["pytorch"]["retries"] == 1
        # Success clears the state and refreshes last-good.
        fed.admit(specs()[1])
        snap = fed.snapshot()
        assert snap.shards["pytorch"].state == "ok"
        assert snap.shards["pytorch"].store.generation == good_gen + 1
        assert fed.health()["state"] == "ok"

    def test_record_failure_marks_shard_degraded(self):
        fed = self._federation()
        fed.admit(specs()[0])
        fed.record_failure(specs()[1], OSError("dead disk"))
        health = fed.health()
        assert health["state"] == "degraded"
        assert health["shards"]["pytorch"]["state"] == "degraded"
        assert "dead disk" in health["shards"]["pytorch"]["last_error"]


# -- the acceptance plan, end to end -------------------------------------------


class TestCiStandardEndToEnd:
    def test_every_arrival_lands_or_fails_typed(self, pytorch):
        """The CI contract: under the acceptance plan every admission
        succeeds after retry or fails with a typed AdmissionError, no
        ticket outlives its deadline, and the end-state store is
        byte-identical to a fault-free run of the same arrivals."""
        plan = faults.plan_from_env() or faults.named_plan("ci-standard")
        arrivals = specs() + [specs()[0]]  # one duplicate re-admission
        store = DebloatStore(pytorch, OPTS)
        outcomes: list[tuple[str, object]] = []
        with faults.fault_plan(plan):
            with DebloatServer(store, workers=2) as server:
                tickets = [(s, server.submit(s)) for s in arrivals]
                for spec, ticket in tickets:
                    try:
                        outcomes.append((spec.workload_id,
                                         ticket.result(timeout=120)))
                    except AdmissionError as err:
                        outcomes.append((spec.workload_id, err))
                stats = server.stats()
                health = server.health()
        # Zero hung tickets: every ticket resolved inside the deadline.
        assert len(outcomes) == len(arrivals)
        admitted = [
            wid for wid, out in outcomes
            if not isinstance(out, BaseException)
        ]
        # The plan's faults are all transient one-shots: with the default
        # 3-attempt budget every arrival must land.
        assert admitted == [s.workload_id for s in arrivals]
        assert plan.stats()  # ...and faults really fired
        assert stats["retries"] >= 1
        assert stats["failed"] == 0
        assert health["state"] == "ok"
        store.validate_invariants()
        # Byte-identity against a fault-free run of the same arrivals.
        clean = DebloatStore(pytorch, OPTS)
        for s in arrivals:
            clean.admit(s)
        assert_same_libraries(
            store.debloated_libraries(), clean.debloated_libraries()
        )
        assert (
            store.snapshot().union_kernels == clean.snapshot().union_kernels
        )
        assert sorted(store.snapshot().workload_ids) == sorted(
            clean.snapshot().workload_ids
        )

"""Edge-case coverage: inspection tools, generator internals, runtime
corner paths, stats helpers, and error surfaces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cuda.arch import get_device
from repro.cuda.driver import CudaDriver, LoadingMode
from repro.cuda.clock import VirtualClock
from repro.errors import ConfigurationError
from repro.frameworks.catalog import get_framework
from repro.frameworks.genlib import _allocate_counts, _prefix
from repro.frameworks.ops import OpInstance, OpKind, Phase
from repro.frameworks.runtime import FrameworkRuntime
from repro.tools.inspect import describe_library, kernel_listing, readelf_sections
from repro.utils.stats import ascii_violin, histogram
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE, build_small_library


class TestInspectTools:
    def test_describe_contains_metrics(self, small_library):
        out = describe_library(small_library, verbose=True)
        assert "file size" in out
        assert "functions" in out
        assert "sm_70, sm_75" in out
        assert "ELF file 1:" in out

    def test_describe_without_gpu(self):
        lib = build_small_library(archs=())
        out = describe_library(lib)
        assert "architectures" not in out

    def test_readelf_lists_all_sections(self, small_library):
        out = readelf_sections(small_library)
        for name in (".text", ".nv_fatbin", ".symtab", ".strtab", ".shstrtab"):
            assert name in out
        assert "AX" in out  # .text flags

    def test_kernel_listing_limit(self, small_library):
        lines = kernel_listing(small_library, limit=2).splitlines()
        assert len(lines) == 2
        assert "entry" in lines[0]


class TestGenlibInternals:
    def test_prefix_strips_lib_and_suffix(self):
        assert _prefix("libtorch_cuda.so") == "torch_cuda"
        assert _prefix("libcudnn.so.8") == "cudnn"
        assert _prefix("_raylet.so") == "_raylet"
        assert _prefix("tokenizers.abi3.so") == "tokenizers_abi3"

    def test_allocate_counts_conserves_total(self):
        counts = _allocate_counts(100, [3.0, 1.0, 1.0])
        assert sum(counts) == 100
        assert counts[0] > counts[1]

    def test_allocate_counts_minimum_one(self):
        counts = _allocate_counts(3, [100.0, 0.001, 0.001])
        assert all(c >= 1 for c in counts)
        assert sum(counts) == 3

    def test_allocate_counts_empty(self):
        assert _allocate_counts(0, [1.0]) == [0]
        assert _allocate_counts(10, []) == []

    @given(st.integers(1, 200),
           st.lists(st.floats(0.1, 10), min_size=1, max_size=8))
    def test_allocate_counts_property(self, total, weights):
        if total < len(weights):
            return
        counts = _allocate_counts(total, weights)
        assert sum(counts) == total
        assert all(c >= 1 for c in counts)

    def test_scale_changes_counts_not_bytes(self):
        from repro.frameworks.catalog import pytorch_spec
        from repro.frameworks.genlib import generate_library

        spec = pytorch_spec().library("libcublas.so.12")
        small = generate_library(spec, "x", scale=0.02)
        big = generate_library(spec, "x", scale=0.1)
        assert big.function_count > small.function_count
        assert big.cpu_code_size == small.cpu_code_size == spec.text_bytes


class TestRuntimeEdgeCases:
    def _runtime(self, mode=LoadingMode.EAGER, features=frozenset({"text"})):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        rt = FrameworkRuntime(
            framework=fw, devices=(get_device("t4"),), loading_mode=mode
        )
        rt.boot(features)
        return rt

    def test_no_devices_rejected(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        with pytest.raises(ConfigurationError):
            FrameworkRuntime(framework=fw, devices=())

    def test_run_op_before_boot_rejected(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        rt = FrameworkRuntime(framework=fw, devices=(get_device("t4"),))
        with pytest.raises(ConfigurationError):
            rt.run_op(OpInstance(OpKind.GEMM, "m"), Phase.FORWARD, 1)

    def test_lazy_boot_loads_no_elements(self):
        rt = self._runtime(mode=LoadingMode.LAZY)
        assert rt.drivers[0].counters.elements_loaded == 0
        rt.run_op(OpInstance(OpKind.GEMM, "m512"), Phase.FORWARD, 8)
        assert rt.drivers[0].counters.elements_loaded > 0

    def test_eager_boot_loads_matching_elements(self):
        rt = self._runtime(mode=LoadingMode.EAGER)
        loaded = rt.drivers[0].counters.elements_loaded
        total_matching = sum(
            len(m.matching_elements) for m in rt.modules[0].values()
        )
        assert loaded == total_matching > 0

    def test_optimizer_phase_falls_back_to_any_route(self):
        rt = self._runtime()
        op = OpInstance(OpKind.OPTIMIZER, "adam")
        resolved = rt.run_op(op, Phase.OPTIMIZER, 8)
        assert resolved.soname == "libtorch_cuda.so"

    def test_peak_helpers(self):
        rt = self._runtime()
        assert rt.peak_host_bytes() > 0
        assert rt.peak_device_bytes() > 0

    def test_overrides_substitute_library(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        original = fw.libraries["libtorch_cuda.so"]
        replacement = original.copy()
        replacement.tags["removed_bytes_total"] = 12345
        rt = FrameworkRuntime(framework=fw, devices=(get_device("t4"),))
        rt.boot(frozenset({"text"}),
                overrides={"libtorch_cuda.so": replacement})
        loaded = rt.process.require("libtorch_cuda.so")
        assert loaded.lib is replacement


class TestWorkloadVariants:
    def test_h100_lazy_runs(self):
        spec = workload_by_id("transformers/inference/llama2-7b").variant(
            device_name="h100", loading_mode=LoadingMode.LAZY
        )
        fw = get_framework("transformers", scale=TEST_SCALE)
        m = WorkloadRunner(spec, fw).run()
        assert m.peak_gpu_mem_bytes < 96 << 30

    def test_vllm_pool_fills_device_fraction(self):
        spec = workload_by_id("vllm/inference/llama2-7b")
        fw = get_framework("vllm", scale=TEST_SCALE)
        m = WorkloadRunner(spec, fw).run()
        t4 = get_device("t4")
        assert m.peak_gpu_mem_bytes == pytest.approx(
            0.9 * t4.memory_bytes, rel=0.02
        )

    def test_tf_pool_dominates_gpu_peak(self):
        spec = workload_by_id("tensorflow/inference/mobilenetv2")
        fw = get_framework("tensorflow", scale=TEST_SCALE)
        m = WorkloadRunner(spec, fw).run()
        t4 = get_device("t4")
        assert m.peak_gpu_mem_bytes > 0.8 * t4.memory_bytes

    def test_larger_batch_uses_more_gpu_memory(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        small = WorkloadRunner(
            workload_by_id("pytorch/train/mobilenetv2").variant(batch_size=8),
            fw).run()
        large = WorkloadRunner(
            workload_by_id("pytorch/train/mobilenetv2").variant(batch_size=64),
            fw).run()
        assert large.peak_gpu_mem_bytes > small.peak_gpu_mem_bytes

    def test_distinct_devices_distinct_used_elements(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        base = workload_by_id("pytorch/inference/mobilenetv2")
        t4 = WorkloadRunner(base, fw).run()
        v100 = WorkloadRunner(base.variant(device_name="v100"), fw).run()
        # Same kernels by name; different elements loaded per architecture.
        assert t4.used_kernels == v100.used_kernels
        assert t4.counters["elements_loaded"] != v100.counters[
            "elements_loaded"
        ] or t4.peak_gpu_mem_bytes != v100.peak_gpu_mem_bytes


class TestStatsEdges:
    def test_histogram_range(self):
        edges, counts = histogram([5, 5, 95], bins=10)
        assert counts.sum() == 3
        assert counts[0] == 2 and counts[-1] == 1

    def test_ascii_violin_empty(self):
        lines = ascii_violin([], bins=5)
        assert len(lines) == 5
        assert all(line.endswith("|") for line in lines)

    def test_ascii_violin_peak_width(self):
        lines = ascii_violin([50] * 100, width=20, bins=10)
        assert any("#" * 20 in line for line in lines)


class TestDriverLazyHostAccounting:
    def test_lazy_element_load_charges_host(self, small_library):
        from repro.cuda.memory import MemoryMeter

        host = MemoryMeter("host")
        driver = CudaDriver(
            device=get_device("t4"),
            clock=VirtualClock(),
            host_memory=host,
            loading_mode=LoadingMode.LAZY,
        )
        driver.init()
        module = driver.module_load(small_library)
        assert host.current == 0
        driver.module_get_function(module, "k_0_0")
        assert host.by_category.get("fatbin_touched", 0) > 0

    def test_eager_element_load_skips_host(self, small_library):
        from repro.cuda.memory import MemoryMeter

        host = MemoryMeter("host")
        driver = CudaDriver(
            device=get_device("t4"),
            clock=VirtualClock(),
            host_memory=host,
            loading_mode=LoadingMode.EAGER,
        )
        driver.init()
        driver.module_load(small_library)
        assert host.by_category.get("fatbin_touched", 0) == 0

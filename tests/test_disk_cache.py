"""Disk tier of the pipeline cache: persistence, corruption, invalidation.

The central regression here is the run-count test: a *second simulated
process* (fresh in-memory tier, same disk directory) must perform **zero**
instrumented workload runs - asserted with the same ``WorkloadRunner.run``
counter the PR 1 fused-run test uses - while rendering byte-identical
experiment output.  The corruption suite asserts the failure policy:
truncated files, garbage bytes, and schema-version skew are all silent
misses that recompute and overwrite the stale entry.
"""

from __future__ import annotations

import struct

import pytest

import repro.experiments.common as common
from repro.core import serialize
from repro.core.serialize import reports_equal
from repro.experiments.common import PipelineCache, report_for
from repro.experiments.diskcache import SUFFIX, DiskReportCache
from repro.experiments.registry import run_experiment
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE

SPEC_ID = "pytorch/inference/mobilenetv2"
OTHER_ID = "tensorflow/train/mobilenetv2"


@pytest.fixture()
def cache():
    """A fresh two-tier cache (both tiers pinned on) wired in place of the
    process-wide one.

    The disk directory comes from the per-test ``REPRO_PIPELINE_CACHE_DIR``
    (see ``conftest.py``), so each test starts disk-cold.
    """
    fresh = PipelineCache(enabled=True, disk=DiskReportCache(enabled=True))
    old = common.PIPELINE_CACHE
    common.PIPELINE_CACHE = fresh
    try:
        yield fresh
    finally:
        common.PIPELINE_CACHE = old


def new_process_cache() -> PipelineCache:
    """Simulate a new process: empty memory tier, same disk directory."""
    fresh = PipelineCache(enabled=True, disk=DiskReportCache(enabled=True))
    common.PIPELINE_CACHE = fresh
    return fresh


@pytest.fixture()
def run_counter(monkeypatch):
    """Count WorkloadRunner.run invocations (the PR 1 fused-run counter)."""
    runs: list[WorkloadRunner] = []
    original = WorkloadRunner.run

    def counting_run(runner_self):
        runs.append(runner_self)
        return original(runner_self)

    monkeypatch.setattr(WorkloadRunner, "run", counting_run)
    return runs


class TestWarmProcess:
    def test_second_process_zero_workload_runs(self, cache, run_counter):
        """Warm disk cache => the whole experiment is pure rendering."""
        first = run_experiment("table4", scale=TEST_SCALE)
        assert len(run_counter) > 0
        assert len(cache.disk) > 0

        warm = new_process_cache()
        run_counter.clear()
        second = run_experiment("table4", scale=TEST_SCALE)
        assert run_counter == []  # ZERO instrumented/baseline/verify runs
        assert second == first  # byte-identical rendering
        assert warm.stats()["disk_hits"] > 0
        assert warm.stats()["misses"] == 0

    def test_warm_report_is_equal_not_identical(self, cache):
        a = report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        warm = new_process_cache()
        b = report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        assert b is not a  # deserialized, not shared
        assert reports_equal(a, b)
        assert warm.stats()["disk_hits"] == 1

    def test_output_identical_cold_warm_disabled(self, cache):
        cold = run_experiment("fig7", scale=TEST_SCALE)
        new_process_cache()
        warm = run_experiment("fig7", scale=TEST_SCALE)
        disabled = PipelineCache(enabled=False)
        common.PIPELINE_CACHE = disabled
        uncached = run_experiment("fig7", scale=TEST_SCALE)
        assert cold == warm == uncached

    def test_disk_tier_disabled_by_env_writes_nothing(self, monkeypatch):
        # An env-driven cache (no pinned disk flag) honours the variable.
        monkeypatch.setenv("REPRO_PIPELINE_DISK_CACHE", "0")
        fresh = PipelineCache(enabled=True)
        monkeypatch.setattr(common, "PIPELINE_CACHE", fresh)
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        assert len(fresh.disk) == 0
        assert fresh.stats()["disk_misses"] == 0  # never even consulted

    def test_disk_tier_disabled_by_configure_writes_nothing(self, cache):
        cache.configure(disk_enabled=False)
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        assert len(cache.disk) == 0
        assert cache.stats()["disk_misses"] == 0

    def test_scale_is_part_of_the_disk_key(self, cache, run_counter):
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        new_process_cache()
        run_counter.clear()
        report_for(workload_by_id(SPEC_ID), TEST_SCALE * 2)
        assert len(run_counter) > 0  # different scale: disk miss, recompute

    def test_value_tier_keys_on_archs(self, cache):
        """Different framework builds (arch lists) never share a value."""
        spec = workload_by_id(SPEC_ID)
        calls: list[int] = []

        def compute():
            calls.append(1)
            return {"n": len(calls)}

        v_multi = cache.get_or_run_value(spec, TEST_SCALE, "t", (), compute)
        v_single = cache.get_or_run_value(
            spec, TEST_SCALE, "t", (), compute, archs=(75,)
        )
        assert len(calls) == 2
        assert v_multi != v_single
        # ... and each is served from memory on repeat.
        assert (
            cache.get_or_run_value(spec, TEST_SCALE, "t", (), compute)
            == v_multi
        )
        assert len(calls) == 2

    @pytest.mark.parametrize(
        "experiment", ["sec46", "ablation_arch", "ablation_granularity"]
    )
    def test_value_tier_experiments_warm_to_zero_runs(
        self, cache, run_counter, experiment
    ):
        """Experiments outside report_for (tool overheads, ablations) also
        persist: their cached-value / archs-keyed entries serve a warm
        process without a single workload run."""
        first = run_experiment(experiment, scale=TEST_SCALE)
        assert len(run_counter) > 0
        new_process_cache()
        run_counter.clear()
        second = run_experiment(experiment, scale=TEST_SCALE)
        assert run_counter == []
        assert second == first


def _entry_paths(cache: PipelineCache):
    paths = cache.disk.entries()
    assert paths, "expected at least one persisted entry"
    return paths


class TestCorruptionAndSkew:
    """Bad cache bytes are misses that recompute and overwrite, never errors."""

    def _populate(self, cache) -> None:
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)

    def _assert_recovers(self, cache, run_counter):
        """A fresh process recomputes and heals the mangled entry."""
        warm = new_process_cache()
        run_counter.clear()
        report = report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        assert len(run_counter) > 0  # fell back to a real pipeline run
        assert warm.stats()["disk_errors"] >= 1
        # ... and the stale entry was overwritten with a readable one.
        (path,) = _entry_paths(warm)
        assert reports_equal(serialize.loads(path.read_bytes()), report)

    def test_truncated_file_is_a_miss(self, cache, run_counter):
        self._populate(cache)
        (path,) = _entry_paths(cache)
        path.write_bytes(path.read_bytes()[: 100])
        self._assert_recovers(cache, run_counter)

    def test_garbage_bytes_are_a_miss(self, cache, run_counter):
        self._populate(cache)
        (path,) = _entry_paths(cache)
        path.write_bytes(b"\xde\xad\xbe\xef" * 1024)
        self._assert_recovers(cache, run_counter)

    def test_flipped_payload_byte_fails_crc(self, cache, run_counter):
        self._populate(cache)
        (path,) = _entry_paths(cache)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        self._assert_recovers(cache, run_counter)

    def test_bumped_schema_version_is_a_miss(self, cache, run_counter):
        self._populate(cache)
        (path,) = _entry_paths(cache)
        data = bytearray(path.read_bytes())
        # The container's version field lives right after the 4-byte magic.
        struct.pack_into("<I", data, 4, serialize.SCHEMA_VERSION + 1)
        path.write_bytes(bytes(data))
        self._assert_recovers(cache, run_counter)

    def test_future_writer_schema_is_a_miss(self, cache):
        """A report written by a *newer* schema must not be half-read."""
        self._populate(cache)
        (path,) = _entry_paths(cache)
        original = serialize.SCHEMA_VERSION
        try:
            serialize.SCHEMA_VERSION = original + 1
            path.write_bytes(
                serialize.dumps(report_for(workload_by_id(SPEC_ID), TEST_SCALE))
            )
        finally:
            serialize.SCHEMA_VERSION = original
        warm = new_process_cache()
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        assert warm.stats()["disk_errors"] >= 1


class TestDiskInvalidation:
    def test_invalidate_removes_matching_files(self, cache):
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        report_for(workload_by_id(OTHER_ID), TEST_SCALE)
        assert len(cache.disk) == 2

        removed = cache.invalidate(workload_id=SPEC_ID)
        assert removed == 2  # one memory entry + one disk file
        remaining = cache.disk.entries()
        assert len(remaining) == 1
        assert "tensorflow" in remaining[0].name

        # The surviving entry still serves a warm process.
        warm = new_process_cache()
        report_for(workload_by_id(OTHER_ID), TEST_SCALE)
        assert warm.stats()["disk_hits"] == 1

    def test_invalidate_by_framework_and_scale(self, cache):
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        report_for(workload_by_id(SPEC_ID), TEST_SCALE * 2)
        assert len(cache.disk) == 2
        assert cache.invalidate(scale=TEST_SCALE) == 2
        assert len(cache.disk) == 1
        assert cache.invalidate(framework="pytorch") == 2
        assert len(cache.disk) == 0

    def test_unfiltered_invalidate_clears_directory(self, cache):
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        # Unparseable junk in the cache dir goes only on a full wipe.
        junk = cache.disk.directory / "not-a-real-entry.rpdc"
        junk.write_bytes(b"junk")
        assert cache.invalidate(workload_id=OTHER_ID) == 0
        assert junk.exists()
        assert cache.invalidate() >= 2
        assert len(cache.disk) == 0
        assert not junk.exists()

    def test_unfiltered_invalidate_sweeps_orphan_temp_files(self, cache):
        """Temp files from crashed writers don't match the entry glob but
        must still go on a full wipe."""
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        orphan = cache.disk.directory / f"dead{SUFFIX}.tmp12345"
        orphan.write_bytes(b"partial write")
        assert cache.invalidate() >= 3  # entry + memory + orphan
        assert not orphan.exists()

    def test_corrupt_entries_are_removable(self, cache):
        """Invalidation never deserializes, so it can drop corrupt files."""
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        (path,) = _entry_paths(cache)
        path.write_bytes(b"garbage")
        assert cache.invalidate(workload_id=SPEC_ID) == 2
        assert len(cache.disk) == 0


class TestDirectoryResolution:
    def test_env_dir_resolved_per_operation(self, cache, tmp_path, monkeypatch):
        before = cache.disk.directory
        monkeypatch.setenv("REPRO_PIPELINE_CACHE_DIR", str(tmp_path / "other"))
        assert cache.disk.directory != before
        assert cache.disk.directory == tmp_path / "other"

    def test_explicit_dir_pins(self, cache, tmp_path, monkeypatch):
        cache.configure(cache_dir=tmp_path / "pinned")
        monkeypatch.setenv("REPRO_PIPELINE_CACHE_DIR", str(tmp_path / "env"))
        assert cache.disk.directory == tmp_path / "pinned"
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        assert len(list((tmp_path / "pinned").glob("*.rpdc"))) == 1

    def test_atomic_write_leaves_no_temp_files(self, cache):
        report_for(workload_by_id(SPEC_ID), TEST_SCALE)
        leftovers = [
            p
            for p in cache.disk.directory.iterdir()
            if not p.name.endswith(SUFFIX)
        ]
        assert leftovers == []

"""Tests for the serving subsystem: DebloatStore delta admission,
snapshots/concurrency, eviction, cache-backed warm restarts, and the
DebloatServer front-end."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.debloat import Debloater, DebloatOptions
from repro.core.locate import KernelLocator
from repro.errors import UsageError
from repro.frameworks.catalog import get_framework
from repro.serving import DebloatServer, DebloatStore
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE

OPTS = DebloatOptions(runtime_comparison_top_n=0)

SPEC_IDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
]


def specs():
    return [workload_by_id(wid) for wid in SPEC_IDS]


def assert_same_libraries(a: dict, b: dict) -> None:
    assert sorted(a) == sorted(b)
    for soname, d in a.items():
        other = b[soname]
        assert d.lib.data == other.lib.data, soname
        assert d.removed_cpu_ranges == other.removed_cpu_ranges, soname
        assert d.removed_gpu_ranges == other.removed_gpu_ranges, soname
        assert d.removed_elements == other.removed_elements, soname
        assert d.removed_functions == other.removed_functions, soname


class TestDeltaAdmission:
    @pytest.fixture(scope="class")
    def store(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.results = [store.admit(s) for s in specs()]
        return store

    def test_first_admission_processes_everything(self, store):
        first = store.results[0]
        assert first.untouched == ()
        assert set(first.added_libraries) == set(first.recompacted)
        assert first.new_kernels > 0

    def test_later_admissions_are_deltas(self, store):
        second = store.results[1]
        assert len(second.untouched) > 0
        # Only libraries whose union grew were re-compacted.
        assert len(second.recompacted) < len(store.results[0].recompacted)

    def test_incremental_matches_one_shot_union(self, store, pytorch):
        debloater = Debloater(pytorch, OPTS)
        debloater.debloat_many(specs())
        assert_same_libraries(
            store.debloated_libraries(), debloater.debloated_libraries
        )

    def test_order_independence(self, pytorch):
        forward = DebloatStore(pytorch, OPTS)
        for s in specs():
            forward.admit(s)
        backward = DebloatStore(pytorch, OPTS)
        for s in reversed(specs()):
            backward.admit(s)
        assert_same_libraries(
            forward.debloated_libraries(), backward.debloated_libraries()
        )

    def test_report_matches_debloat_many(self, store, pytorch):
        report = store.report()
        debloater = Debloater(pytorch, OPTS)
        expected = debloater.debloat_many(specs())
        assert report.workload_ids == expected.workload_ids
        assert report.marginal_new_kernels == expected.marginal_new_kernels
        assert report.libraries == expected.libraries
        assert len(report.verifications) == len(expected.verifications)
        for got, want in zip(report.verifications, expected.verifications):
            assert got.ok == want.ok
            assert got.original_digest == want.original_digest
            assert got.debloated_digest == want.debloated_digest

    def test_admission_idempotence(self, store):
        """Re-admitting a served workload: zero kernels, zero re-compacts."""
        before_gen = store.generation
        res = store.admit(specs()[0])
        assert res.duplicate
        assert res.detection_cached  # no new instrumented run
        assert res.new_kernels == 0
        assert res.new_functions == 0
        assert res.recompacted == ()
        assert res.added_libraries == ()
        assert res.generation == before_gen + 1  # the admission is recorded

    def test_verify_on_admit(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        res = store.admit(specs()[0], verify=True)
        assert res.verification is not None and res.verification.ok


class TestDeltaLocateEquivalence:
    def test_locate_delta_equals_full_locate(self, pytorch, mobilenet_train_spec):
        from repro.serving.usage import capture_usage

        usage_a = capture_usage(mobilenet_train_spec, pytorch)
        usage_b = capture_usage(
            workload_by_id("pytorch/train/transformer"), pytorch
        )
        locator = KernelLocator()
        arch = mobilenet_train_spec.devices()[0].sm_arch
        for lib in pytorch.libraries_for(
            mobilenet_train_spec.features
            | workload_by_id("pytorch/train/transformer").features
        ):
            if lib.fatbin is None:
                continue
            first = usage_a.kernels.get(lib.soname, frozenset())
            both = first | usage_b.kernels.get(lib.soname, frozenset())
            prev = locator.locate(lib, frozenset(first), arch)
            delta = locator.locate_delta(
                lib, prev, frozenset(both - first)
            )
            full = locator.locate(lib, frozenset(both), arch)
            assert delta.decisions == full.decisions, lib.soname
            assert delta.retain_ranges == full.retain_ranges
            assert delta.remove_ranges == full.remove_ranges


class TestSaturationSeries:
    def test_ordering_and_determinism(self, pytorch):
        reports = [
            Debloater(pytorch, OPTS).debloat_many(specs()) for _ in range(2)
        ]
        series_a = reports[0].saturation_series()
        series_b = reports[1].saturation_series()
        assert series_a == series_b  # deterministic across runs
        assert [wid for wid, _ in series_a] == SPEC_IDS  # admission order
        assert series_a[0][1] > series_a[1][1]  # first pins the most
        assert sum(m for _, m in series_a) == sum(
            len(v)
            for v in DebloatStoreUnionProbe(pytorch).union_kernels(specs()).values()
        )


class DebloatStoreUnionProbe:
    """Recompute the union kernel sets independently of the store."""

    def __init__(self, framework):
        self.framework = framework

    def union_kernels(self, spec_list):
        from repro.serving.usage import capture_usage

        union: dict[str, set[str]] = {}
        for spec in spec_list:
            for soname, names in capture_usage(
                spec, self.framework
            ).kernels.items():
                union.setdefault(soname, set()).update(names)
        return union


class TestSnapshotsAndConcurrency:
    def test_snapshot_epochs_are_consistent(self, pytorch):
        """Readers racing an admitter only ever observe whole epochs."""
        store = DebloatStore(pytorch, OPTS)
        errors: list[str] = []
        stop = threading.Event()

        def read_loop():
            last_gen = -1
            while not stop.is_set():
                snap = store.snapshot()
                if snap.generation < last_gen:
                    errors.append("generation went backwards")
                last_gen = snap.generation
                if snap.generation == 0:
                    continue
                # Internal consistency: every reduction's library is in this
                # snapshot's map and the reduction was derived from it.
                for red in snap.reductions:
                    d = snap.libraries.get(red.soname)
                    if d is None:
                        errors.append(f"{red.soname} missing at "
                                      f"gen {snap.generation}")
                        return
                    if red.file_size_after != d.compacted_file_size:
                        errors.append(f"{red.soname} stale at "
                                      f"gen {snap.generation}")
                        return

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        for t in readers:
            t.start()
        try:
            for spec in specs():
                store.admit(spec)
        finally:
            stop.set()
            for t in readers:
                t.join()
        assert errors == []
        assert store.snapshot().generation == 3

    def test_old_snapshot_survives_mutation(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.admit(specs()[0])
        old = store.snapshot()
        old_sonames = set(old.libraries)
        store.admit(specs()[2])  # grows features -> adds libraries
        assert set(old.libraries) == old_sonames  # epoch unchanged
        assert len(store.snapshot().libraries) > len(old.libraries)

    def test_concurrent_admitters_converge(self, pytorch):
        sequential = DebloatStore(pytorch, OPTS)
        for s in specs():
            sequential.admit(s)

        concurrent = DebloatStore(pytorch, OPTS)
        threads = [
            threading.Thread(target=concurrent.admit, args=(s,))
            for s in specs()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert concurrent.generation == 3
        assert_same_libraries(
            concurrent.debloated_libraries(),
            sequential.debloated_libraries(),
        )

    def test_parallel_delta_compaction(self, pytorch):
        serial = DebloatStore(pytorch, OPTS)
        fanned = DebloatStore(
            pytorch,
            DebloatOptions(runtime_comparison_top_n=0, locate_workers=4),
        )
        for s in specs():
            serial.admit(s)
            fanned.admit(s)
        assert_same_libraries(
            serial.debloated_libraries(), fanned.debloated_libraries()
        )


class TestEvictionAndReset:
    def test_evict_shrinks_union(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        for s in specs():
            store.admit(s)
        res = store.evict("pytorch/train/transformer")
        assert res.removed_admissions == 1
        # Rebuilt store equals one that never saw the evicted workload.
        fresh = DebloatStore(pytorch, OPTS)
        for s in specs()[:2]:
            fresh.admit(s)
        assert_same_libraries(
            store.debloated_libraries(), fresh.debloated_libraries()
        )
        assert store.snapshot().workload_ids == tuple(SPEC_IDS[:2])

    def test_evict_last_admission_empties_store(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.admit(specs()[0])
        res = store.evict(SPEC_IDS[0])
        assert res.dropped_libraries != ()
        snap = store.snapshot()
        assert snap.workload_ids == ()
        assert len(snap.libraries) == 0
        # The store is reusable, including for a different architecture.
        store.admit(specs()[1])
        assert store.snapshot().workload_ids == (SPEC_IDS[1],)

    def test_evict_unknown_raises(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.admit(specs()[0])
        with pytest.raises(UsageError):
            store.evict("pytorch/train/transformer")

    def test_reset(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.admit(specs()[0])
        gen = store.generation
        store.reset()
        snap = store.snapshot()
        assert snap.generation == gen + 1
        assert snap.workload_ids == ()
        assert len(snap.reductions) == 0


class TestStoreValidation:
    def test_framework_mismatch(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        with pytest.raises(UsageError):
            store.admit(workload_by_id("tensorflow/train/mobilenetv2"))

    def test_mixed_architecture(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        store.admit(specs()[1])
        with pytest.raises(UsageError):
            store.admit(specs()[1].variant(device_name="h100"))

    def test_report_requires_admissions(self, pytorch):
        with pytest.raises(UsageError):
            DebloatStore(pytorch, OPTS).report()


class TestWarmStoreRestart:
    def test_second_store_admits_with_zero_runs(self, monkeypatch):
        """A cache-backed store rebuilt after 'restart' runs no workloads."""
        import repro.experiments.common as excommon

        # Pin an enabled cache so this holds under REPRO_PIPELINE_CACHE=0
        # CI legs too (same pattern as test_pipeline_cache).
        monkeypatch.setattr(
            excommon, "PIPELINE_CACHE", excommon.PipelineCache(enabled=True)
        )
        fw = get_framework("pytorch", scale=TEST_SCALE)
        cold = DebloatStore(fw, use_cache=True)
        for s in specs():
            cold.admit(s)

        runs: list[str] = []
        original = WorkloadRunner.run

        def counting_run(runner_self):
            runs.append(runner_self.spec.workload_id)
            return original(runner_self)

        monkeypatch.setattr(WorkloadRunner, "run", counting_run)
        warm = DebloatStore(fw, use_cache=True)
        results = [warm.admit(s) for s in specs()]
        assert runs == []
        assert all(r.detection_cached for r in results)
        assert_same_libraries(
            warm.debloated_libraries(), cold.debloated_libraries()
        )

    def test_non_catalog_build_opts_out_of_cache(self):
        """A single-arch ablation rebuild must not share cache entries with
        the canonical build - the store silently runs uncached instead."""
        fw = get_framework("pytorch", scale=TEST_SCALE, archs=(75,))
        store = DebloatStore(fw, use_cache=True)
        res = store.admit(specs()[0])
        assert not res.detection_cached

    def test_cache_disabled_store_still_correct(self, monkeypatch):
        import repro.experiments.common as excommon

        monkeypatch.setattr(
            excommon, "PIPELINE_CACHE", excommon.PipelineCache(enabled=False)
        )
        fw = get_framework("pytorch", scale=TEST_SCALE)
        store = DebloatStore(fw, use_cache=True)
        res = store.admit(specs()[0])
        assert not res.detection_cached
        assert res.new_kernels > 0


class TestDebloatServer:
    def test_admissions_through_worker_pool(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        with DebloatServer(store, workers=3) as server:
            results = server.admit_all(specs())
        assert [r.workload_id for r in results] == SPEC_IDS
        assert store.generation == 3
        sequential = DebloatStore(pytorch, OPTS)
        for s in specs():
            sequential.admit(s)
        assert_same_libraries(
            store.debloated_libraries(), sequential.debloated_libraries()
        )

    def test_ticket_latency_and_stats(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        with DebloatServer(store, workers=1) as server:
            ticket = server.submit(specs()[0])
            ticket.result()
            assert ticket.done()
            assert ticket.latency_s is not None and ticket.latency_s > 0
            stats = server.stats()
        assert stats["served"] == 1
        assert stats["failed"] == 0
        assert stats["workers"] == 1

    def test_errors_relayed_to_caller(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        with DebloatServer(store, workers=1) as server:
            with pytest.raises(UsageError):
                server.admit(workload_by_id("tensorflow/train/mobilenetv2"))
            assert server.stats()["failed"] == 1

    def test_closed_server_rejects(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        server = DebloatServer(store, workers=1)
        server.close()
        with pytest.raises(UsageError):
            server.submit(specs()[0])


class TestAdmissionBatching:
    """``admit_many`` = one union merge + one delta pass, same end state."""

    def test_batch_matches_sequential(self, pytorch):
        sequential = DebloatStore(pytorch, OPTS)
        for spec in specs():
            sequential.admit(spec)
        batched = DebloatStore(pytorch, OPTS)
        results = batched.admit_many(specs())

        assert_same_libraries(
            sequential.debloated_libraries(), batched.debloated_libraries()
        )
        assert (
            sequential.snapshot().generation == batched.snapshot().generation
        )
        assert (
            sequential.snapshot().workload_ids
            == batched.snapshot().workload_ids
        )
        assert (
            sequential.snapshot().union_kernels
            == batched.snapshot().union_kernels
        )
        assert (
            sequential.snapshot().union_functions
            == batched.snapshot().union_functions
        )
        assert [r.workload_id for r in results] == SPEC_IDS
        assert [r.new_kernels for r in results] == [
            m for _, m in sequential.report(verify=False).saturation_series()
        ]
        assert [r.generation for r in results] == [1, 2, 3]

    def test_batch_fewer_recompactions(self, pytorch):
        sequential = DebloatStore(pytorch, OPTS)
        for spec in specs():
            sequential.admit(spec)
        batched = DebloatStore(pytorch, OPTS)
        batched.admit_many(specs())
        assert (
            batched.stats()["recompactions"]
            < sequential.stats()["recompactions"]
        )
        # One pass per distinct grown library: every library is processed
        # at most once in the whole batch.
        libs = {lib.soname for lib in pytorch.libraries_for(
            frozenset().union(*(s.features for s in specs()))
        )}
        assert batched.stats()["recompactions"] <= len(libs)

    def test_batch_then_more_admissions(self, pytorch):
        """A store grown by a batch keeps serving deltas afterwards."""
        store = DebloatStore(pytorch, OPTS)
        store.admit_many(specs()[:2])
        res = store.admit(specs()[2])
        sequential = DebloatStore(pytorch, OPTS)
        for spec in specs():
            sequential.admit(spec)
        assert_same_libraries(
            store.debloated_libraries(), sequential.debloated_libraries()
        )
        assert res.new_kernels == sequential._marginal_kernels[2]

    def test_batch_with_duplicates(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        batch = [specs()[0], specs()[0], specs()[1]]
        runs = 0
        original_run = WorkloadRunner.run

        def counting_run(self):
            nonlocal runs
            runs += 1
            return original_run(self)

        WorkloadRunner.run = counting_run
        try:
            results = store.admit_many(batch)
        finally:
            WorkloadRunner.run = original_run
        assert results[1].duplicate
        assert results[1].detection_cached  # reused the in-batch capture
        assert results[1].new_kernels == 0
        assert runs == 2  # two distinct specs -> two detections, not three
        sequential = DebloatStore(pytorch, OPTS)
        for spec in batch:
            sequential.admit(spec)
        assert_same_libraries(
            store.debloated_libraries(), sequential.debloated_libraries()
        )

    def test_empty_batch_rejected(self, pytorch):
        with pytest.raises(UsageError):
            DebloatStore(pytorch, OPTS).admit_many([])

    def test_malformed_batch_leaves_store_untouched(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        bad = [specs()[0], workload_by_id("tensorflow/train/mobilenetv2")]
        with pytest.raises(UsageError):
            store.admit_many(bad)
        assert store.snapshot().generation == 0
        assert store.snapshot().workload_ids == ()

    def test_batch_verify(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        results = store.admit_many(specs()[:2], verify=True)
        assert all(
            r.verification is not None and r.verification.ok
            for r in results
        )

    def test_batch_cost_attribution_sums_to_pass_cost(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        results = store.admit_many(specs())
        total = sum(r.locate_compact_s for r in results)
        assert total > 0
        # First admission pays for the bulk (it grows every library).
        assert results[0].locate_compact_s > results[1].locate_compact_s


class TestServerQueueDraining:
    def test_draining_server_matches_sequential(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        with DebloatServer(store, workers=1, batch_max=8) as server:
            results = server.admit_all(specs())
            stats = server.stats()
        assert [r.workload_id for r in results] == SPEC_IDS
        assert stats["served"] == len(SPEC_IDS)
        sequential = DebloatStore(pytorch, OPTS)
        for spec in specs():
            sequential.admit(spec)
        assert_same_libraries(
            store.debloated_libraries(), sequential.debloated_libraries()
        )

    def test_bad_spec_in_drained_batch_fails_alone(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        bad = workload_by_id("tensorflow/train/mobilenetv2")
        with DebloatServer(store, workers=1, batch_max=8) as server:
            tickets = [server.submit(s) for s in [specs()[0], bad, specs()[1]]]
            good_a = tickets[0].result(60)
            with pytest.raises(UsageError):
                tickets[1].result(60)
            good_b = tickets[2].result(60)
        assert good_a.workload_id == SPEC_IDS[0]
        assert good_b.workload_id == SPEC_IDS[1]
        assert store.snapshot().workload_ids == (SPEC_IDS[0], SPEC_IDS[1])

    def test_batch_max_validation(self, pytorch):
        with pytest.raises(UsageError):
            DebloatServer(DebloatStore(pytorch, OPTS), batch_max=0)


class TestTicketErrorIsolation:
    """result() re-raises a per-call copy: concurrent waiters must never
    pollute each other's (or the stored) tracebacks."""

    @staticmethod
    def _failed_ticket() -> "AdmissionTicket":
        from repro.errors import AdmissionError
        from repro.serving import AdmissionTicket

        ticket = AdmissionTicket(workload_by_id(SPEC_IDS[0]))
        try:
            raise AdmissionError(SPEC_IDS[0], 2, ValueError("boom"))
        except AdmissionError as err:
            ticket._resolve(0.0, None, err)
        return ticket

    def test_waiters_get_independent_exception_objects(self):
        import time
        import traceback

        ticket = self._failed_ticket()
        stored = ticket._error
        assert stored is not None
        stored_depth = len(traceback.extract_tb(stored.__traceback__))

        n = 16
        caught: list[BaseException] = [None] * n  # type: ignore[list-item]
        barrier = threading.Barrier(n)

        def wait(i: int) -> None:
            barrier.wait()
            try:
                ticket.result(5)
            except Exception as exc:  # noqa: BLE001
                caught[i] = exc

        threads = [
            threading.Thread(target=wait, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(exc is not None for exc in caught)
        # Independent objects: no waiter saw the stored exception itself
        # or another waiter's copy.
        assert len({id(exc) for exc in caught}) == n
        assert all(exc is not stored for exc in caught)
        # The worker-side traceback is preserved on every copy, and each
        # copy owns its propagation frames: the shared tail stays the
        # worker's frames only, no matter how many waiters re-raised.
        for exc in caught:
            frames = traceback.extract_tb(exc.__traceback__)
            assert len(frames) == stored_depth + 2  # result() + wait()
            assert frames[-1].name == "_failed_ticket"
        assert (
            len(traceback.extract_tb(stored.__traceback__)) == stored_depth
        )
        # Typed payload survives the copy.
        first = caught[0]
        assert first.workload_id == SPEC_IDS[0]
        assert first.attempts == 2
        assert isinstance(first.__cause__, ValueError)

    def test_sequential_reraises_stay_clean(self):
        import traceback

        ticket = self._failed_ticket()
        depths = []
        for _ in range(3):
            try:
                ticket.result(5)
            except Exception as exc:  # noqa: BLE001
                depths.append(len(traceback.extract_tb(exc.__traceback__)))
        # Without the per-call copy each re-raise used to grow the shared
        # traceback by its own propagation frames.
        assert depths[0] == depths[1] == depths[2]


class TestStatsConsistency:
    """stats() takes the state lock: no torn served/failed/in_flight views."""

    def test_concurrent_stats_never_tear(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        snapshots: list[dict] = []
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                snapshots.append(server.stats())

        with DebloatServer(store, workers=2, batch_max=4) as server:
            readers = [
                threading.Thread(target=hammer) for _ in range(2)
            ]
            for t in readers:
                t.start()
            tickets = []
            for _ in range(4):
                for spec in specs():
                    tickets.append(server.submit(spec))
            for t in tickets:
                t.result(120)
            stop.set()
            for t in readers:
                t.join()
            final = server.stats()

        submitted = len(tickets)
        assert final["submitted"] == submitted
        assert final["served"] == submitted
        assert final["failed"] == 0
        assert final["in_flight"] == 0
        assert final["queued"] == 0
        for snap in snapshots:
            # One consistent view: every submission is queued, being
            # admitted, or counted exactly once - never double-counted.
            assert snap["served"] + snap["failed"] <= snap["submitted"]
            assert (
                snap["served"] + snap["failed"] + snap["in_flight"]
                <= snap["submitted"]
            )
            assert snap["queued"] <= snap["in_flight"]
            assert snap["submitted"] <= submitted

    def test_stats_and_health_agree_on_queue_fields(self, pytorch):
        store = DebloatStore(pytorch, OPTS)
        with DebloatServer(store, workers=1) as server:
            server.admit_all(specs()[:1])
            stats = server.stats()
            health = server.health()
        for view in (stats, health):
            assert "pending" not in view
            assert view["queued"] == 0
            assert view["in_flight"] == 0

"""Compaction + end-to-end debloating tests, including negative
verification cases (removing needed code must be caught)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact import Compactor, exact_kernel_removal
from repro.core.cpu import FunctionLocator
from repro.core.debloat import Debloater, DebloatOptions
from repro.core.detect import KernelDetector
from repro.core.locate import KernelLocator
from repro.core.verify import verify_debloat
from repro.cuda.arch import get_device
from repro.cuda.clock import VirtualClock
from repro.cuda.driver import CudaDriver
from repro.errors import MissingFunctionError, MissingKernelError
from repro.fatbin import constants as FC
from repro.frameworks.catalog import get_framework
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE, build_small_library


def compact_small(used_kernels=frozenset({"k_0_0"}), used_fns=(0, 1, 2)):
    lib = build_small_library()
    gpu = KernelLocator().locate(lib, used_kernels, 75)
    cpu = FunctionLocator().locate(lib, np.array(used_fns, dtype=np.int64))
    return lib, Compactor().compact(lib, cpu, gpu)


class TestCompactor:
    def test_accounting(self):
        lib, debloated = compact_small()
        assert debloated.removed_functions == 9
        assert debloated.removed_cpu_bytes == 9 * 64
        assert debloated.removed_elements == 3
        assert debloated.compacted_file_size < lib.file_size

    def test_original_untouched(self):
        lib, debloated = compact_small()
        assert lib.tags.get("removed_bytes_total") is None
        recheck = KernelLocator().locate(lib, frozenset(), 75)
        assert recheck.element_count == 4  # original still parses fully

    def test_removed_elements_flagged(self):
        lib, debloated = compact_small()
        flags = {
            e.index: bool(e.header.flags & FC.ELEMENT_FLAG_REMOVED)
            for e in debloated.lib.fatbin.elements()
        }
        assert flags == {1: True, 2: True, 3: False, 4: True}

    def test_removed_payload_zeroed(self):
        lib, debloated = compact_small()
        removed = debloated.lib.fatbin.element_by_index(1)
        data = debloated.lib.data.read(removed.payload_offset, 16)
        assert data == b"\x00" * 16

    def test_retained_cubin_still_parses(self):
        _, debloated = compact_small()
        kept = debloated.lib.fatbin.element_by_index(3)
        assert kept.cubin.kernel_names() == [f"k_0_{j}" for j in range(4)]

    def test_function_mask_recorded(self):
        _, debloated = compact_small(used_fns=(4,))
        mask = debloated.lib.tags["removed_function_mask"]
        assert not mask[4]
        assert mask.sum() == 11

    def test_structural_bytes_untouched(self):
        lib, debloated = compact_small()
        for rng in lib.structural_ranges():
            a = lib.data.read(rng.start, min(len(rng), 4096))
            b = debloated.lib.data.read(rng.start, min(len(rng), 4096))
            assert a == b

    def test_compact_none_is_identity(self):
        lib = build_small_library()
        debloated = Compactor().compact(lib)
        assert debloated.removed_bytes_total == 0
        assert debloated.compacted_file_size == lib.file_size

    def test_clock_charged(self):
        lib = build_small_library()
        gpu = KernelLocator().locate(lib, frozenset(), 75)
        clock = VirtualClock()
        Compactor().compact(lib, None, gpu, clock=clock)
        assert clock.now > 0

    def test_module_load_skips_removed_elements(self):
        _, debloated = compact_small()
        driver = CudaDriver(device=get_device("t4"), clock=VirtualClock())
        driver.init()
        module = driver.module_load(debloated.lib)
        assert len(module.matching_elements) == 1
        handle = driver.module_get_function(module, "k_0_0")
        driver.launch_kernel(handle)  # children retained with the element

    def test_removed_kernel_unresolvable(self):
        _, debloated = compact_small(used_kernels=frozenset({"k_0_0"}))
        driver = CudaDriver(device=get_device("t4"), clock=VirtualClock())
        driver.init()
        module = driver.module_load(debloated.lib)
        with pytest.raises(MissingKernelError):
            driver.module_get_function(module, "k_1_0")  # element 4 removed

    def test_exact_kernel_ablation_breaks_closure(self):
        _, debloated = compact_small(used_kernels=frozenset({"k_0_0"}))
        ablated = exact_kernel_removal(debloated, frozenset({"k_0_0"}))
        driver = CudaDriver(device=get_device("t4"), clock=VirtualClock())
        driver.init()
        module = driver.module_load(ablated)
        handle = driver.module_get_function(module, "k_0_0")
        with pytest.raises(MissingKernelError):
            driver.launch_kernel(handle)  # k_0_0 launches removed k_0_3


@pytest.fixture(scope="module")
def mobilenet_report():
    fw = get_framework("pytorch", scale=TEST_SCALE)
    debloater = Debloater(fw)
    report = debloater.debloat(workload_by_id("pytorch/inference/mobilenetv2"))
    return debloater, report


class TestDebloater:
    def test_verification_passes(self, mobilenet_report):
        _, report = mobilenet_report
        assert report.verification is not None and report.verification.ok

    def test_covers_all_loaded_libraries(self, mobilenet_report):
        _, report = mobilenet_report
        assert report.n_libraries == 111  # paper: inference drops 2 libs

    def test_substantial_reductions(self, mobilenet_report):
        _, report = mobilenet_report
        assert report.file_reduction_pct > 40
        assert report.gpu_reduction_pct > 60
        assert report.element_reduction_pct > 90
        assert report.cpu_reduction_pct > 40

    def test_runtime_comparison_improves(self, mobilenet_report):
        _, report = mobilenet_report
        base, after = report.baseline, report.debloated_run
        assert after.execution_time_s < base.execution_time_s
        assert after.peak_cpu_mem_bytes < base.peak_cpu_mem_bytes
        assert after.peak_gpu_mem_bytes < base.peak_gpu_mem_bytes

    def test_timing_populated(self, mobilenet_report):
        _, report = mobilenet_report
        t = report.timing
        assert t.kernel_detection_run_s > report.baseline.execution_time_s
        assert t.cpu_profiling_run_s > report.baseline.execution_time_s
        assert t.locate_s > 0 and t.compact_s > 0
        assert t.total_s == pytest.approx(
            t.kernel_detection_run_s + t.cpu_profiling_run_s + t.locate_s
            + t.compact_s
        )

    def test_reason_shares(self, mobilenet_report):
        _, report = mobilenet_report
        shares = report.removal_reason_shares()
        total = sum(shares.values())
        assert total == pytest.approx(100.0)

    def test_wrong_framework_rejected(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        from repro.errors import VerificationError

        with pytest.raises(VerificationError):
            Debloater(fw).debloat(workload_by_id("tensorflow/train/mobilenetv2"))

    def test_gpu_only_ablation(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        options = DebloatOptions(debloat_cpu=False,
                                 runtime_comparison_top_n=0)
        report = Debloater(fw, options).debloat(
            workload_by_id("pytorch/inference/mobilenetv2")
        )
        assert report.cpu_reduction_pct == 0.0
        assert report.gpu_reduction_pct > 60
        assert report.verification.ok

    def test_cpu_only_ablation(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        options = DebloatOptions(debloat_gpu=False,
                                 runtime_comparison_top_n=0)
        report = Debloater(fw, options).debloat(
            workload_by_id("pytorch/inference/mobilenetv2")
        )
        assert report.gpu_reduction_pct == 0.0
        assert report.cpu_reduction_pct > 40


class TestFusedInstrumentedRun:
    """debloat() runs baseline + ONE fused instrumented run pre-locate."""

    def _count_runs(self, monkeypatch, options):
        runners: list[WorkloadRunner] = []
        original = WorkloadRunner.run

        def counting_run(runner_self):
            runners.append(runner_self)
            return original(runner_self)

        monkeypatch.setattr(WorkloadRunner, "run", counting_run)
        fw = get_framework("pytorch", scale=TEST_SCALE)
        report = Debloater(fw, options).debloat(
            workload_by_id("pytorch/inference/mobilenetv2")
        )
        return runners, report

    def test_exactly_two_pre_locate_runs(self, monkeypatch):
        runners, _ = self._count_runs(
            monkeypatch,
            DebloatOptions(verify=False, runtime_comparison_top_n=0),
        )
        assert len(runners) == 2
        baseline_runner, fused_runner = runners
        assert baseline_runner.subscribers == ()
        assert baseline_runner.profiler is None
        # The second run carries BOTH instruments (detector and profiler)
        # plus the passive NSys tracer, which observes record counts for
        # the §4.6 attribution without charging the clock.
        assert len(fused_runner.subscribers) == 2
        detector_sub, nsys_sub = fused_runner.subscribers
        assert not getattr(detector_sub, "passive", False)
        assert nsys_sub.passive
        assert fused_runner.profiler is not None

    def test_verify_and_comparison_add_their_runs(self, monkeypatch):
        runners, _ = self._count_runs(monkeypatch, DebloatOptions())
        # baseline + fused + verification + top-N runtime comparison
        assert len(runners) == 4

    def test_timing_attribution_matches_standalone_runs(self):
        """Fused-run attribution reproduces separate-run times exactly."""
        fw = get_framework("pytorch", scale=TEST_SCALE)
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        report = Debloater(
            fw, DebloatOptions(verify=False, runtime_comparison_top_n=0)
        ).debloat(spec)

        det_only = WorkloadRunner(
            spec, fw, subscribers=(KernelDetector(),)
        ).run()
        from repro.loader.profiler import FunctionProfiler

        prof_only = WorkloadRunner(spec, fw, profiler=FunctionProfiler()).run()

        from repro.core.nsys import NsysTracer

        nsys_only = WorkloadRunner(
            spec, fw, subscribers=(NsysTracer(),)
        ).run()

        t = report.timing
        assert t.kernel_detection_run_s == pytest.approx(
            det_only.execution_time_s, rel=1e-9
        )
        assert t.cpu_profiling_run_s == pytest.approx(
            prof_only.execution_time_s, rel=1e-9
        )
        # The passive tracer riding the fused run attributes a standalone
        # NSys-traced run exactly (record counts are deterministic).
        assert t.nsys_traced_run_s == pytest.approx(
            nsys_only.execution_time_s, rel=1e-9
        )
        assert t.instrumented_run_s > max(
            t.kernel_detection_run_s, t.cpu_profiling_run_s
        ) - report.baseline.execution_time_s
        assert t.fused_total_s < t.total_s  # one run saved

    def test_parallel_locate_is_deterministic(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        serial = Debloater(
            fw, DebloatOptions(verify=False, runtime_comparison_top_n=0)
        ).debloat(spec)
        parallel = Debloater(
            fw,
            DebloatOptions(
                verify=False, runtime_comparison_top_n=0, locate_workers=4
            ),
        ).debloat(spec)
        assert serial.libraries == parallel.libraries
        assert serial.timing.locate_s == parallel.timing.locate_s
        assert serial.timing.compact_s == parallel.timing.compact_s


class TestVerificationNegativeCases:
    """Debloating mistakes must be caught, not silently accepted."""

    def _debloat_all(self):
        fw = get_framework("pytorch", scale=TEST_SCALE)
        spec = workload_by_id("pytorch/inference/mobilenetv2")
        debloater = Debloater(fw, DebloatOptions(runtime_comparison_top_n=0))
        report = debloater.debloat(spec)
        return fw, spec, debloater, report

    def test_dropping_used_element_fails_verification(self):
        """Whole-element retention tolerates dropping *one* kernel whose
        cubin has other used kernels; dropping every used kernel of a
        retained element removes the element and must break the re-run."""
        fw, spec, debloater, report = self._debloat_all()
        soname = "libtorch_cuda.so"
        lib = fw.libraries[soname]
        used = set(report.baseline.used_kernels[soname])
        good = KernelLocator().locate(lib, frozenset(used), 75)
        victim = good.retained[0]
        used -= set(victim.used_entry_kernels)
        gpu = KernelLocator().locate(lib, frozenset(used), 75)
        assert gpu.element_count - len(gpu.retained) > (
            good.element_count - len(good.retained)
        )
        bad = Compactor().compact(lib, None, gpu)
        debloated = dict(debloater.debloated_libraries)
        debloated[soname] = bad
        result = verify_debloat(spec, fw, debloated, report.baseline)
        assert not result.ok
        assert "MissingKernelError" in (result.error or "")

    def test_dropping_single_shared_cubin_kernel_is_tolerated(self):
        """The flip side: whole-element retention keeps siblings alive."""
        fw, spec, debloater, report = self._debloat_all()
        soname = "libtorch_cuda.so"
        lib = fw.libraries[soname]
        used = set(report.baseline.used_kernels[soname])
        good = KernelLocator().locate(lib, frozenset(used), 75)
        multi = next(
            (d for d in good.retained if len(d.used_entry_kernels) > 1), None
        )
        if multi is None:
            pytest.skip("no retained element with multiple used kernels")
        used.discard(multi.used_entry_kernels[0])
        gpu = KernelLocator().locate(lib, frozenset(used), 75)
        bad = Compactor().compact(lib, None, gpu)
        debloated = dict(debloater.debloated_libraries)
        debloated[soname] = bad
        result = verify_debloat(spec, fw, debloated, report.baseline)
        assert result.ok

    def test_dropping_used_function_fails_verification(self):
        fw, spec, debloater, report = self._debloat_all()
        soname = "libtorch_cpu.so"
        lib = fw.libraries[soname]
        used = report.baseline.used_functions[soname]
        cpu = FunctionLocator().locate(lib, used[1:])  # drop one used function
        bad = Compactor().compact(lib, cpu, None)
        debloated = dict(debloater.debloated_libraries)
        debloated[soname] = bad
        result = verify_debloat(spec, fw, debloated, report.baseline)
        assert not result.ok
        assert "MissingFunctionError" in (result.error or "")

    def test_verify_positive_returns_metrics(self):
        fw, spec, debloater, report = self._debloat_all()
        result = verify_debloat(
            spec, fw, debloater.debloated_libraries, report.baseline
        )
        assert result.ok
        assert result.debloated_digest == report.baseline.output_digest
        assert result.debloated_metrics is not None

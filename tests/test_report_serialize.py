"""Property tests: report serialization round-trips and digest stability.

Hypothesis builds randomized-but-valid ``WorkloadDebloatReport`` object
graphs (decisions with consistent retained/reason pairs, normalized
``RangeSet``s, metrics with NumPy used-function arrays) and asserts:

* ``from_payload(to_payload(r))`` reproduces ``r`` exactly, including
  ``RangeSet`` array equality and derived analyses like
  ``removal_reason_shares()``;
* the binary container (``dumps``/``loads``) is lossless too;
* :func:`~repro.core.serialize.stable_digest` is a *function* of the frozen
  identity - equal identities hash equal - and injective in practice: any
  perturbation of any key field or option changes the digest.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import serialize
from repro.core.debloat import DebloatOptions
from repro.core.locate import ElementDecision, LocateResult, RemovalReason
from repro.core.report import (
    DebloatTiming,
    LibraryReduction,
    WorkloadDebloatReport,
)
from repro.core.verify import VerificationResult
from repro.experiments.common import PipelineCache
from repro.utils.intervals import RangeSet
from repro.workloads.metrics import RunMetrics
from repro.workloads.spec import TABLE1_WORKLOADS, workload_by_id

from tests.conftest import TEST_SCALE

# -- strategies -------------------------------------------------------------------

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_:0123456789", min_size=1, max_size=24
)
sizes = st.integers(min_value=0, max_value=1 << 40)
finite_floats = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def range_sets(draw) -> RangeSet:
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 30),
                st.integers(min_value=1, max_value=1 << 16),
            ),
            max_size=12,
        )
    )
    return RangeSet((start, start + length) for start, length in pairs)


@st.composite
def decisions(draw, index: int = 0) -> ElementDecision:
    retained = draw(st.booleans())
    return ElementDecision(
        index=index,
        sm_arch=draw(st.sampled_from((70, 75, 80, 86, 89, 90))),
        size=draw(st.integers(min_value=0, max_value=1 << 24)),
        kernel_count=draw(st.integers(min_value=0, max_value=200)),
        retained=retained,
        reason=None if retained else draw(st.sampled_from(RemovalReason)),
        used_entry_kernels=(
            tuple(draw(st.lists(names, max_size=3))) if retained else ()
        ),
    )


@st.composite
def locate_results(draw) -> LocateResult:
    n = draw(st.integers(min_value=0, max_value=6))
    return LocateResult(
        soname=draw(names),
        device_arch=draw(st.sampled_from((70, 75, 80, 90))),
        decisions=[draw(decisions(index=i)) for i in range(n)],
        retain_ranges=draw(range_sets()),
        remove_ranges=draw(range_sets()),
    )


@st.composite
def run_metrics(draw) -> RunMetrics:
    used_functions = {
        soname: np.asarray(sorted(set(idx)), dtype=np.int64)
        for soname, idx in draw(
            st.dictionaries(
                names,
                st.lists(st.integers(min_value=0, max_value=1 << 20)),
                max_size=4,
            )
        ).items()
    }
    return RunMetrics(
        workload_id=draw(names),
        execution_time_s=draw(finite_floats),
        peak_cpu_mem_bytes=draw(sizes),
        peak_gpu_mem_bytes=draw(sizes),
        output_digest=draw(names),
        used_kernels={
            soname: frozenset(kernels)
            for soname, kernels in draw(
                st.dictionaries(names, st.sets(names, max_size=4), max_size=4)
            ).items()
        },
        used_functions=used_functions,
        counters=draw(
            st.dictionaries(names, st.integers(min_value=0, max_value=1 << 40),
                            max_size=5)
        ),
    )


@st.composite
def library_reductions(draw) -> LibraryReduction:
    return LibraryReduction(
        soname=draw(names),
        **{
            f.name: draw(sizes)
            for f in dataclasses.fields(LibraryReduction)
            if f.name != "soname"
        },
    )


@st.composite
def verifications(draw) -> VerificationResult:
    ok = draw(st.booleans())
    return VerificationResult(
        ok=ok,
        original_digest=draw(names),
        debloated_digest=draw(st.none() | names),
        error=None if ok else draw(st.none() | names),
        debloated_metrics=draw(st.none() | run_metrics()),
    )


@st.composite
def reports(draw) -> WorkloadDebloatReport:
    locs = draw(st.lists(locate_results(), max_size=3))
    return WorkloadDebloatReport(
        workload_id=draw(names),
        device_arch=75,
        libraries=draw(st.lists(library_reductions(), max_size=4)),
        locate_results={res.soname: res for res in locs},
        timing=DebloatTiming(
            **{
                f.name: draw(finite_floats)
                for f in dataclasses.fields(DebloatTiming)
            }
        ),
        baseline=draw(run_metrics()),
        detection=draw(st.none() | run_metrics()),
        debloated_run=draw(st.none() | run_metrics()),
        verification=draw(st.none() | verifications()),
    )


# -- round-trip properties --------------------------------------------------------


class TestPayloadRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(report=reports())
    def test_payload_round_trip(self, report):
        back = serialize.from_payload(serialize.to_payload(report))
        assert serialize.reports_equal(report, back)
        # RangeSets round-trip to *equal arrays*, not just equal totals.
        for soname, res in report.locate_results.items():
            got = back.locate_results[soname]
            assert got.retain_ranges == res.retain_ranges
            assert got.remove_ranges == res.remove_ranges
            assert np.array_equal(
                got.retain_ranges.starts, res.retain_ranges.starts
            )
            assert np.array_equal(
                got.retain_ranges.stops, res.retain_ranges.stops
            )
        # Derived analyses survive the trip (enum identity included).
        assert back.removal_reason_shares() == report.removal_reason_shares()

    @settings(max_examples=60, deadline=None)
    @given(report=reports())
    def test_container_round_trip(self, report):
        back = serialize.loads(serialize.dumps(report))
        assert serialize.reports_equal(report, back)

    @settings(max_examples=30, deadline=None)
    @given(report=reports())
    def test_dumps_deterministic(self, report):
        assert serialize.dumps(report) == serialize.dumps(report)

    def test_pipeline_report_round_trip(self):
        """The real thing, not just the strategy's idea of a report."""
        cache = PipelineCache(enabled=False)
        report = cache.get_or_run(
            workload_by_id("pytorch/inference/mobilenetv2"), TEST_SCALE, None
        )
        back = serialize.loads(serialize.dumps(report))
        assert serialize.reports_equal(report, back)
        assert back.removal_reason_shares() == report.removal_reason_shares()
        assert back.verification is not None and back.verification.ok
        for lib, lib2 in zip(report.libraries, back.libraries):
            assert lib == lib2  # frozen dataclass equality

    def test_schema_skew_rejected(self):
        payload = {"schema": serialize.SCHEMA_VERSION + 1}
        from repro.errors import CacheSchemaError

        with pytest.raises(CacheSchemaError):
            serialize.from_payload(payload)


# -- digest properties ------------------------------------------------------------


def default_key(spec=None, scale=TEST_SCALE, options=None):
    spec = spec or workload_by_id("pytorch/inference/mobilenetv2")
    return PipelineCache.key(spec, scale, options)


class TestStableDigest:
    def test_equal_identities_hash_equal(self):
        a = default_key(options=DebloatOptions())
        b = default_key(options=None)  # None means default options
        assert serialize.stable_digest(a) == serialize.stable_digest(b)

    def test_known_value(self):
        """The digest algorithm itself is part of the on-disk contract."""
        assert (
            serialize.stable_digest(("a", 1, 0.5, None, True))
            == "68213db070c20745a444ba59697a1caa9a806f3d"
        )

    def test_every_workload_distinct(self):
        digests = {
            serialize.stable_digest(default_key(spec=s))
            for s in TABLE1_WORKLOADS
        }
        assert len(digests) == len(TABLE1_WORKLOADS)

    def test_locate_workers_is_identity_invariant(self):
        """The fan-out knobs are normalized out: equal digests by design."""
        assert serialize.stable_digest(
            default_key(options=DebloatOptions(locate_workers=8))
        ) == serialize.stable_digest(default_key())

    def test_locate_workers_mode_is_identity_invariant(self):
        """Fan-out *mode* is excluded from the key entirely, so digests of
        entries persisted before the field existed keep matching."""
        assert serialize.stable_digest(
            default_key(
                options=DebloatOptions(
                    locate_workers=4, locate_workers_mode="process"
                )
            )
        ) == serialize.stable_digest(default_key())
        # The frozen options component carries no trace of the field.
        for item in default_key()[9]:
            assert item[0] != "locate_workers_mode"

    @settings(max_examples=40, deadline=None)
    @given(
        field_name=st.sampled_from(
            [
                f.name
                for f in dataclasses.fields(DebloatOptions)
                # costs is perturbed separately; locate_workers and
                # locate_workers_mode are deliberately NOT part of the
                # identity (deterministic output for any worker count or
                # fan-out mode).
                if f.name not in (
                    "costs", "locate_workers", "locate_workers_mode"
                )
            ]
        )
    )
    def test_option_perturbation_changes_digest(self, field_name):
        base = DebloatOptions()
        value = getattr(base, field_name)
        if isinstance(value, bool):
            perturbed = dataclasses.replace(base, **{field_name: not value})
        else:
            perturbed = dataclasses.replace(
                base, **{field_name: (value or 0) + 1}
            )
        assert serialize.stable_digest(
            default_key(options=base)
        ) != serialize.stable_digest(default_key(options=perturbed))

    def test_cost_model_perturbation_changes_digest(self):
        from repro.cuda.costs import CostModel

        tweaked = DebloatOptions(
            costs=CostModel(detector_callback=4.6e-2)
        )
        assert serialize.stable_digest(
            default_key(options=tweaked)
        ) != serialize.stable_digest(default_key())

    @settings(max_examples=40, deadline=None)
    @given(index=st.integers(min_value=0, max_value=8))
    def test_positional_perturbation_changes_digest(self, index):
        """Perturbing any non-options component of the key changes it."""
        key = default_key()
        part = key[index]
        if isinstance(part, bool):
            perturbed = not part
        elif isinstance(part, (int, float)):
            perturbed = part + 1
        else:
            perturbed = str(part) + "~"
        mutated = key[:index] + (perturbed,) + key[index + 1 :]
        assert serialize.stable_digest(key) != serialize.stable_digest(mutated)

    def test_type_confusion_resists(self):
        """Tagged hashing: 1 vs "1" vs 1.0 vs True all digest apart."""
        variants = [1, "1", 1.0, True, (1,), b"1", None]
        digests = {serialize.stable_digest(v) for v in variants}
        assert len(digests) == len(variants)

    def test_fingerprint_sensitivity(self):
        from repro.frameworks.catalog import framework_build_fingerprint

        by_framework = {
            framework_build_fingerprint(name, TEST_SCALE)
            for name in ("pytorch", "tensorflow", "vllm", "transformers")
        }
        assert len(by_framework) == 4
        assert framework_build_fingerprint(
            "pytorch", TEST_SCALE
        ) != framework_build_fingerprint("pytorch", TEST_SCALE * 2)
        assert framework_build_fingerprint(
            "pytorch", TEST_SCALE, archs=(70, 75)
        ) != framework_build_fingerprint("pytorch", TEST_SCALE)

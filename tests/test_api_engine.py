"""Tests for the `repro.api` facade: engine lifecycle, typed requests,
federated multi-framework serving, traffic-driven eviction, deprecation
shims, and the persisted kernel-index tier."""

from __future__ import annotations

import time

import pytest

from repro.api import (
    AdmitRequest,
    DebloatEngine,
    DebloatRequest,
    EngineConfig,
    EvictRequest,
    EvictionPolicy,
    InspectRequest,
)
from repro.core.debloat import Debloater, DebloatOptions
from repro.errors import ConfigurationError, UsageError
from repro.frameworks.catalog import framework_build_fingerprint, get_framework
from repro.serving.store import DebloatStore
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE, build_small_library

OPTS = DebloatOptions(runtime_comparison_top_n=0)

PT_IDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
]
TF_ID = "tensorflow/train/mobilenetv2"


def pt_specs():
    return [workload_by_id(wid) for wid in PT_IDS]


def fed_config(**kwargs) -> EngineConfig:
    defaults = dict(scale=TEST_SCALE, options=OPTS, use_cache=False)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def assert_same_libraries(a: dict, b: dict) -> None:
    assert sorted(a) == sorted(b)
    for soname, d in a.items():
        other = b[soname]
        assert d.lib.data == other.lib.data, soname
        assert d.removed_cpu_ranges == other.removed_cpu_ranges, soname
        assert d.removed_gpu_ranges == other.removed_gpu_ranges, soname


class TestLifecycle:
    def test_requests_require_open(self):
        engine = DebloatEngine(fed_config())
        with pytest.raises(UsageError):
            engine.debloat(DebloatRequest(workload_id=PT_IDS[0]))
        with pytest.raises(UsageError):
            engine.federation

    def test_context_manager_opens_and_closes(self):
        with DebloatEngine(fed_config()) as engine:
            assert not engine.closed
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
        assert engine.closed
        with pytest.raises(UsageError):
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))

    def test_closed_engine_cannot_reopen(self):
        engine = DebloatEngine(fed_config()).open()
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(UsageError):
            engine.open()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(scale=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(workers=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(batch_max=0)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            EvictionPolicy(mode="fifo")
        with pytest.raises(ConfigurationError):
            EvictionPolicy(mode="ttl")
        with pytest.raises(ConfigurationError):
            EvictionPolicy(mode="lru")
        with pytest.raises(ConfigurationError):
            EvictionPolicy(mode="ttl", ttl_s=1.0, sweep_interval_s=0)
        with pytest.raises(ConfigurationError):
            # A sweeper under mode "none" could never evict anything.
            EvictionPolicy(sweep_interval_s=60.0)

    def test_request_validation(self):
        with pytest.raises(UsageError):
            DebloatRequest().resolve_spec()
        with pytest.raises(UsageError):
            AdmitRequest(
                spec=pt_specs()[0], workload_id=PT_IDS[0]
            ).resolve_spec()

    def test_result_accessors_check_kind(self):
        with DebloatEngine(fed_config()) as engine:
            result = engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
        assert result.admission.workload_id == PT_IDS[0]
        with pytest.raises(UsageError):
            result.report


class TestDebloatThroughEngine:
    def test_matches_pipeline_report_and_provenance(self, monkeypatch):
        from repro.experiments import common as excommon

        monkeypatch.setattr(
            excommon, "PIPELINE_CACHE", excommon.PipelineCache(enabled=True)
        )
        spec = workload_by_id(PT_IDS[1])
        with DebloatEngine(EngineConfig(scale=TEST_SCALE)) as engine:
            first = engine.debloat(DebloatRequest(spec=spec))
            again = engine.debloat(DebloatRequest(spec=spec))
            assert first.cache_source in ("computed", "disk")
            assert again.cache_source == "memory"
            assert again.report is first.report
            assert again.wall_s >= 0
            assert first.fingerprint == framework_build_fingerprint(
                "pytorch", TEST_SCALE
            )
            # The experiments' helper is a thin adapter over the same
            # engine-backed cache path.
            assert excommon.pipeline_report(spec, TEST_SCALE) is first.report

    def test_uncached_engine_computes_identical_report(self):
        from repro.core.serialize import reports_equal
        from repro.experiments import common as excommon

        spec = workload_by_id(PT_IDS[1])
        with DebloatEngine(
            EngineConfig(scale=TEST_SCALE, use_cache=False)
        ) as engine:
            result = engine.debloat(DebloatRequest(spec=spec))
        assert result.cache_source == "computed"
        assert reports_equal(
            result.report, excommon.pipeline_report(spec, TEST_SCALE)
        )


class TestDeprecationShims:
    def test_report_for_warns_and_is_byte_identical(self, monkeypatch):
        from repro.experiments import common as excommon

        monkeypatch.setattr(
            excommon, "PIPELINE_CACHE", excommon.PipelineCache(enabled=True)
        )
        spec = workload_by_id(PT_IDS[1])
        direct = excommon.pipeline_report(spec, TEST_SCALE)
        with pytest.warns(DeprecationWarning, match="report_for"):
            shimmed = excommon.report_for(spec, TEST_SCALE)
        assert shimmed is direct

    def test_debloat_many_warns_and_matches_store(self, pytorch):
        debloater = Debloater(pytorch, OPTS)
        with pytest.warns(DeprecationWarning, match="debloat_many"):
            report = debloater.debloat_many(pt_specs())

        store = DebloatStore(pytorch, OPTS)
        for spec in pt_specs():
            store.admit(spec)
        expected = store.report()
        assert report.workload_ids == expected.workload_ids
        assert report.marginal_new_kernels == expected.marginal_new_kernels
        assert report.libraries == expected.libraries
        assert len(report.verifications) == len(expected.verifications)
        for got, want in zip(report.verifications, expected.verifications):
            assert got.ok == want.ok
            assert got.debloated_digest == want.debloated_digest
        assert_same_libraries(
            debloater.debloated_libraries, store.debloated_libraries()
        )


class TestFederationRouting:
    def test_admissions_route_by_framework(self, pytorch, tensorflow):
        with DebloatEngine(fed_config()) as engine:
            for wid in (PT_IDS[0], TF_ID, PT_IDS[1]):
                result = engine.admit(AdmitRequest(workload_id=wid))
                assert result.framework == wid.split("/")[0]
            snapshot = engine.snapshot()
        assert snapshot.frameworks == ("pytorch", "tensorflow")
        assert snapshot.shards["pytorch"].store.workload_ids == (
            PT_IDS[0], PT_IDS[1],
        )
        assert snapshot.shards["tensorflow"].store.workload_ids == (TF_ID,)
        assert snapshot.workload_count == 3
        assert snapshot.shards["pytorch"].fingerprint == (
            framework_build_fingerprint("pytorch", TEST_SCALE)
        )

    def test_shard_state_matches_standalone_store(self, pytorch):
        with DebloatEngine(fed_config()) as engine:
            for spec in pt_specs():
                engine.admit(AdmitRequest(spec=spec))
            shard = engine.federation.shard("pytorch")
            report = engine.report("pytorch")
        standalone = DebloatStore(pytorch, OPTS)
        for spec in pt_specs():
            standalone.admit(spec)
        assert_same_libraries(
            shard.store.debloated_libraries(),
            standalone.debloated_libraries(),
        )
        assert report.union_report.workload_ids == PT_IDS
        assert report.generation == standalone.generation

    def test_report_for_unknown_shard_raises(self):
        with DebloatEngine(fed_config()) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            with pytest.raises(UsageError):
                engine.report("tensorflow")

    def test_admit_many_preserves_order_across_shards(self, pytorch, tensorflow):
        specs = [
            workload_by_id(PT_IDS[0]),
            workload_by_id(TF_ID),
            workload_by_id(PT_IDS[1]),
        ]
        with DebloatEngine(fed_config()) as engine:
            results = engine.federation.admit_many(specs)
        assert [r.workload_id for r in results] == [
            PT_IDS[0], TF_ID, PT_IDS[1],
        ]

    def test_server_fronts_the_federation(self, pytorch, tensorflow):
        with DebloatEngine(fed_config(workers=2)) as engine:
            server = engine.server()
            tickets = [
                server.submit(workload_by_id(wid))
                for wid in (PT_IDS[0], TF_ID)
            ]
            results = [t.result(60) for t in tickets]
            assert [r.workload_id for r in results] == [PT_IDS[0], TF_ID]
            stats = engine.stats()
        assert stats["served"] == 2
        assert stats["shards"] == 2

    def test_engine_cache_override_reaches_serving(self, monkeypatch):
        """An injected cache serves the WHOLE engine - admissions and
        kernel indexes included - never the process-wide one."""
        from repro.experiments import common as excommon

        global_cache = excommon.PipelineCache(enabled=True)
        monkeypatch.setattr(excommon, "PIPELINE_CACHE", global_cache)
        private = excommon.PipelineCache(enabled=True)
        with DebloatEngine(
            EngineConfig(scale=TEST_SCALE), cache=private
        ) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
        assert private.stats()["value_entries"] >= 1
        assert global_cache.stats()["value_entries"] == 0
        assert global_cache.stats()["misses"] == 0

    def test_ensure_shard_fingerprint_reflects_actual_build(self):
        """A hosted non-default build is fingerprinted by ITS generation
        key, not by the engine config's archs."""
        ablation = get_framework("pytorch", scale=TEST_SCALE, archs=(75,))
        with DebloatEngine(fed_config()) as engine:
            shard = engine.federation.ensure_shard(ablation)
        assert shard.fingerprint == framework_build_fingerprint(
            "pytorch", TEST_SCALE, (75,)
        )

    def test_conflicting_shard_instance_rejected(self, pytorch):
        other = get_framework("pytorch", scale=TEST_SCALE, archs=(75,))
        with DebloatEngine(fed_config()) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            with pytest.raises(UsageError):
                engine.federation.ensure_shard(other)


class TestEvictionPolicy:
    def test_ttl_evicts_idle_but_not_pinned(self, pytorch):
        clock = FakeClock()
        config = fed_config(
            eviction=EvictionPolicy(mode="ttl", ttl_s=10.0)
        )
        with DebloatEngine(config, clock=clock) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            clock.now = 5.0
            engine.admit(AdmitRequest(workload_id=PT_IDS[1], pinned=True))
            clock.now = 8.0
            assert engine.sweep().swept == []  # nothing idle past TTL yet
            clock.now = 12.0
            swept = engine.sweep().swept
            assert [(s.workload_id, s.reason) for s in swept] == [
                (PT_IDS[0], "ttl")
            ]
            assert swept[0].idle_s == pytest.approx(12.0)
            clock.now = 100.0
            assert engine.sweep().swept == []  # pinned survives forever
            remaining = engine.snapshot().shards["pytorch"].store
        assert remaining.workload_ids == (PT_IDS[1],)

    def test_read_traffic_touch_refreshes_ttl(self, pytorch):
        clock = FakeClock()
        config = fed_config(
            eviction=EvictionPolicy(mode="ttl", ttl_s=10.0)
        )
        with DebloatEngine(config, clock=clock) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            clock.now = 8.0
            assert engine.touch(PT_IDS[0]) == 1
            assert engine.touch("pytorch/never/admitted") == 0
            clock.now = 12.0
            assert engine.sweep().swept == []  # read traffic kept it warm
            clock.now = 20.0
            assert [s.workload_id for s in engine.sweep().swept] == [
                PT_IDS[0]
            ]

    def test_traffic_refreshes_ttl(self, pytorch):
        clock = FakeClock()
        config = fed_config(
            eviction=EvictionPolicy(mode="ttl", ttl_s=10.0)
        )
        with DebloatEngine(config, clock=clock) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            clock.now = 8.0
            # A duplicate re-admission is request traffic: it refreshes
            # the last-served stamp without any workload run.
            dup = engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            assert dup.admission.duplicate
            clock.now = 12.0
            assert engine.sweep().swept == []
            clock.now = 20.0
            assert [s.workload_id for s in engine.sweep().swept] == [
                PT_IDS[0]
            ]

    def test_lru_caps_per_shard(self, pytorch):
        clock = FakeClock()
        config = fed_config(
            eviction=EvictionPolicy(mode="lru", max_workloads=2)
        )
        with DebloatEngine(config, clock=clock) as engine:
            for i, wid in enumerate(PT_IDS):
                clock.now = float(i)
                engine.admit(AdmitRequest(workload_id=wid))
            clock.now = 10.0
            swept = engine.sweep().swept
            assert [(s.workload_id, s.reason) for s in swept] == [
                (PT_IDS[0], "lru")
            ]
            store = engine.snapshot().shards["pytorch"].store
        assert store.workload_ids == (PT_IDS[1], PT_IDS[2])

    def test_pinned_mode_keeps_only_pins(self, pytorch):
        config = fed_config(eviction=EvictionPolicy(mode="pinned"))
        with DebloatEngine(config) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0], pinned=True))
            engine.admit(AdmitRequest(workload_id=PT_IDS[1]))
            swept = engine.sweep().swept
            assert [(s.workload_id, s.reason) for s in swept] == [
                (PT_IDS[1], "unpinned")
            ]
            store = engine.snapshot().shards["pytorch"].store
        assert store.workload_ids == (PT_IDS[0],)

    def test_eviction_rebuilds_only_shrunk_shards(self, pytorch, tensorflow):
        """A sweep recompacts only libraries whose union shrank, leaves
        untouched libraries' objects identical, and never touches the
        other framework's shard."""
        clock = FakeClock()
        config = fed_config(
            eviction=EvictionPolicy(mode="ttl", ttl_s=10.0)
        )
        with DebloatEngine(config, clock=clock) as engine:
            engine.admit(AdmitRequest(workload_id=TF_ID, pinned=True))
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            clock.now = 5.0
            engine.admit(AdmitRequest(workload_id=PT_IDS[1], pinned=True))
            before_pt = dict(
                engine.snapshot().shards["pytorch"].store.libraries
            )
            tf_generation = engine.snapshot().shards["tensorflow"].store.generation
            clock.now = 12.0
            swept = engine.sweep().swept
            assert [s.workload_id for s in swept] == [PT_IDS[0]]
            result = swept[0].result
            after = engine.snapshot().shards["pytorch"].store
            # Only shrunk libraries were rebuilt; everything else is the
            # same object as before the sweep.
            untouched = (
                set(after.libraries)
                - set(result.recompacted)
                - set(result.dropped_libraries)
            )
            assert untouched
            for soname in untouched:
                assert after.libraries[soname] is before_pt[soname], soname
            assert engine.snapshot().shards["tensorflow"].store.generation == (
                tf_generation
            )
        # The swept shard now equals a store that never saw the evicted
        # workload.
        fresh = DebloatStore(pytorch, OPTS)
        fresh.admit(workload_by_id(PT_IDS[1]))
        assert_same_libraries(dict(after.libraries), fresh.debloated_libraries())

    def test_explicit_evict_across_shards(self, pytorch, tensorflow):
        with DebloatEngine(fed_config()) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            engine.admit(AdmitRequest(workload_id=TF_ID))
            result = engine.evict(EvictRequest(workload_id=PT_IDS[0]))
            assert list(result.evictions) == ["pytorch"]
            with pytest.raises(UsageError):
                engine.evict(EvictRequest(workload_id=PT_IDS[0]))

    def test_background_sweeper_evicts(self, pytorch):
        config = fed_config(
            eviction=EvictionPolicy(
                mode="ttl", ttl_s=0.0, sweep_interval_s=0.02
            )
        )
        with DebloatEngine(config) as engine:
            server = engine.server()
            server.admit(workload_by_id(PT_IDS[0]), timeout=60)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not engine.snapshot().shards["pytorch"].store.workload_ids:
                    break
                time.sleep(0.01)
            store = engine.snapshot().shards["pytorch"].store
            stats = server.stats()
        assert store.workload_ids == ()
        assert stats["sweeps_evicted"] >= 1

    def test_sweeper_needs_sweepable_target(self, pytorch):
        from repro.serving.server import DebloatServer

        with pytest.raises(UsageError):
            DebloatServer(
                DebloatStore(pytorch, OPTS), sweep_interval_s=0.1
            )


class TestInspectThroughEngine:
    def test_text_matches_legacy_rendering(self, pytorch):
        from repro.tools.inspect import (
            describe_library,
            kernel_listing,
            readelf_sections,
        )

        lib = pytorch.libraries["libtorch_cuda.so"]
        with DebloatEngine(EngineConfig(scale=TEST_SCALE)) as engine:
            result = engine.inspect(InspectRequest(
                framework="pytorch", soname="libtorch_cuda.so",
                sections=True, kernels=True,
            ))
        expected = "\n\n".join([
            describe_library(lib),
            readelf_sections(lib),
            kernel_listing(lib),
        ])
        assert result.text == expected
        assert result.cache_source in ("memory", "disk", "computed")

    def test_unknown_library_raises_with_listing(self):
        with DebloatEngine(EngineConfig(scale=TEST_SCALE)) as engine:
            with pytest.raises(UsageError) as exc_info:
                engine.inspect(
                    InspectRequest(framework="pytorch", soname="nope.so")
                )
        assert "libtorch_cuda.so" in exc_info.value.available


class TestPersistedKernelIndex:
    def test_disk_round_trip_skips_the_fatbin_walk(self, monkeypatch):
        from repro.core import kindex
        from repro.core.serialize import payload_equal
        from repro.experiments.common import PipelineCache

        cache = PipelineCache(enabled=True)
        lib_a = build_small_library()
        index_a, source_a = cache.library_index(lib_a, "pytorch", TEST_SCALE)
        assert source_a == "computed"
        assert cache.library_index(lib_a, "pytorch", TEST_SCALE)[1] == "memory"

        # A fresh instance (a "new process") must load from disk without
        # ever walking the fatbin or hashing a kernel name.
        lib_b = build_small_library()

        def boom(lib):
            raise AssertionError("fatbin walk on a warm index cache")

        monkeypatch.setattr(kindex, "build_index", boom)
        index_b, source_b = cache.library_index(lib_b, "pytorch", TEST_SCALE)
        assert source_b == "disk"
        assert payload_equal(
            kindex.index_to_payload(index_a), kindex.index_to_payload(index_b)
        )
        assert index_b.name_to_id == index_a.name_to_id

    def test_loaded_index_locates_identically(self):
        from repro.core import kindex
        from repro.core.locate import KernelLocator
        from repro.experiments.common import PipelineCache

        cache = PipelineCache(enabled=True)
        lib_a = build_small_library()
        index_a, _ = cache.library_index(lib_a, "pytorch", TEST_SCALE)
        lib_b = build_small_library()
        index_b, source = cache.library_index(lib_b, "pytorch", TEST_SCALE)
        assert source == "disk"
        used = frozenset({"k_0_0", "k_1_1"})
        locator = KernelLocator()
        full = locator.locate(lib_a, used, 75, index=index_a)
        warm = locator.locate(lib_b, used, 75, index=index_b)
        assert full.decisions == warm.decisions
        assert full.retain_ranges == warm.retain_ranges
        assert full.remove_ranges == warm.remove_ranges

    def test_corrupted_entry_recomputes_and_overwrites(self):
        from repro.experiments.common import PipelineCache

        cache = PipelineCache(enabled=True)
        lib_a = build_small_library()
        cache.library_index(lib_a, "pytorch", TEST_SCALE)
        entries = [
            p for p in cache.disk.entries() if "kindex_" in p.name
        ]
        assert len(entries) == 1
        entries[0].write_bytes(b"garbage" * 10)

        lib_b = build_small_library()
        index, source = cache.library_index(lib_b, "pytorch", TEST_SCALE)
        assert source == "computed"
        assert cache.disk.errors >= 1
        # The recompute overwrote the damaged entry: a third instance
        # loads clean.
        lib_c = build_small_library()
        assert cache.library_index(lib_c, "pytorch", TEST_SCALE)[1] == "disk"

    def test_cross_wired_entry_is_rejected(self):
        """An entry that decodes but does not match the library's parsed
        fatbin (same soname, different build) recomputes."""
        from repro.experiments.common import PipelineCache

        cache = PipelineCache(enabled=True)
        small = build_small_library()
        cache.library_index(small, "pytorch", TEST_SCALE)
        bigger = build_small_library(cubins_per_arch=3)  # same soname
        index, source = cache.library_index(bigger, "pytorch", TEST_SCALE)
        assert source == "computed"
        assert index.n == bigger.fatbin.element_count()

    def test_store_routes_indexes_through_the_persisted_tier(self, monkeypatch):
        from repro.experiments import common as excommon

        monkeypatch.setattr(
            excommon, "PIPELINE_CACHE", excommon.PipelineCache(enabled=True)
        )
        fw = get_framework("pytorch", scale=TEST_SCALE)
        store = DebloatStore(fw, use_cache=True)
        store.admit(workload_by_id(PT_IDS[0]))
        kindex_entries = [
            p
            for p in excommon.PIPELINE_CACHE.disk.entries()
            if p.name.startswith("pytorch--kindex_")
        ]
        assert kindex_entries  # every located GPU library persisted

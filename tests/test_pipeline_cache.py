"""Cross-experiment pipeline cache: keying, invalidation, byte-identity."""

from __future__ import annotations

import pytest

from repro.core.debloat import DebloatOptions
from repro.experiments.common import (
    PIPELINE_CACHE,
    PipelineCache,
    clear_report_cache,
    report_for,
)
from repro.experiments.registry import run_experiment
from repro.workloads.spec import workload_by_id

from tests.conftest import TEST_SCALE

SPEC_ID = "pytorch/inference/mobilenetv2"


@pytest.fixture()
def cache():
    """A fresh, enabled cache wired in place of the process-wide one.

    Both tiers are pinned on so the assertions hold regardless of the
    ``REPRO_PIPELINE_CACHE`` / ``REPRO_PIPELINE_DISK_CACHE`` environment
    the suite itself runs under.
    """
    from repro.experiments.diskcache import DiskReportCache

    fresh = PipelineCache(enabled=True, disk=DiskReportCache(enabled=True))
    import repro.experiments.common as common

    old = common.PIPELINE_CACHE
    common.PIPELINE_CACHE = fresh
    try:
        yield fresh
    finally:
        common.PIPELINE_CACHE = old


class TestCacheBehaviour:
    def test_hit_returns_same_object(self, cache):
        spec = workload_by_id(SPEC_ID)
        a = report_for(spec, TEST_SCALE)
        b = report_for(spec, TEST_SCALE)
        assert a is b
        assert cache.stats() == {
            "entries": 1,
            "value_entries": 0,
            "hits": 1,
            "misses": 1,
            # The miss also consulted and then populated the disk tier.
            "disk_entries": 1,
            "disk_hits": 0,
            "disk_misses": 1,
            "disk_errors": 0,
            "disk_quarantined": 0,
        }

    def test_scale_is_part_of_the_key(self, cache):
        spec = workload_by_id(SPEC_ID)
        a = report_for(spec, TEST_SCALE)
        b = report_for(spec, TEST_SCALE * 2)
        assert a is not b
        assert len(cache) == 2

    def test_options_are_part_of_the_key(self, cache):
        spec = workload_by_id(SPEC_ID)
        default = report_for(spec, TEST_SCALE)
        ablated = report_for(
            spec,
            TEST_SCALE,
            DebloatOptions(debloat_cpu=False, runtime_comparison_top_n=0),
        )
        assert default is not ablated
        # Equal-valued options objects share an entry.
        again = report_for(
            spec,
            TEST_SCALE,
            DebloatOptions(debloat_cpu=False, runtime_comparison_top_n=0),
        )
        assert ablated is again

    def test_locate_workers_not_part_of_the_key(self, cache):
        """Fan-out is a tuning knob with deterministic output: runs with
        different worker counts must share one cache entry."""
        spec = workload_by_id(SPEC_ID)
        a = report_for(spec, TEST_SCALE)
        b = report_for(spec, TEST_SCALE, DebloatOptions(locate_workers=8))
        assert a is b
        assert len(cache) == 1

    def test_locate_workers_mode_not_part_of_the_key(self, cache):
        """Thread vs process sharding is byte-identical by contract, so
        both modes must share one cache entry (and one disk digest)."""
        spec = workload_by_id(SPEC_ID)
        a = report_for(spec, TEST_SCALE)
        b = report_for(
            spec,
            TEST_SCALE,
            DebloatOptions(locate_workers=4, locate_workers_mode="process"),
        )
        assert a is b
        assert len(cache) == 1

    def test_none_options_equal_default_options(self, cache):
        spec = workload_by_id(SPEC_ID)
        assert report_for(spec, TEST_SCALE) is report_for(
            spec, TEST_SCALE, DebloatOptions()
        )

    def test_invalidate_filters(self, cache):
        spec = workload_by_id(SPEC_ID)
        other = workload_by_id("tensorflow/train/mobilenetv2")
        report_for(spec, TEST_SCALE)
        report_for(other, TEST_SCALE)
        assert len(cache) == 2
        # Each eviction drops one in-memory entry AND its disk file.
        assert cache.invalidate(framework="tensorflow") == 2
        assert len(cache) == 1
        assert cache.invalidate(workload_id=SPEC_ID, scale=TEST_SCALE) == 2
        assert len(cache) == 0
        assert len(cache.disk) == 0

    def test_invalidate_forces_recompute(self, cache):
        spec = workload_by_id(SPEC_ID)
        a = report_for(spec, TEST_SCALE)
        assert cache.invalidate() == 2  # memory entry + disk file
        b = report_for(spec, TEST_SCALE)
        assert a is not b

    def test_clear_report_cache_alias(self):
        spec = workload_by_id(SPEC_ID)
        report_for(spec, TEST_SCALE)
        clear_report_cache()
        assert len(PIPELINE_CACHE) == 0

    def test_disabled_cache_stores_nothing(self, cache):
        cache.configure(enabled=False)
        spec = workload_by_id(SPEC_ID)
        a = report_for(spec, TEST_SCALE)
        b = report_for(spec, TEST_SCALE)
        assert a is not b
        assert len(cache) == 0
        assert len(cache.disk) == 0  # disabling tier 0 bypasses tier 1 too


class TestCacheTransparency:
    def test_experiment_output_byte_identical_cache_on_vs_off(self, cache):
        """Acceptance: renderings must not depend on the cache at all."""
        cache.configure(enabled=True)
        with_cache = run_experiment("table4", scale=TEST_SCALE)
        assert cache.stats()["entries"] > 0

        cache.configure(enabled=False)
        without_cache = run_experiment("table4", scale=TEST_SCALE)
        assert with_cache == without_cache

    def test_fresh_flag_invalidates(self, cache):
        spec = workload_by_id(SPEC_ID)
        report_for(spec, TEST_SCALE)
        entries = len(cache)
        assert entries == 1
        run_experiment("table4", scale=TEST_SCALE, fresh=True)
        # the earlier entry was dropped; table4's own pipelines repopulated
        assert cache.stats()["entries"] >= 1

"""Engine-level durability and remote-shard liveness tests.

Recovery's contract is byte-identity: after ``close()`` (or a crash) and
a fresh ``open()``, the recovered store's ``export_state()`` bytes equal
the committed pre-crash state, with **zero** workload runs - replay goes
through the warm pipeline cache exactly like the snapshot import path.
The liveness half covers the per-op deadline, the supervisor circuit
breaker, and heartbeat probes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import pytest

from repro.api import AdmitRequest, DebloatEngine, EngineConfig, EvictRequest
from repro.api.config import DurabilityConfig, LivenessConfig
from repro.core import serialize
from repro.core.debloat import DebloatOptions
from repro.errors import (
    ConfigurationError,
    RemoteShardError,
    UsageError,
)
from repro.serving.remote import RemoteShardSupervisor
from repro.testing import faults
from repro.workloads import runner as runner_mod

from tests.conftest import TEST_SCALE

OPTS = DebloatOptions(runtime_comparison_top_n=0)
PT_IDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
]
TF_ID = "tensorflow/train/mobilenetv2"


def durable_config(tmp_path, **kwargs) -> EngineConfig:
    defaults = dict(
        scale=TEST_SCALE,
        options=OPTS,
        use_cache=True,
        durability=DurabilityConfig(
            enabled=True, directory=str(tmp_path / "durability"), fsync="off"
        ),
    )
    defaults.update(kwargs)
    return EngineConfig(**defaults)


def export_bytes(engine: DebloatEngine) -> dict[str, bytes]:
    return {
        shard.store.framework.name: serialize.payload_dumps(
            shard.store.export_state()
        )
        for shard in engine.federation.local_shards()
    }


@contextmanager
def forbid_workload_runs():
    """Fail the test if recovery runs a workload instead of the cache."""

    def _boom(self, *args, **kwargs):
        raise AssertionError("WorkloadRunner.run called during recovery")

    original = runner_mod.WorkloadRunner.run
    runner_mod.WorkloadRunner.run = _boom
    try:
        yield
    finally:
        runner_mod.WorkloadRunner.run = original


# -- recovery -----------------------------------------------------------------


class TestRecovery:
    def test_replay_is_byte_identical_with_zero_runs(self, tmp_path):
        cfg = durable_config(tmp_path)
        with DebloatEngine(cfg) as engine:
            for wid in (*PT_IDS[:2], TF_ID):
                engine.admit(AdmitRequest(workload_id=wid))
            committed = export_bytes(engine)

        with forbid_workload_runs():
            with DebloatEngine(cfg) as engine:
                report = engine.recovery
                assert report is not None
                assert report["replayed"] == 3
                assert not report["snapshot_loaded"]
                assert export_bytes(engine) == committed
                assert engine.stats()["wal_replayed"] == 3

    def test_evict_and_readmit_replay(self, tmp_path):
        cfg = durable_config(tmp_path)
        with DebloatEngine(cfg) as engine:
            for wid in PT_IDS[:2]:
                engine.admit(AdmitRequest(workload_id=wid))
            engine.evict(EvictRequest(workload_id=PT_IDS[0]))
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            committed = export_bytes(engine)

        with forbid_workload_runs():
            with DebloatEngine(cfg) as engine:
                assert engine.recovery["replayed"] == 4
                assert export_bytes(engine) == committed

    def test_checkpoint_truncates_then_recovers_from_snapshot(
        self, tmp_path
    ):
        cfg = durable_config(tmp_path)
        with DebloatEngine(cfg) as engine:
            for wid in PT_IDS[:2]:
                engine.admit(AdmitRequest(workload_id=wid))
            result = engine.checkpoint()
            assert result.value["truncated"] == 2
            assert engine.stats()["wal_lag"] == 0
            # Post-checkpoint traffic lands in the (now short) WAL.
            engine.admit(AdmitRequest(workload_id=TF_ID))
            committed = export_bytes(engine)

        with forbid_workload_runs():
            with DebloatEngine(cfg) as engine:
                report = engine.recovery
                assert report["snapshot_loaded"]
                # Only the post-checkpoint admission replays.
                assert report["replayed"] == 1
                assert export_bytes(engine) == committed

    def test_kill_between_export_and_truncate_is_harmless(self, tmp_path):
        """The checkpoint crash window: snapshot written, WAL untouched.

        Recovery must load the snapshot and *skip* the already-folded
        records by watermark - replaying them would double-admit.
        """
        cfg = durable_config(tmp_path)
        with DebloatEngine(cfg) as engine:
            for wid in PT_IDS[:2]:
                engine.admit(AdmitRequest(workload_id=wid))
            plan = faults.FaultPlan(
                (faults.FaultRule("checkpoint.truncate", ordinals=(1,)),),
                seed=7,
            )
            with faults.fault_plan(plan):
                with pytest.raises(faults.FaultError):
                    engine.checkpoint()
            assert engine.stats()["checkpoints_failed"] == 1
            committed = export_bytes(engine)

        with forbid_workload_runs():
            with DebloatEngine(cfg) as engine:
                report = engine.recovery
                assert report["snapshot_loaded"]
                assert report["replayed"] == 0  # watermark skips them
                assert export_bytes(engine) == committed

    def test_wal_append_fault_never_undoes_commit(self, tmp_path):
        cfg = durable_config(tmp_path)
        with DebloatEngine(cfg) as engine:
            plan = faults.FaultPlan(
                (faults.FaultRule("wal.append", ordinals=(2,)),), seed=7
            )
            with faults.fault_plan(plan):
                for wid in PT_IDS[:2]:
                    engine.admit(AdmitRequest(workload_id=wid))
            stats = engine.stats()
            assert stats["wal_failures"] == 1
            # The admission itself still stands in-memory...
            assert engine.snapshot().workload_count == 2
            # ...but durable state = what the log recorded: one admission.
            assert stats["wal_appended"] == 1

        with forbid_workload_runs():
            with DebloatEngine(cfg) as engine:
                assert engine.recovery["replayed"] == 1
                snapshot = engine.snapshot()
                assert snapshot.workload_count == 1

    def test_torn_wal_tail_quarantined_on_recovery(self, tmp_path):
        cfg = durable_config(tmp_path)
        with DebloatEngine(cfg) as engine:
            for wid in PT_IDS[:2]:
                engine.admit(AdmitRequest(workload_id=wid))
            committed = export_bytes(engine)
        wal_path = tmp_path / "durability" / "wal" / "pytorch.wal"
        with open(wal_path, "ab") as fh:
            fh.write(b"\x99\x00\x00\x00torn-mid-append")

        with forbid_workload_runs():
            with DebloatEngine(cfg) as engine:
                assert engine.recovery["replayed"] == 2
                assert engine.stats()["wal_quarantined_bytes"] > 0
                assert export_bytes(engine) == committed

    def test_periodic_checkpointer_fires(self, tmp_path):
        cfg = durable_config(
            tmp_path,
            durability=DurabilityConfig(
                enabled=True,
                directory=str(tmp_path / "durability"),
                fsync="off",
                checkpoint_interval_s=0.05,
            ),
        )
        with DebloatEngine(cfg) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if engine.stats()["checkpoints_run"] >= 1:
                    break
                time.sleep(0.01)
            assert engine.stats()["checkpoints_run"] >= 1
            assert engine.stats()["wal_lag"] == 0

    def test_health_and_stats_expose_durability(self, tmp_path):
        cfg = durable_config(tmp_path)
        with DebloatEngine(cfg) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            health = engine.health()
            assert health["durability"]["enabled"]
            assert health["durability"]["fsync"] == "off"
            stats = engine.stats()
            assert stats["wal_appended"] == 1
            assert stats["wal_lag"] == 1

    def test_checkpoint_requires_durability(self):
        cfg = EngineConfig(scale=TEST_SCALE, options=OPTS)
        with DebloatEngine(cfg) as engine:
            with pytest.raises(UsageError, match="durability"):
                engine.checkpoint()
            assert engine.recovery is None


# -- configuration ------------------------------------------------------------


class TestDurabilityConfig:
    def test_enabled_needs_a_directory(self):
        with pytest.raises(ConfigurationError, match="directory"):
            EngineConfig(durability=DurabilityConfig(enabled=True))

    def test_snapshot_dir_is_an_acceptable_root(self, tmp_path):
        cfg = EngineConfig(
            snapshot_dir=str(tmp_path),
            durability=DurabilityConfig(enabled=True),
        )
        assert cfg.durability.directory is None  # resolved at open()

    def test_bad_fsync_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="fsync"):
            DurabilityConfig(fsync="sometimes")

    def test_bad_liveness_values_rejected(self):
        with pytest.raises(ConfigurationError):
            LivenessConfig(op_deadline_s=0)
        with pytest.raises(ConfigurationError):
            LivenessConfig(breaker_threshold=0)
        with pytest.raises(ConfigurationError):
            LivenessConfig(heartbeat_interval_s=-1)


# -- remote-shard liveness ----------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class _DeadProc:
    """Stands in for a worker whose transport is poisoned."""

    alive = False
    broken = True

    def call(self, op, _deadline_s=None, **args):
        raise RemoteShardError("shard-0", "injected transport failure")


class TestCircuitBreaker:
    def _supervisor(self, clock) -> RemoteShardSupervisor:
        sup = RemoteShardSupervisor(
            "shard-0",
            {"scale": TEST_SCALE, "archs": []},
            breaker_threshold=2,
            breaker_cooldown_s=5.0,
            clock=clock,
        )
        sup._proc = _DeadProc()  # pre-poisoned; process() would respawn
        sup.process = lambda: sup._proc  # keep the dead proc in place
        return sup

    def test_opens_after_threshold_and_fast_fails(self):
        clock = FakeClock()
        sup = self._supervisor(clock)
        for _ in range(2):
            with pytest.raises(RemoteShardError, match="transport"):
                sup.call("ping")
        assert sup.breaker_state == "open"
        assert sup.breaker_trips == 1
        # Fast-fail: the dead proc is never consulted again.
        with pytest.raises(RemoteShardError, match="breaker open"):
            sup.call("ping")

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        sup = self._supervisor(clock)
        for _ in range(2):
            with pytest.raises(RemoteShardError):
                sup.call("ping")
        clock.now = 6.0  # cooldown served -> next call probes
        with pytest.raises(RemoteShardError, match="transport"):
            sup.call("ping")
        assert sup.breaker_state == "open"
        assert sup.breaker_trips == 2

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        sup = self._supervisor(clock)
        for _ in range(2):
            with pytest.raises(RemoteShardError):
                sup.call("ping")
        clock.now = 6.0

        class _GoodProc:
            alive = True
            broken = False

            def call(self, op, _deadline_s=None, **args):
                return {"pid": 123}

        sup._proc = _GoodProc()
        assert sup.call("ping") == {"pid": 123}
        assert sup.breaker_state == "closed"

    def test_worker_side_errors_do_not_trip_breaker(self):
        clock = FakeClock()
        sup = self._supervisor(clock)

        class _HealthyButFailing:
            alive = True
            broken = False

            def call(self, op, _deadline_s=None, **args):
                raise RemoteShardError("shard-0", "worker-side transient")

        sup._proc = _HealthyButFailing()
        for _ in range(5):
            with pytest.raises(RemoteShardError):
                sup.call("ping")
        assert sup.breaker_state == "closed"
        assert sup.breaker_trips == 0


class TestHeartbeat:
    def test_idle_slot_never_spawns(self):
        sup = RemoteShardSupervisor(
            "shard-0", {"scale": TEST_SCALE, "archs": []}
        )
        assert sup.heartbeat() == {"state": "idle", "ok": True}
        assert sup._proc is None

    def test_failed_probe_counts_and_feeds_breaker(self):
        clock = FakeClock()
        sup = RemoteShardSupervisor(
            "shard-0",
            {"scale": TEST_SCALE, "archs": []},
            breaker_threshold=1,
            clock=clock,
        )
        sup._proc = _DeadProc()
        report = sup.heartbeat()
        assert report["state"] == "failed"
        assert sup.heartbeat_failures == 1
        assert sup.breaker_state == "open"

    def test_fault_site_remote_heartbeat(self):
        sup = RemoteShardSupervisor(
            "shard-0", {"scale": TEST_SCALE, "archs": []}
        )

        class _GoodProc:
            alive = True
            broken = False

            def call(self, op, _deadline_s=None, **args):
                return {"pid": 99}

        sup._proc = _GoodProc()
        plan = faults.FaultPlan(
            (faults.FaultRule("remote.heartbeat", ordinals=(1,)),), seed=7
        )
        with faults.fault_plan(plan):
            assert sup.heartbeat()["state"] == "failed"
            assert sup.heartbeat()["state"] == "ok"
        assert sup.heartbeats == 1
        assert sup.heartbeat_failures == 1


class TestRemoteLiveness:
    """End-to-end against real worker subprocesses (spawned lazily)."""

    def test_deadline_on_hung_worker(self, tmp_path):
        cfg = EngineConfig(
            scale=TEST_SCALE,
            options=OPTS,
            remote_shards=1,
            liveness=LivenessConfig(
                op_deadline_s=1.0, breaker_threshold=None
            ),
        )
        with DebloatEngine(cfg) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            pool = engine._remote_pool
            sup = next(iter(pool.supervisors.values()))
            pid = sup.pid
            assert pid is not None
            import os as _os

            _os.kill(pid, 19)  # SIGSTOP: hung, not dead
            try:
                with pytest.raises(RemoteShardError, match="deadline"):
                    sup.call("admitted", framework="pytorch")
            finally:
                _os.kill(pid, 18)  # SIGCONT before teardown

    def test_pool_heartbeat_thread_probes_workers(self, tmp_path):
        cfg = EngineConfig(
            scale=TEST_SCALE,
            options=OPTS,
            remote_shards=1,
            liveness=LivenessConfig(
                op_deadline_s=30.0, heartbeat_interval_s=0.05
            ),
        )
        with DebloatEngine(cfg) as engine:
            engine.admit(AdmitRequest(workload_id=PT_IDS[0]))
            sup = next(iter(engine._remote_pool.supervisors.values()))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if sup.heartbeats >= 2:
                    break
                time.sleep(0.01)
            assert sup.heartbeats >= 2
            health = engine.health()
            row = next(iter(health["remote"]["shards"].values()))
            assert row["breaker"] == "closed"
            assert row["heartbeats"] >= 2

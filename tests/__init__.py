"""Unit/integration test package (importable so ``tests.conftest`` is
unambiguous next to ``benchmarks.conftest``)."""

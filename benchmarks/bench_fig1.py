"""Benchmark: regenerate Figure 1 (CPU/GPU code share of top PyTorch libs)."""

from benchmarks.conftest import run_and_check


def test_fig1_code_distribution(benchmark):
    run_and_check(
        benchmark,
        "fig1",
        required_pass=("GPU code is the majority of every top library",),
        forbid_deviation=True,
    )

"""Benchmark: the §5 used-bloat analysis (future-work extension)."""

from benchmarks.conftest import run_and_check


def test_sec5_used_bloat(benchmark):
    run_and_check(
        benchmark,
        "sec5_used_bloat",
        required_pass=(
            "TensorFlow carries far more used bloat than PyTorch",
            "Startup-only code is a substantial share",
        ),
        forbid_deviation=True,
    )

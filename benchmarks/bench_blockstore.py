"""Micro-benchmark: content-addressed dedupe vs per-shard ownership.

Without the block layer every federation shard owns a private copy of its
committed payload bytes (compacted + original extents).  The shared
:class:`~repro.storage.blockstore.BlockStore` chunks those payloads into
offset-aligned content-addressed blocks, so byte-identical content -
across shards built from the same framework build, and between each
compacted library and its own original - is stored physically once.

This benchmark admits a mixed catalog into one federation and compares
**logical** bytes (the per-shard-ownership baseline: what the shards
would privately hold) against **physical** bytes (what the block store
actually occupies), asserts the physical-byte reduction floor on the
two-framework pair, proves byte-budget eviction evicts
cheapest-to-rebuild-per-byte-freed first, and round-trips a v2 (block
pooled) snapshot byte-identically.

``test_*`` functions run at the tiny test scale under plain pytest;
``python benchmarks/bench_blockstore.py`` regenerates
``BENCH_blockstore.json``, the recorded baseline (benchmark scale 0.125)
future PRs compare against.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_blockstore.json"

BENCH_SCALE = 0.125
TEST_SCALE = 0.02

#: The two-framework pair the reduction floor is asserted on: the
#: transformers shard rides on the same torch-family build as pytorch,
#: which is exactly the cross-shard duplication the paper reports.
PAIR_IDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
    "transformers/inference/llama2-7b",
]

#: The wider mixed catalog (adds tensorflow: a different build, so its
#: dedupe comes mostly from compacted-vs-original sharing).
MIXED_IDS = PAIR_IDS + [
    "tensorflow/train/mobilenetv2",
    "tensorflow/inference/mobilenetv2",
]

#: Floor for physical-byte reduction vs per-shard ownership on the pair.
REDUCTION_FLOOR = 0.30


def _federation(scale: float, policy=None):
    from repro.api import EngineConfig
    from repro.api.federation import StoreFederation
    from repro.core.debloat import DebloatOptions

    kwargs = {}
    if policy is not None:
        kwargs["eviction"] = policy
    return StoreFederation(
        EngineConfig(
            scale=scale,
            options=DebloatOptions(runtime_comparison_top_n=0),
            **kwargs,
        )
    )


def _admit_all(federation, workload_ids):
    from repro.workloads.spec import workload_by_id

    for wid in workload_ids:
        federation.admit(workload_by_id(wid))


def dedupe_measurement(scale: float, workload_ids) -> dict:
    """Admit ``workload_ids`` into one federation; report dedupe gauges."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-blk-") as root:
        os.environ["REPRO_PIPELINE_CACHE_DIR"] = os.path.join(root, "cache")
        federation = _federation(scale)
        start = time.perf_counter()
        _admit_all(federation, workload_ids)
        admit_s = time.perf_counter() - start
        stats = federation.blockstore.stats()
        federation.blockstore.validate_invariants()
        for name in federation.frameworks():
            federation.shard(name).store.validate_invariants()

        # Snapshot round-trip: the v2 block-pooled layout must reproduce
        # every shard image byte-exactly, and re-export byte-identical
        # files.
        from repro.core.serialize import payload_dumps
        from repro.serving import snapshot as snap

        payloads = {
            name: federation.shard(name).store.export_state()
            for name in federation.frameworks()
        }
        snapdir = os.path.join(root, "snapshot")
        manifest = snap.write_snapshot(snapdir, payloads)
        loaded = snap.load_snapshot(snapdir)
        for name, payload in payloads.items():
            assert payload_dumps(loaded[name]) == payload_dumps(payload), (
                f"snapshot round-trip diverged on {name}"
            )
        snap.write_snapshot(os.path.join(root, "reexport"), payloads)
        for entry in manifest["shards"]:
            a = Path(snapdir, entry["file"]).read_bytes()
            b = Path(root, "reexport", entry["file"]).read_bytes()
            assert a == b, f"re-export diverged on {entry['framework']}"
        pool_bytes = Path(snapdir, snap.BLOCKS_NAME).stat().st_size
        shard_file_bytes = sum(e["bytes"] for e in manifest["shards"])

    physical = stats["bytes_physical"]
    logical = stats["bytes_logical"]
    return {
        "scale": scale,
        "workloads": len(workload_ids),
        "frameworks": sorted({w.split("/")[0] for w in workload_ids}),
        "admit_s": round(admit_s, 3),
        "blocks_total": stats["blocks_total"],
        "bytes_logical": logical,
        "bytes_physical": physical,
        "dedupe_ratio": round(stats["dedupe_ratio"], 4),
        "physical_reduction": round(1.0 - physical / logical, 4),
        "snapshot_pool_bytes": pool_bytes,
        "snapshot_shard_bytes": shard_file_bytes,
    }


def eviction_order(scale: float) -> dict:
    """Byte-budget sweep must evict cheapest-rebuild-per-byte first."""
    from repro.api.config import EvictionPolicy

    with tempfile.TemporaryDirectory(prefix="repro-bench-blk-") as root:
        os.environ["REPRO_PIPELINE_CACHE_DIR"] = os.path.join(root, "cache")
        federation = _federation(
            scale, EvictionPolicy(mode="bytes", budget_bytes=1)
        )
        pt_ids = [w for w in PAIR_IDS if w.startswith("pytorch/")]
        _admit_all(federation, pt_ids)
        shard = federation.shard("pytorch")
        scores = {
            wid: shard.admit_cost_s[wid] / max(1, shard.admit_bytes[wid])
            for wid in pt_ids
        }
        swept = federation.sweep()
        federation.blockstore.validate_invariants()

    order = [s.workload_id for s in swept]
    expected = sorted(scores, key=lambda w: scores[w])
    assert order, "an over-budget federation must evict"
    assert order == expected, (
        f"sweep order {order} != cheapest-rebuild-per-byte {expected} "
        f"(scores {scores})"
    )
    assert all(s.reason == "bytes" for s in swept)
    return {
        "evicted": order,
        "scores": {w: round(s, 6) for w, s in scores.items()},
    }


# -- pytest checks (run in CI without --benchmark-only) ------------------------


def test_pair_reduction_meets_floor():
    """pytorch+transformers shards shed >=30% physical bytes via dedupe."""
    result = dedupe_measurement(TEST_SCALE, PAIR_IDS)
    print("\n" + json.dumps(result, indent=2))
    assert result["physical_reduction"] >= REDUCTION_FLOOR, (
        f"physical reduction {result['physical_reduction']:.1%} under the "
        f"{REDUCTION_FLOOR:.0%} floor"
    )


def test_mixed_catalog_dedupes():
    """The wider pytorch+tensorflow+transformers catalog still dedupes."""
    result = dedupe_measurement(TEST_SCALE, MIXED_IDS)
    print("\n" + json.dumps(result, indent=2))
    assert result["dedupe_ratio"] > 1.0


def test_eviction_prefers_cheap_rebuilds():
    """mode="bytes" evicts lowest rebuild-cost-per-byte-freed first."""
    result = eviction_order(TEST_SCALE)
    print("\n" + json.dumps(result, indent=2))


def main() -> None:
    """Regenerate the recorded baseline (run on the reference machine)."""
    pair = dedupe_measurement(BENCH_SCALE, PAIR_IDS)
    assert pair["physical_reduction"] >= REDUCTION_FLOOR, (
        f"physical reduction {pair['physical_reduction']:.1%} under the "
        f"{REDUCTION_FLOOR:.0%} floor"
    )
    mixed = dedupe_measurement(BENCH_SCALE, MIXED_IDS)
    eviction = eviction_order(BENCH_SCALE)
    baseline = {
        "workload": {
            "scale": BENCH_SCALE,
            "what": "content-addressed block store: physical bytes after "
            "cross-shard + compacted-vs-original dedupe, compared "
            "against the per-shard-ownership baseline (logical "
            "bytes); plus byte-budget eviction ordering and v2 "
            "snapshot byte-identity",
        },
        "pair": {k: v for k, v in pair.items() if k != "scale"},
        "mixed": {k: v for k, v in mixed.items() if k != "scale"},
        "eviction": eviction,
        "reduction_floor": REDUCTION_FLOOR,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(json.dumps(baseline, indent=2))


if __name__ == "__main__":
    main()

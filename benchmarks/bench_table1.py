"""Benchmark: regenerate Table 1 (the workload matrix)."""

from benchmarks.conftest import run_and_check


def test_table1_workloads(benchmark):
    out = run_and_check(benchmark, "table1")
    assert "MobileNetV2" in out and "Llama-2-7b-chat-hf" in out
    assert "CIFAR10".lower() in out.lower()

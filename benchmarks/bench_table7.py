"""Benchmark: regenerate Table 7 (H100 runtime, eager vs lazy)."""

from benchmarks.conftest import run_and_check


def test_table7_h100_runtime(benchmark):
    run_and_check(
        benchmark,
        "table7",
        required_pass=(
            "vllm: CPU-memory savings collapse under lazy loading",
            "vllm: GPU-memory savings near zero in both modes",
            "transformers: execution time improves in both modes",
        ),
        forbid_deviation=True,
    )

"""Ablation benchmark: detector vs NSys overhead scaling with workload
length (design choice 2 in DESIGN.md)."""

from benchmarks.conftest import run_and_check


def test_ablation_detector_scaling(benchmark):
    run_and_check(
        benchmark,
        "ablation_detector_scaling",
        required_pass=(
            "Detector absolute overhead is flat in epochs",
            "NSys overhead grows ~linearly with epochs",
        ),
        forbid_deviation=True,
    )

"""Benchmark: regenerate Table 3 (core-library reductions)."""

from benchmarks.conftest import run_and_check


def test_table3_core_libraries(benchmark):
    out = run_and_check(
        benchmark,
        "table3",
        required_pass=(
            "TensorFlow's core library keeps far more functions",
        ),
    )
    assert "libtorch_cuda.so" in out
    assert "libtensorflow_cc.so.2" in out

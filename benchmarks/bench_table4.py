"""Benchmark: regenerate Table 4 (Jaccard similarity in libtorch_cuda.so)."""

from benchmarks.conftest import run_and_check


def test_table4_jaccard_torch(benchmark):
    run_and_check(
        benchmark,
        "table4",
        required_pass=(
            "Function similarity high for every pair",
        ),
    )

"""Crash matrix + recovery timing for the write-ahead admissions log.

Two halves:

**Kill matrix** - for every registered durability fault site
(``wal.append``, ``wal.fsync``, ``wal.replay``, ``checkpoint.truncate``,
``remote.heartbeat``) a child process serves real admissions and is
SIGKILLed *at the site* via a ``REPRO_FAULT_PLAN`` ``:kill`` rule.  A
never-killed control run records the expected store image after every
admission; recovery (``DebloatEngine.open()`` with the workload runner
patched to fail) must reproduce the committed prefix **byte-identically**
with zero workload runs.  Which prefix is "committed" is the WAL's
contract: a kill before the record's bytes land (``wal.append``) loses
exactly that admission; a kill after the write but before the physical
sync (``wal.fsync``) keeps it (process death doesn't drop flushed OS
buffers); a kill between checkpoint export and WAL truncation loses
nothing (the watermark skips the double-covered records); a kill during
replay is free (replay never writes); a parent kill during a heartbeat
loses nothing remote (workers auto-export every committed mutation).

**Timing** - replay-from-WAL against a warm pipeline cache must beat a
cold rebuild (empty cache, full pipeline per admission) by
``SPEEDUP_FLOOR``x; the recovery wall times and replay counts land in
``BENCH_durability.json``.

``test_*`` functions run both halves at the tiny test scale under plain
pytest; ``python benchmarks/bench_durability.py`` regenerates the
recorded baseline at benchmark scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_durability.json"

BENCH_SCALE = 0.125
TEST_SCALE = 0.02

WORKLOAD_IDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
    "tensorflow/train/mobilenetv2",
]

#: Floor for WAL-replay recovery speedup over cold rebuild.
SPEEDUP_FLOOR = 2.0

SIGKILLED = -9

#: site -> (fault plan, child mode, committed admissions after recovery).
#: ``None`` means "all of them".
KILL_MATRIX = {
    "wal.append": ("seed=1;wal.append@2:kill", "traffic", 1),
    "wal.fsync": ("seed=1;wal.fsync@2:kill", "traffic-fsync-always", 2),
    "checkpoint.truncate": (
        "seed=1;checkpoint.truncate@1:kill", "traffic-checkpoint", None
    ),
    "wal.replay": ("seed=1;wal.replay@2:kill", "recover", None),
    "remote.heartbeat": (
        "seed=1;remote.heartbeat@1:kill", "remote-traffic", None
    ),
}


_CHILD = r"""
import json, os, sys, time

mode, root, scale = sys.argv[1], sys.argv[2], float(sys.argv[3])

from repro.api import AdmitRequest, DebloatEngine, EngineConfig
from repro.api.config import DurabilityConfig, LivenessConfig
from repro.core import serialize
from repro.core.debloat import DebloatOptions
from repro.testing import faults

plan = faults.plan_from_env()
if plan is not None:
    faults.activate(plan)

WIDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
    "tensorflow/train/mobilenetv2",
]


def cfg(dur_dir=None, fsync="batch", remote=0):
    kw = dict(
        scale=scale,
        options=DebloatOptions(runtime_comparison_top_n=0),
        use_cache=True,
    )
    if dur_dir:
        kw["durability"] = DurabilityConfig(
            enabled=True, directory=dur_dir, fsync=fsync
        )
    if remote:
        kw["remote_shards"] = remote
        kw["snapshot_dir"] = os.path.join(root, "remote-snap")
        kw["liveness"] = LivenessConfig(op_deadline_s=60.0)
    return EngineConfig(**kw)


def export_blob(engine):
    shards = sorted(
        engine.federation.local_shards(),
        key=lambda s: s.store.framework.name,
    )
    return b"".join(
        serialize.payload_dumps(s.store.export_state()) for s in shards
    )


def forbid_runs():
    import repro.workloads.runner as runner

    def _boom(self, *a, **k):
        raise AssertionError("workload ran during recovery")

    runner.WorkloadRunner.run = _boom


def write(path, data):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(data)


if mode == "traffic":
    dur_dir, expect, fsync, do_checkpoint = sys.argv[4:8]
    engine = DebloatEngine(cfg(dur_dir, fsync=fsync)).open()
    for k, wid in enumerate(WIDS, start=1):
        engine.admit(AdmitRequest(workload_id=wid))
        write(os.path.join(expect, f"{k}.bin"), export_blob(engine))
    if do_checkpoint == "1":
        engine.checkpoint()
    engine.close()
    print("TRAFFIC_DONE")
elif mode == "recover":
    dur_dir = sys.argv[4]
    forbid_runs()
    start = time.perf_counter()
    engine = DebloatEngine(cfg(dur_dir)).open()
    wall = time.perf_counter() - start
    write(os.path.join(root, "recovered.bin"), export_blob(engine))
    for s in engine.federation.local_shards():
        s.store.validate_invariants()  # includes block refcount checks
    k = sum(
        s.store.generation for s in engine.federation.local_shards()
    )
    report = dict(engine.recovery)
    engine.close()
    print(json.dumps({
        "k": k,
        "replayed": report["replayed"],
        "snapshot_loaded": report["snapshot_loaded"],
        "recovery_s": round(wall, 4),
    }))
elif mode == "remote-traffic":
    expect = sys.argv[4]
    engine = DebloatEngine(cfg(remote=1)).open()
    sups = list(engine._remote_pool.supervisors.values())
    for k, wid in enumerate(WIDS, start=1):
        engine.admit(AdmitRequest(workload_id=wid))
        blob = b"".join(
            serialize.payload_dumps(
                sup.call("pull_state", framework=fw)["state"]
            )
            for sup in sups
            for fw in sorted(sup.call("ping")["frameworks"])
        )
        write(os.path.join(expect, f"{k}.bin"), blob)
    while True:  # the remote.heartbeat kill rule fires here
        for sup in sups:
            sup.heartbeat()
        time.sleep(0.01)
elif mode == "remote-recover":
    forbid_runs()  # the parent must not run workloads either
    start = time.perf_counter()
    engine = DebloatEngine(cfg(remote=1)).open()
    sups = list(engine._remote_pool.supervisors.values())
    blob = b"".join(
        serialize.payload_dumps(
            sup.call("pull_state", framework=fw)["state"]
        )
        for sup in sups
        for fw in sorted(sup.call("ping")["frameworks"])
    )
    wall = time.perf_counter() - start
    write(os.path.join(root, "recovered.bin"), blob)
    k = sum(
        len(sup.call("admitted", framework=fw)["specs"])
        for sup in sups
        for fw in sorted(sup.call("ping")["frameworks"])
    )
    engine.close()
    print(json.dumps({"k": k, "recovery_s": round(wall, 4)}))
else:
    raise SystemExit(f"unknown child mode {mode!r}")
"""


def _run_child(
    mode: str,
    root: str,
    scale: float,
    *args: str,
    plan: str | None = None,
    expect_kill: bool = False,
) -> dict | None:
    env = dict(os.environ)
    env["REPRO_PIPELINE_CACHE_DIR"] = os.path.join(root, "cache")
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    if plan is not None:
        env["REPRO_FAULT_PLAN"] = plan
    else:
        env.pop("REPRO_FAULT_PLAN", None)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, root, str(scale), *args],
        env=env, capture_output=True, text=True, timeout=600,
    )
    if expect_kill:
        assert proc.returncode == SIGKILLED, (
            f"{mode} child survived the {plan!r} kill "
            f"(rc={proc.returncode}): {proc.stderr[-2000:]}"
        )
        return None
    assert proc.returncode == 0, (
        f"{mode} child failed (rc={proc.returncode}): "
        f"{proc.stderr[-2000:]}"
    )
    last = proc.stdout.strip().splitlines()[-1]
    return json.loads(last) if last.startswith("{") else {"out": last}


def _local_site(site: str, root: str, scale: float, expect: str) -> dict:
    """One local-WAL matrix entry: crash child, recover, byte-compare."""
    plan, mode, committed = KILL_MATRIX[site]
    dur = os.path.join(root, f"dur-{site.replace('.', '-')}")
    if mode == "traffic":
        _run_child("traffic", root, scale, dur, dur + "-x", "batch", "0",
                   plan=plan, expect_kill=True)
    elif mode == "traffic-fsync-always":
        _run_child("traffic", root, scale, dur, dur + "-x", "always", "0",
                   plan=plan, expect_kill=True)
    elif mode == "traffic-checkpoint":
        _run_child("traffic", root, scale, dur, dur + "-x", "batch", "1",
                   plan=plan, expect_kill=True)
    elif mode == "recover":
        # Clean traffic first, then a recovery that is killed mid-replay:
        # replay never writes, so the second recovery sees pristine disk.
        _run_child("traffic", root, scale, dur, dur + "-x", "batch", "0")
        _run_child("recover", root, scale, dur, plan=plan, expect_kill=True)
    else:
        raise AssertionError(mode)

    result = _run_child("recover", root, scale, dur)
    k = result["k"]
    if committed is not None:
        assert k == committed, (
            f"{site}: recovered {k} admissions, expected {committed}"
        )
    recovered = Path(root, "recovered.bin").read_bytes()
    expected = Path(expect, f"{k}.bin").read_bytes()
    assert recovered == expected, (
        f"{site}: recovered image diverges from the never-killed control "
        f"after {k} admissions"
    )
    return {
        "killed_at": plan.split(";", 1)[1],
        "recovered_admissions": k,
        "replayed": result["replayed"],
        "snapshot_loaded": result["snapshot_loaded"],
        "recovery_s": result["recovery_s"],
        "byte_identical": True,
    }


def _remote_site(root: str, scale: float) -> dict:
    """Parent SIGKILLed mid-heartbeat; workers' auto-exports survive."""
    plan, _, _ = KILL_MATRIX["remote.heartbeat"]
    expect = os.path.join(root, "expect-remote")
    _run_child("remote-traffic", root, scale, expect,
               plan=plan, expect_kill=True)
    result = _run_child("remote-recover", root, scale)
    k = result["k"]
    assert k == len(WORKLOAD_IDS), (
        f"remote.heartbeat: worker recovered {k} admissions, "
        f"expected {len(WORKLOAD_IDS)}"
    )
    recovered = Path(root, "recovered.bin").read_bytes()
    expected = Path(expect, f"{k}.bin").read_bytes()
    assert recovered == expected, (
        "remote.heartbeat: worker state diverges from pre-kill exports"
    )
    return {
        "killed_at": plan.split(";", 1)[1],
        "recovered_admissions": k,
        "recovery_s": result["recovery_s"],
        "byte_identical": True,
    }


def crash_matrix(scale: float) -> dict:
    """Kill -9 at every durability fault site; recovery must byte-match."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-dur-") as root:
        expect = os.path.join(root, "expect")
        # Warm the shared pipeline cache, then record the control images
        # with identical (all-warm) counter trajectories.
        _run_child("traffic", root, scale,
                   os.path.join(root, "dur-warmup"), expect + "-warm",
                   "batch", "0")
        _run_child("traffic", root, scale,
                   os.path.join(root, "dur-control"), expect, "batch", "0")
        sites = {
            site: _local_site(site, root, scale, expect)
            for site in KILL_MATRIX
            if site != "remote.heartbeat"
        }
        sites["remote.heartbeat"] = _remote_site(root, scale)
    return sites


def replay_vs_cold(scale: float) -> dict:
    """Time WAL-replay recovery against a cold federation rebuild."""
    from repro.api import AdmitRequest, DebloatEngine, EngineConfig
    from repro.api.config import DurabilityConfig
    from repro.core.debloat import DebloatOptions
    import repro.workloads.runner as runner

    opts = DebloatOptions(runtime_comparison_top_n=0)
    with tempfile.TemporaryDirectory(prefix="repro-bench-dur-") as root:
        # Cold rebuild: empty pipeline cache, full pipeline per admission.
        os.environ["REPRO_PIPELINE_CACHE_DIR"] = os.path.join(root, "cold")
        cold = DebloatEngine(EngineConfig(scale=scale, options=opts))
        cold.open()
        start = time.perf_counter()
        for wid in WORKLOAD_IDS:
            cold.admit(AdmitRequest(workload_id=wid))
        cold_s = time.perf_counter() - start
        cold.close()

        # Durable run: its own cache (cold for it) + a WAL of the
        # admissions; recovery then replays against the now-warm cache.
        os.environ["REPRO_PIPELINE_CACHE_DIR"] = os.path.join(root, "warm")
        dur = os.path.join(root, "durability")
        cfg = EngineConfig(
            scale=scale, options=opts,
            durability=DurabilityConfig(
                enabled=True, directory=dur, fsync="off"
            ),
        )
        source = DebloatEngine(cfg)
        source.open()
        for wid in WORKLOAD_IDS:
            source.admit(AdmitRequest(workload_id=wid))
        source.close()

        original_run = runner.WorkloadRunner.run

        def _refuse(self):
            raise AssertionError("workload ran during WAL replay")

        runner.WorkloadRunner.run = _refuse
        try:
            replica = DebloatEngine(cfg)
            start = time.perf_counter()
            replica.open()
            replay_s = time.perf_counter() - start
        finally:
            runner.WorkloadRunner.run = original_run
        report = dict(replica.recovery)
        replica.close()

    assert report["replayed"] == len(WORKLOAD_IDS)
    return {
        "workloads": len(WORKLOAD_IDS),
        "cold_rebuild_s": round(cold_s, 3),
        "wal_replay_s": round(replay_s, 3),
        "wal_records_replayed": report["replayed"],
        "speedup_replay_vs_rebuild": round(cold_s / replay_s, 2),
    }


# -- pytest checks (run in CI without --benchmark-only) ------------------------


def test_kill_matrix_recovers_byte_identical():
    """SIGKILL at every durability site; recovery must byte-match."""
    sites = crash_matrix(TEST_SCALE)
    print("\n" + json.dumps(sites, indent=2))
    assert set(sites) == set(KILL_MATRIX)
    assert all(row["byte_identical"] for row in sites.values())


def test_wal_replay_beats_cold_rebuild():
    result = replay_vs_cold(TEST_SCALE)
    print("\n" + json.dumps(result, indent=2))
    # Tiny scale: only sanity-bound the ordering; the speedup *floor* is
    # asserted at benchmark scale in main().
    assert result["wal_replay_s"] < result["cold_rebuild_s"]


def main() -> None:
    """Regenerate the recorded baseline (run on the reference machine)."""
    timing = replay_vs_cold(BENCH_SCALE)
    assert timing["speedup_replay_vs_rebuild"] >= SPEEDUP_FLOOR, (
        f"WAL replay only {timing['speedup_replay_vs_rebuild']}x faster "
        f"than cold rebuild (floor {SPEEDUP_FLOOR}x)"
    )
    sites = crash_matrix(BENCH_SCALE)
    baseline = {
        "workload": {
            "scale": BENCH_SCALE,
            "workload_ids": WORKLOAD_IDS,
            "what": "kill -9 at every durability fault site (child "
            "processes, REPRO_FAULT_PLAN :kill rules) followed by "
            "auto-recovery on open: byte-identical store images "
            "with zero workload runs; plus WAL-replay recovery "
            "timed against a cold rebuild",
        },
        **timing,
        "speedup_floor": SPEEDUP_FLOOR,
        "kill_matrix": sites,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(json.dumps(baseline, indent=2))


if __name__ == "__main__":
    main()

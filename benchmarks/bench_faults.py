"""Fault-tolerance benchmark: availability and admission latency under a
deterministic 5% injected-fault rate, vs a no-fault baseline.

The robustness claim: with transactional admission (roll back the touched
epoch, retry the one failed admission) a 5% transient-fault rate costs a
few retried admissions - not availability, and not a store rebuild.  The
comparison quantifies both:

* **availability** - the fraction of arrivals that resolve to a successful
  admission (after retries) rather than a typed failure;
* **p99 admission latency** - queue-to-resolution, so retry backoff shows
  up where an SLO would see it;
* **recompactions saved by rollback-vs-rebuild** - every rollback re-does
  only the failed admission's delta pass; a store that recovered by
  rebuilding from scratch would recompact the whole union per fault.

``test_*`` functions assert the contract at the tiny test scale under a
plain pytest invocation; ``python benchmarks/bench_faults.py`` regenerates
``BENCH_faults.json``, the recorded baseline future PRs compare against.
``REPRO_FAULT_PLAN`` overrides the injected plan for ad-hoc runs.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.core.debloat import DebloatOptions
from repro.errors import AdmissionError
from repro.frameworks.catalog import get_framework
from repro.serving.server import DebloatServer
from repro.serving.store import DebloatStore
from repro.testing import faults
from repro.workloads.spec import TABLE1_WORKLOADS, WorkloadSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_faults.json"

TEST_SCALE = 0.02

#: The injected failure mix: 5% of worker attempts die before touching the
#: store, 5% of union merges fault mid-transaction, and two fixed
#: per-library delta passes fault mid-admission (the ``store.process``
#: site is per *library*, so a per-invocation rate would compound over the
#: hundred-plus libraries of a large delta - ordinals keep it at two
#: guaranteed mid-transaction rollbacks).  The fixed seed makes the firing
#: pattern - and therefore the whole benchmark - reproducible.
FAULT_SEED = 20250808
FAULT_PLAN = (
    f"seed={FAULT_SEED};"
    "worker.pre_merge%0.05;store.merge%0.05;store.process@25,150"
)

#: Availability floor under the 5% plan: the default 3-attempt retry
#: budget must absorb essentially every injected transient.
AVAILABILITY_FLOOR = 0.9

#: No verification/runtime-comparison runs: the benchmark isolates the
#: admission path (detection + locate + compact + retry).
OPTIONS = DebloatOptions(verify=False, runtime_comparison_top_n=0)


def arrival_specs() -> list[WorkloadSpec]:
    """A 16-arrival single-framework sequence (batch variants + re-admits).

    The four PyTorch catalog workloads, half- and quarter-batch variants
    of each (genuinely distinct usage sets), then the base four again
    (steady-state duplicate re-admissions).
    """
    base = [w for w in TABLE1_WORKLOADS if w.framework == "pytorch"]
    half = [w.variant(batch_size=max(1, w.batch_size // 2)) for w in base]
    quarter = [w.variant(batch_size=max(1, w.batch_size // 4)) for w in base]
    return base + half + quarter + base


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty sample."""
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, math.ceil(q * len(ranked)) - 1)]


def run_arrivals(
    specs: list[WorkloadSpec], framework, plan: faults.FaultPlan | None
) -> dict:
    """Drive one server over the arrival sequence, under ``plan`` (or none).

    Returns per-arrival latencies, the availability split, the server's
    retry/rollback counters, and the end-state store (for byte-identity
    checks and the rollback-vs-rebuild accounting).
    """
    store = DebloatStore(framework, OPTIONS)
    latencies: list[float] = []
    admitted: list[str] = []
    failed: list[str] = []
    ctx = faults.fault_plan(plan) if plan is not None else None
    try:
        if ctx is not None:
            ctx.__enter__()
        with DebloatServer(store, workers=2) as server:
            tickets = [(s, server.submit(s)) for s in specs]
            for spec, ticket in tickets:
                try:
                    ticket.result(timeout=300)
                    admitted.append(spec.workload_id)
                except AdmissionError:
                    failed.append(spec.workload_id)
                latencies.append(ticket.latency_s)
            stats = server.stats()
    finally:
        if ctx is not None:
            ctx.__exit__(None, None, None)
    return {
        "latencies": latencies,
        "admitted": admitted,
        "failed": failed,
        "stats": stats,
        "store": store,
        "faults_fired": dict(plan.stats()) if plan is not None else {},
    }


def summarize(run: dict) -> dict:
    n = len(run["latencies"])
    return {
        "arrivals": n,
        "admitted": len(run["admitted"]),
        "failed": len(run["failed"]),
        "availability_pct": round(100.0 * len(run["admitted"]) / n, 2),
        "mean_ms": round(sum(run["latencies"]) / n * 1e3, 1),
        "p99_ms": round(percentile(run["latencies"], 0.99) * 1e3, 1),
        "retries": run["stats"]["retries"],
        "rollbacks": run["stats"]["rollbacks"],
        "recompactions": run["stats"]["recompactions"],
        "rollback_recompactions": run["stats"]["rollback_recompactions"],
        "faults_fired": run["faults_fired"],
    }


def rollback_vs_rebuild(faulted: dict) -> dict:
    """Recompactions a rebuild-from-scratch recovery would have cost.

    Rollback recovery discards only the aborted transaction's delta pass
    (the store counts that discarded work in ``rollback_recompactions``)
    and retries the one admission.  A store that recovered from each
    mid-transaction fault by rebuilding would instead recompact every
    library in the union per rollback.
    """
    rollbacks = faulted["stats"]["rollbacks"]
    libraries = faulted["stats"]["libraries"]
    redone = faulted["stats"]["rollback_recompactions"]
    rebuild_cost = rollbacks * libraries
    return {
        "rollbacks": rollbacks,
        "union_libraries": libraries,
        "recompactions_redone": redone,
        "rebuild_recompactions": rebuild_cost,
        "recompactions_saved": rebuild_cost - redone,
    }


def test_availability_under_faults():
    """5% injected faults: retries keep availability at the floor, and the
    end-state store is byte-identical to the fault-free run."""
    specs = arrival_specs()
    framework = get_framework("pytorch", scale=TEST_SCALE)
    baseline = run_arrivals(specs, framework, None)
    faulted = run_arrivals(
        specs, framework, faults.parse_plan(FAULT_PLAN)
    )
    assert len(baseline["failed"]) == 0
    assert sum(faulted["faults_fired"].values()) >= 1  # faults really fired
    availability = len(faulted["admitted"]) / len(specs)
    assert availability >= AVAILABILITY_FLOOR
    if not faulted["failed"]:
        # Every arrival landed: byte-identity against the fault-free run.
        clean = baseline["store"].debloated_libraries()
        recovered = faulted["store"].debloated_libraries()
        assert sorted(recovered) == sorted(clean)
        for soname, d in recovered.items():
            assert d.lib.data == clean[soname].lib.data, soname
    faulted["store"].validate_invariants()


def test_rollback_cheaper_than_rebuild():
    """Each rollback discards one delta pass, not the whole union."""
    specs = arrival_specs()
    framework = get_framework("pytorch", scale=TEST_SCALE)
    faulted = run_arrivals(
        specs, framework, faults.parse_plan(FAULT_PLAN)
    )
    comparison = rollback_vs_rebuild(faulted)
    if comparison["rollbacks"]:
        assert comparison["recompactions_saved"] > 0
        assert (
            comparison["recompactions_redone"]
            < comparison["rebuild_recompactions"]
        )


def main() -> None:
    """Regenerate the recorded baseline (run on the reference machine)."""
    plan_text = faults.plan_from_env()
    plan_spec = plan_text.name if plan_text is not None else FAULT_PLAN
    specs = arrival_specs()
    framework = get_framework("pytorch", scale=TEST_SCALE)
    start = time.perf_counter()
    baseline = run_arrivals(specs, framework, None)
    faulted = run_arrivals(specs, framework, faults.parse_plan(plan_spec))
    record = {
        "scale": TEST_SCALE,
        "fault_plan": plan_spec,
        "arrivals": [s.workload_id for s in specs],
        "availability_floor_pct": round(100.0 * AVAILABILITY_FLOOR, 1),
        "baseline": summarize(baseline),
        "faulted": summarize(faulted),
        "rollback_vs_rebuild": rollback_vs_rebuild(faulted),
        "wall_s": round(time.perf_counter() - start, 1),
    }
    BASELINE_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()

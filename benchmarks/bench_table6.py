"""Benchmark: regenerate Table 6 (H100 size reductions, eager vs lazy)."""

from benchmarks.conftest import run_and_check


def test_table6_h100_sizes(benchmark):
    run_and_check(
        benchmark,
        "table6",
        required_pass=(
            "vllm: size reductions identical across loading modes",
            "transformers: size reductions identical across loading modes",
        ),
        forbid_deviation=True,
    )

"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one paper table/figure through the full
pipeline at the default experiment scale (0.125 - byte sizes are paper
magnitude, entity counts 1/8) and asserts its shape checks pass.  The
pipeline's report cache is shared across benchmarks, so the first benchmark
touching a workload pays for its pipeline and the rest reuse it; the
benchmark numbers therefore measure the *regeneration* cost of each
artifact.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

BENCH_SCALE = 0.125


def run_and_check(benchmark, experiment_id: str,
                  required_pass: tuple[str, ...] = (),
                  forbid_deviation: bool = False) -> str:
    """Benchmark one experiment and assert its shape checks."""
    from repro.experiments.registry import run_experiment

    output = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": BENCH_SCALE},
        rounds=1,
        iterations=1,
    )
    print()
    print(output)
    for fragment in required_pass:
        assert f"[PASS] {fragment}" in output, (
            f"{experiment_id}: expected passing check {fragment!r}"
        )
    if forbid_deviation:
        assert "[DEVIATION]" not in output, f"{experiment_id}: deviation found"
    return output


@pytest.fixture()
def bench_scale() -> float:
    return BENCH_SCALE

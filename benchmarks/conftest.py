"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one paper table/figure through the full
pipeline at the default experiment scale (0.125 - byte sizes are paper
magnitude, entity counts 1/8) and asserts its shape checks pass.  The
pipeline's report cache is shared across benchmarks, so the first benchmark
touching a workload pays for its pipeline and the rest reuse it; the
benchmark numbers therefore measure the *regeneration* cost of each
artifact.

The disk tier is pointed at a session-private tmp directory: benchmark
numbers must come from real pipeline executions, never from a developer's
(or an earlier CI step's) warm ``~/.cache/repro-debloat`` - and benchmark
runs must not pollute it either.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

BENCH_SCALE = 0.125


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    """Keep the benchmark suite off any pre-existing pipeline disk cache."""
    cache_dir = tmp_path_factory.mktemp("pipeline-cache")
    import os

    old = os.environ.get("REPRO_PIPELINE_CACHE_DIR")
    os.environ["REPRO_PIPELINE_CACHE_DIR"] = str(cache_dir)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_PIPELINE_CACHE_DIR", None)
        else:
            os.environ["REPRO_PIPELINE_CACHE_DIR"] = old


def run_and_check(benchmark, experiment_id: str,
                  required_pass: tuple[str, ...] = (),
                  forbid_deviation: bool = False) -> str:
    """Benchmark one experiment and assert its shape checks."""
    from repro.experiments.registry import run_experiment

    output = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": BENCH_SCALE},
        rounds=1,
        iterations=1,
    )
    print()
    print(output)
    for fragment in required_pass:
        assert f"[PASS] {fragment}" in output, (
            f"{experiment_id}: expected passing check {fragment!r}"
        )
    if forbid_deviation:
        assert "[DEVIATION]" not in output, f"{experiment_id}: deviation found"
    return output


@pytest.fixture()
def bench_scale() -> float:
    return BENCH_SCALE

"""Serving benchmark: incremental store admission vs naive full recompute.

The serving claim: when workloads arrive over time, a shared
:class:`~repro.serving.store.DebloatStore` admits each new arrival by
running detection for that workload only and delta-compacting only the
libraries its usage actually grew - while the naive serving story
(re-running ``debloat_many`` over the whole set on every arrival, which is
what a store-less deployment must do to keep one artifact set correct for
all consumers) recomputes O(n) detections and every library per arrival.

``test_*`` functions assert the comparison at the tiny test scale under a
plain pytest invocation (caching disabled for both sides - this measures
computation, not cache hits) and check the end-state byte-identity of the
two paths.  ``python benchmarks/bench_serving.py`` regenerates
``BENCH_serving.json``, the recorded baseline future PRs compare against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.debloat import Debloater, DebloatOptions
from repro.frameworks.catalog import get_framework
from repro.serving.store import DebloatStore
from repro.workloads.spec import TABLE1_WORKLOADS, WorkloadSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_serving.json"

TEST_SCALE = 0.02
#: Incremental admission must beat naive recompute by at least this factor
#: over the whole arrival sequence.
SPEEDUP_FLOOR = 2.0

#: No verification/runtime-comparison runs: the benchmark isolates the
#: admission path (detection + locate + compact).
OPTIONS = DebloatOptions(verify=False, runtime_comparison_top_n=0)


def serving_specs() -> list[WorkloadSpec]:
    """An 8-workload single-framework arrival sequence.

    The four PyTorch catalog workloads plus half-batch variants of each;
    variants resolve different kernel shape buckets, so they are genuinely
    distinct usage sets arriving at the same store.
    """
    base = [w for w in TABLE1_WORKLOADS if w.framework == "pytorch"]
    variants = [
        w.variant(batch_size=max(1, w.batch_size // 2)) for w in base
    ]
    return base + variants


def run_incremental(
    specs: list[WorkloadSpec], framework
) -> tuple[list[float], DebloatStore]:
    """Admit arrivals one at a time into one store; per-arrival seconds."""
    store = DebloatStore(framework, OPTIONS)
    latencies = []
    for spec in specs:
        start = time.perf_counter()
        store.admit(spec)
        latencies.append(time.perf_counter() - start)
    return latencies, store


def run_naive(
    specs: list[WorkloadSpec], framework
) -> tuple[list[float], Debloater]:
    """Full ``debloat_many`` recompute over the whole set per arrival."""
    latencies = []
    debloater = Debloater(framework, OPTIONS)
    for i in range(len(specs)):
        start = time.perf_counter()
        debloater.debloat_many(specs[: i + 1])
        latencies.append(time.perf_counter() - start)
    return latencies, debloater


def test_incremental_beats_naive():
    """Acceptance: >= 2x over naive recompute on an 8-workload sequence."""
    specs = serving_specs()
    assert len(specs) >= 8
    framework = get_framework("pytorch", scale=TEST_SCALE)
    inc, _ = run_incremental(specs, framework)
    naive, _ = run_naive(specs, framework)
    speedup = sum(naive) / sum(inc)
    print(
        f"\nincremental {sum(inc) * 1e3:.0f} ms total, naive "
        f"{sum(naive) * 1e3:.0f} ms total, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental admission only {speedup:.1f}x faster than naive "
        f"recompute (floor {SPEEDUP_FLOOR}x)"
    )


def test_incremental_matches_one_shot_union():
    """Admitting N one at a time ends in the SAME library bytes as one union."""
    specs = serving_specs()
    framework = get_framework("pytorch", scale=TEST_SCALE)
    _, store = run_incremental(specs, framework)
    debloater = Debloater(framework, OPTIONS)
    debloater.debloat_many(specs)
    one_shot = debloater.debloated_libraries
    incremental = store.debloated_libraries()
    assert sorted(incremental) == sorted(one_shot)
    for soname, d in incremental.items():
        other = one_shot[soname]
        assert d.lib.data == other.lib.data, soname
        assert d.removed_cpu_ranges == other.removed_cpu_ranges
        assert d.removed_gpu_ranges == other.removed_gpu_ranges


def federation_specs() -> list[WorkloadSpec]:
    """A 2-framework (pytorch + tensorflow) interleaved arrival sequence.

    Alternating frameworks is the adversarial arrival order for a
    federated store: every admission switches shards, so any cross-shard
    interference (shared locks, cross-framework recompaction) would show
    up directly in the per-arrival latencies.
    """
    pt = [w for w in TABLE1_WORKLOADS if w.framework == "pytorch"]
    tf = [w for w in TABLE1_WORKLOADS if w.framework == "tensorflow"]
    out: list[WorkloadSpec] = []
    for a, b in zip(pt, tf):
        out.extend((a, b))
    return out


def run_federation(specs: list[WorkloadSpec]):
    """Admit a mixed-framework sequence through one engine federation."""
    from repro.api import AdmitRequest, DebloatEngine, EngineConfig

    config = EngineConfig(scale=TEST_SCALE, options=OPTIONS, use_cache=False)
    latencies = []
    engine = DebloatEngine(config).open()
    for spec in specs:
        start = time.perf_counter()
        engine.admit(AdmitRequest(spec=spec))
        latencies.append(time.perf_counter() - start)
    return latencies, engine


def test_federation_matches_single_framework_stores():
    """Each federation shard ends byte-identical to a standalone store."""
    specs = federation_specs()
    latencies, engine = run_federation(specs)
    assert len(latencies) == 8
    try:
        snapshot = engine.snapshot()
        assert snapshot.frameworks == ("pytorch", "tensorflow")
        for name in snapshot.frameworks:
            framework = get_framework(name, scale=TEST_SCALE)
            standalone = DebloatStore(framework, OPTIONS)
            for spec in specs:
                if spec.framework == name:
                    standalone.admit(spec)
            shard = engine.federation.shard(name).store
            incremental = shard.debloated_libraries()
            expected = standalone.debloated_libraries()
            assert sorted(incremental) == sorted(expected)
            for soname, d in incremental.items():
                assert d.lib.data == expected[soname].lib.data, soname
    finally:
        engine.close()


def run_http(
    specs: list[WorkloadSpec],
    clients: int = 8,
    queue_bound: int = 64,
    coalesce_window_s: float = 0.005,
    shed_backoff_s: float = 0.05,
):
    """Drive a live HTTP front-end with concurrent clients.

    Returns (per-arrival seconds, shed count, the pytorch shard store).
    Shed requests (503) honor the backpressure contract and retry after
    a back-off, so every arrival eventually commits; latency is wall
    time from first attempt to the 200, sheds included.
    """
    import http.client
    import threading

    from repro.api import DebloatEngine, EngineConfig, HttpConfig
    from repro.serving.http import BackgroundHttpServer

    config = EngineConfig(
        scale=TEST_SCALE, options=OPTIONS, use_cache=False,
        workers=2, batch_max=8,
        http=HttpConfig(
            port=0, queue_bound=queue_bound,
            coalesce_window_s=coalesce_window_s,
        ),
    )
    engine = DebloatEngine(config)
    latencies = [0.0] * len(specs)
    sheds = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    with BackgroundHttpServer(engine, config.http) as bg:

        def client(worker: int) -> None:
            barrier.wait()
            for idx in range(worker, len(specs), clients):
                payload = json.dumps(
                    {"workload_id": specs[idx].workload_id}
                )
                start = time.perf_counter()
                while True:
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", bg.port, timeout=600
                    )
                    try:
                        conn.request("POST", "/v1/admit", payload)
                        resp = conn.getresponse()
                        body = resp.read()
                        status = resp.status
                    finally:
                        conn.close()
                    if status == 503:
                        with lock:
                            sheds[0] += 1
                        time.sleep(shed_backoff_s)
                        continue
                    assert status == 200, (status, body[:200])
                    break
                latencies[idx] = time.perf_counter() - start

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store = engine.federation.shard("pytorch").store
    return latencies, sheds[0], store


def percentile_ms(latencies: list[float], q: float) -> float:
    """Nearest-rank percentile, reported in milliseconds."""
    ordered = sorted(latencies)
    idx = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return round(ordered[idx] * 1e3, 1)


def test_http_matches_inprocess():
    """Acceptance: >= 8 concurrent HTTP clients end in a store
    byte-identical to in-process admission of the same arrivals."""
    specs = serving_specs()
    framework = get_framework("pytorch", scale=TEST_SCALE)
    latencies, _, store = run_http(specs, clients=8)
    assert all(lat > 0 for lat in latencies)
    _, inprocess = run_incremental(specs, framework)
    over_http = store.debloated_libraries()
    expected = inprocess.debloated_libraries()
    assert sorted(over_http) == sorted(expected)
    for soname, d in over_http.items():
        assert d.lib.data == expected[soname].lib.data, soname
        assert d.removed_cpu_ranges == expected[soname].removed_cpu_ranges
        assert d.removed_gpu_ranges == expected[soname].removed_gpu_ranges
    assert store.generation == inprocess.generation


def test_http_constrained_queue_sheds_not_hangs():
    """A queue bound far below the client count must shed (503) and still
    commit every arrival via client retry - never buffer without bound."""
    specs = serving_specs()
    latencies, sheds, store = run_http(
        specs, clients=8, queue_bound=2, coalesce_window_s=0.0
    )
    assert all(lat > 0 for lat in latencies)
    assert store.snapshot().generation == len(specs)


def test_bench_saturated_admission(benchmark):
    """pytest-benchmark hook: admission into a saturated union.

    Re-admitting a served workload is the store's steady state - zero new
    kernels, zero re-compactions, detection served from the recorded usage
    - i.e. the per-request cost once the union has saturated.
    """
    framework = get_framework("pytorch", scale=TEST_SCALE)
    specs = serving_specs()
    store = DebloatStore(framework, OPTIONS)
    for spec in specs:
        store.admit(spec)

    benchmark(store.admit, specs[-1])


def main() -> None:
    """Regenerate the recorded baseline (run on the reference machine)."""
    specs = serving_specs()
    framework = get_framework("pytorch", scale=TEST_SCALE)
    inc, store = run_incremental(specs, framework)
    naive, _ = run_naive(specs, framework)
    fed_specs = federation_specs()
    fed, engine = run_federation(fed_specs)
    fed_stats = engine.stats()
    engine.close()
    http_lat, http_shed, _ = run_http(specs, clients=8)
    burst_lat, burst_shed, _ = run_http(
        specs, clients=8, queue_bound=2, coalesce_window_s=0.0
    )
    baseline = {
        "scale": TEST_SCALE,
        "workloads": [s.workload_id for s in specs],
        "incremental_ms": [round(s * 1e3, 1) for s in inc],
        "naive_ms": [round(s * 1e3, 1) for s in naive],
        "incremental_total_ms": round(sum(inc) * 1e3, 1),
        "naive_total_ms": round(sum(naive) * 1e3, 1),
        "speedup": round(sum(naive) / sum(inc), 1),
        "speedup_floor": SPEEDUP_FLOOR,
        "store_stats": store.stats(),
        "federation": {
            "workloads": [s.workload_id for s in fed_specs],
            "arrival_ms": [round(s * 1e3, 1) for s in fed],
            "total_ms": round(sum(fed) * 1e3, 1),
            "shards": fed_stats["shards"],
            "recompactions": fed_stats["recompactions"],
            "untouched_served": fed_stats["untouched_served"],
        },
        "http": {
            "clients": 8,
            "requests": len(specs),
            "queue_bound": 64,
            "p50_ms": percentile_ms(http_lat, 0.50),
            "p95_ms": percentile_ms(http_lat, 0.95),
            "p99_ms": percentile_ms(http_lat, 0.99),
            "shed_rate": round(
                http_shed / (http_shed + len(specs)), 3
            ),
            # Queue bound far below the client count: backpressure must
            # shed instead of buffering; clients retry until committed.
            "constrained_burst": {
                "queue_bound": 2,
                "p50_ms": percentile_ms(burst_lat, 0.50),
                "p95_ms": percentile_ms(burst_lat, 0.95),
                "p99_ms": percentile_ms(burst_lat, 0.99),
                "shed_rate": round(
                    burst_shed / (burst_shed + len(specs)), 3
                ),
            },
        },
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(json.dumps(baseline, indent=2))


if __name__ == "__main__":
    main()

"""Benchmark: regenerate Table 8 (end-to-end debloating time)."""

from benchmarks.conftest import run_and_check


def test_table8_e2e_time(benchmark):
    run_and_check(
        benchmark,
        "table8",
        required_pass=(
            "Debloat time scales with workload execution time",
        ),
        forbid_deviation=True,
    )

"""Ablation benchmark: multi-arch fatbins vs single-arch build (design
choice 3 in DESIGN.md)."""

from benchmarks.conftest import run_and_check


def test_ablation_architecture_bloat(benchmark):
    run_and_check(
        benchmark,
        "ablation_arch",
        required_pass=(
            "Single-arch build eliminates Reason I entirely",
            "Most element bloat is architecture-induced",
        ),
        forbid_deviation=True,
    )

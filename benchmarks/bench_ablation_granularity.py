"""Ablation benchmark: whole-element vs exact-kernel retention (design
choice 1 in DESIGN.md)."""

from benchmarks.conftest import run_and_check


def test_ablation_retention_granularity(benchmark):
    run_and_check(
        benchmark,
        "ablation_granularity",
        required_pass=(
            "Whole-element retention verifies",
            "Exact-kernel retention breaks GPU-launching kernels",
        ),
        forbid_deviation=True,
    )

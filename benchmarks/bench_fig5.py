"""Benchmark: regenerate Figure 5 (reduction distributions)."""

from benchmarks.conftest import run_and_check


def test_fig5_distributions(benchmark):
    run_and_check(
        benchmark,
        "fig5",
        required_pass=(
            "GPU size-reduction median far above CPU's",
            "Every GPU library loses >80% of its elements",
        ),
        forbid_deviation=True,
    )

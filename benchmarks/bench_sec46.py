"""Benchmark: regenerate the Section 4.6 overhead comparison."""

from benchmarks.conftest import run_and_check


def test_sec46_detector_vs_nsys(benchmark):
    run_and_check(
        benchmark,
        "sec46",
        required_pass=(
            "Detector overhead well below NSys",
            "Detector intercepts once per kernel",
            "NSys records orders of magnitude more events",
        ),
        forbid_deviation=True,
    )

"""Micro-benchmark: the vectorized interval engine vs the pure-Python seed.

Drives large random range sets (10k ranges, the magnitude a paper-scale
library's locate/compact round produces) through the full algebra -
normalize, union, intersection, difference, complement, coverage and
membership queries - for both engines:

* ``RangeSet``   - the NumPy-backed production engine;
* ``PyRangeSet`` - the seed pure-Python implementation, kept in
  ``repro.utils._intervals_py`` as the reference.

``test_vectorized_speedup`` asserts the >= 5x acceptance floor with plain
timers (it runs under a normal ``pytest benchmarks/bench_intervals.py``
invocation); the ``bench_*`` functions integrate with pytest-benchmark for
trajectory tracking.  ``python benchmarks/bench_intervals.py`` regenerates
``BENCH_intervals.json``, the recorded baseline future PRs compare against.

``test_sparsefile_batched_zero`` covers the consumer side: ``SparseFile``
extent bookkeeping is RangeSet-array-backed, and punching a locate result's
thousands of removal ranges via one batched :meth:`SparseFile.zero_ranges`
must beat the equivalent per-range ``zero()`` loop by the same kind of
margin (the compactor's hot path).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.utils._intervals_py import PyRangeSet
from repro.utils.intervals import RangeSet
from repro.utils.sparsefile import SparseFile

N_RANGES = 10_000
SPAN = 10_000_000
MAX_LEN = 2_000
SEED = 20250727
SPEEDUP_FLOOR = 5.0

SPARSE_EXTENTS = 20_000
SPARSE_CELL = 128
SPARSE_ZEROES = 2_000
SPARSE_SPEEDUP_FLOOR = 5.0

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_intervals.json"


def make_pairs(rng: np.random.Generator, n: int = N_RANGES):
    starts = rng.integers(0, SPAN, n)
    lengths = rng.integers(1, MAX_LEN, n)
    return list(zip(starts.tolist(), (starts + lengths).tolist()))


def workload():
    rng = np.random.default_rng(SEED)
    pairs_a = make_pairs(rng)
    pairs_b = make_pairs(rng)
    offsets = rng.integers(0, SPAN + MAX_LEN, N_RANGES)
    probes = make_pairs(rng, 200)
    return pairs_a, pairs_b, offsets, probes


def full_algebra(cls, pairs_a, pairs_b, offsets, probes) -> int:
    """Construction + the whole interval algebra; returns a checksum."""
    a, b = cls(pairs_a), cls(pairs_b)
    union = a | b
    inter = a & b
    diff = a - b
    comp = a.complement((0, SPAN + MAX_LEN))
    covered = sum(1 for p in probes if a.covers(p))
    if hasattr(a, "contains_offsets"):  # batched path (vectorized engine)
        hits = int(a.contains_offsets(offsets).sum())
    else:  # scalar path (reference engine)
        hits = sum(1 for o in offsets.tolist() if a.contains_offset(o))
    return (
        union.total() + inter.total() + diff.total() + comp.total()
        + covered + hits
    )


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_engines_agree():
    """Both engines produce the same checksum on the benchmark workload."""
    args = workload()
    assert full_algebra(RangeSet, *args) == full_algebra(PyRangeSet, *args)


def test_vectorized_speedup():
    """Acceptance: >= 5x over the seed engine on 10k-range workloads."""
    args = workload()
    py_s = _time(lambda: full_algebra(PyRangeSet, *args))
    np_s = _time(lambda: full_algebra(RangeSet, *args))
    speedup = py_s / np_s
    print(f"\npure-python {py_s * 1e3:.1f} ms, numpy {np_s * 1e3:.1f} ms, "
          f"speedup {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized engine only {speedup:.1f}x faster (floor "
        f"{SPEEDUP_FLOOR}x): py={py_s * 1e3:.1f}ms np={np_s * 1e3:.1f}ms"
    )


def test_bench_intervals_numpy(benchmark):
    args = workload()
    benchmark(full_algebra, RangeSet, *args)


def test_bench_intervals_reference(benchmark):
    args = workload()
    benchmark(full_algebra, PyRangeSet, *args)


def make_sparse_file(
    n: int = SPARSE_EXTENTS, cell: int = SPARSE_CELL
) -> SparseFile:
    """A file with ``n`` disjoint extents of ``cell // 2`` bytes each."""
    f = SparseFile.from_bytes(b"\xab" * (n * cell))
    idx = np.arange(n, dtype=np.int64)
    f.zero_ranges(
        RangeSet.from_arrays(idx * cell + cell // 2, (idx + 1) * cell)
    )
    assert len(f.extents()) == n
    return f


def sparse_zero_ranges(k: int = SPARSE_ZEROES) -> RangeSet:
    """Random removal ranges across the sparse file's extent space."""
    rng = np.random.default_rng(SEED)
    starts = rng.integers(0, SPARSE_EXTENTS * SPARSE_CELL, k)
    return RangeSet.from_arrays(
        starts, starts + rng.integers(1, 3 * SPARSE_CELL, k)
    )


def test_sparsefile_batched_zero():
    """Batched zero_ranges >= 5x over the per-range zero() loop, same bytes."""
    ranges = sparse_zero_ranges()
    pairs = list(
        zip(ranges.starts.tolist(), ranges.lengths.tolist())
    )

    batched = make_sparse_file()
    t0 = time.perf_counter()
    batched.zero_ranges(ranges)
    batched_s = time.perf_counter() - t0

    loop = make_sparse_file()
    t0 = time.perf_counter()
    for start, length in pairs:
        loop.zero(start, length)
    loop_s = time.perf_counter() - t0

    assert batched == loop  # identical extents AND bytes
    speedup = loop_s / batched_s
    print(f"\nper-range {loop_s * 1e3:.1f} ms, batched "
          f"{batched_s * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= SPARSE_SPEEDUP_FLOOR, (
        f"batched zero_ranges only {speedup:.1f}x faster (floor "
        f"{SPARSE_SPEEDUP_FLOOR}x)"
    )


def test_bench_sparsefile_zero_ranges(benchmark):
    """Batched hole punching on a 20k-extent file (compaction hot path)."""
    ranges = sparse_zero_ranges()
    f = make_sparse_file()
    benchmark.pedantic(
        lambda: f.copy().zero_ranges(ranges), rounds=5, iterations=1
    )


def test_bench_intervals_batched_construction(benchmark):
    """from_arrays: the no-Python-objects fast path the locators use."""
    rng = np.random.default_rng(SEED)
    starts = rng.integers(0, SPAN, N_RANGES)
    stops = starts + rng.integers(1, MAX_LEN, N_RANGES)
    benchmark(RangeSet.from_arrays, starts, stops)


def main() -> None:
    """Regenerate the recorded baseline (run on the reference machine)."""
    args = workload()
    py_s = _time(lambda: full_algebra(PyRangeSet, *args), repeats=5)
    np_s = _time(lambda: full_algebra(RangeSet, *args), repeats=5)
    rng = np.random.default_rng(SEED)
    starts = rng.integers(0, SPAN, N_RANGES)
    stops = starts + rng.integers(1, MAX_LEN, N_RANGES)
    batched_s = _time(lambda: RangeSet.from_arrays(starts, stops), repeats=5)
    sparse_ranges = sparse_zero_ranges()
    sparse_pairs = list(
        zip(sparse_ranges.starts.tolist(), sparse_ranges.lengths.tolist())
    )
    sparse_batched_s = _time(
        lambda: make_sparse_file().zero_ranges(sparse_ranges), repeats=3
    )
    sparse_build_s = _time(make_sparse_file, repeats=3)
    sparse_batched_s = max(sparse_batched_s - sparse_build_s, 1e-9)

    def _sparse_loop():
        f = make_sparse_file()
        for s, ln in sparse_pairs:
            f.zero(s, ln)

    sparse_loop_s = max(_time(_sparse_loop, repeats=3) - sparse_build_s, 1e-9)
    baseline = {
        "workload": {
            "n_ranges": N_RANGES,
            "span": SPAN,
            "max_len": MAX_LEN,
            "seed": SEED,
            "ops": "construct + union + intersection + difference + "
                   "complement + 200 covers + 10k membership",
        },
        "pure_python_ms": round(py_s * 1e3, 2),
        "numpy_ms": round(np_s * 1e3, 2),
        "from_arrays_ms": round(batched_s * 1e3, 3),
        "speedup": round(py_s / np_s, 1),
        "speedup_floor": SPEEDUP_FLOOR,
        "sparsefile": {
            "extents": SPARSE_EXTENTS,
            "zero_ranges": SPARSE_ZEROES,
            "per_range_ms": round(sparse_loop_s * 1e3, 2),
            "batched_ms": round(sparse_batched_s * 1e3, 3),
            "speedup": round(sparse_loop_s / sparse_batched_s, 1),
            "speedup_floor": SPARSE_SPEEDUP_FLOOR,
        },
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(json.dumps(baseline, indent=2))


if __name__ == "__main__":
    main()

"""Benchmark: regenerate Table 10 (distributed inference, 8x A100)."""

from benchmarks.conftest import run_and_check


def test_table10_distributed(benchmark):
    run_and_check(
        benchmark,
        "table10",
        required_pass=(
            "Reductions nearly identical across the nine models",
            "Distributed inference retains more elements than single-GPU",
        ),
        forbid_deviation=True,
    )

"""Benchmark: regenerate Table 9 (Jaccard similarity in tensorflow_cc.so)."""

from benchmarks.conftest import run_and_check


def test_table9_jaccard_tf(benchmark):
    run_and_check(
        benchmark,
        "table9",
        required_pass=("Function similarity high across TF workloads",),
    )

"""Benchmark: regenerate Figure 6 (Pareto chart of per-library reduction)."""

from benchmarks.conftest import run_and_check


def test_fig6_pareto(benchmark):
    run_and_check(
        benchmark,
        "fig6",
        required_pass=(
            "A handful of libraries carries 90% of the reduction",
            "Top 10% of libraries contribute >90%",
        ),
        forbid_deviation=True,
    )

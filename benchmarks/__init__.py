"""Benchmark suite package (importable so ``benchmarks.conftest`` is
unambiguous next to ``tests.conftest``)."""

"""Benchmark: regenerate Table 2 (per-workload reductions, full pipeline)."""

from benchmarks.conftest import run_and_check


def test_table2_overall_reductions(benchmark):
    run_and_check(
        benchmark,
        "table2",
        required_pass=(
            "CPU code reduction substantial in all workloads",
            "GPU code reduction >= CPU-grade in all workloads",
            "GPU element reduction exceeds 95%",
            "GPU code is more bloated than CPU code",
        ),
    )

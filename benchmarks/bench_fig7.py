"""Benchmark: regenerate Figure 7 (element-removal reasons)."""

from benchmarks.conftest import run_and_check


def test_fig7_reasons(benchmark):
    run_and_check(
        benchmark,
        "fig7",
        required_pass=("Reason I (arch mismatch) dominates removals",),
        forbid_deviation=True,
    )

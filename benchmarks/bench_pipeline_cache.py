"""Micro-benchmark: the disk-backed pipeline cache, cold vs warm processes.

Spawns real ``python -m repro.experiments`` subprocesses against a private
cache directory and times a **cold** run (empty disk cache: every pipeline
executes), a **warm** run (same directory: pipelines deserialize from the
disk tier, zero workload runs), and a **no-cache** run (both tiers
disabled).  Output byte-identity across all three is asserted after
stripping the CLI's wall-time lines.

``test_*`` functions run the comparison at the tiny test scale under a
plain pytest invocation; ``python benchmarks/bench_pipeline_cache.py``
regenerates ``BENCH_pipeline_cache.json``, the recorded cold/warm baseline
(benchmark scale 0.125) future PRs compare against.  The in-process
``bench_*`` functions integrate with pytest-benchmark and measure the
serialization layer itself (container encode / decode of a real report).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_pipeline_cache.json"

EXPERIMENT = "table4"
BENCH_SCALE = 0.125
TEST_SCALE = 0.02
#: Floor for warm-process speedup over cold at the benchmark scale.  The
#: warm process still pays interpreter + import + rendering; the pipeline
#: runs are what it skips.
SPEEDUP_FLOOR = 1.3

_WALL_TIME = re.compile(r"^\(generated in .*s wall time\)$", re.MULTILINE)


def _strip_timing(output: str) -> str:
    """Drop the only nondeterministic lines the experiment CLI prints."""
    return _WALL_TIME.sub("(generated in Xs wall time)", output)


def run_cli(cache_dir: str, scale: float, *extra: str) -> tuple[float, str, str]:
    """Run the experiment CLI in a subprocess; (seconds, stdout, stderr)."""
    env = dict(os.environ)
    env["REPRO_PIPELINE_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    start = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            EXPERIMENT,
            "--scale",
            str(scale),
            "--verbose",
            *extra,
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        cwd=REPO_ROOT,
    )
    return time.perf_counter() - start, proc.stdout, proc.stderr


def _disk_stat(stderr: str, name: str) -> int:
    """Parse one counter out of the CLI's --verbose cache-stats line."""
    match = re.search(
        r"(\d+) on disk \((\d+) hits / (\d+) misses / (\d+) errors\)", stderr
    )
    assert match, f"no cache stats in stderr: {stderr!r}"
    return int(
        match.group(
            {"entries": 1, "hits": 2, "misses": 3, "errors": 4}[name]
        )
    )


def cold_warm_nocache(scale: float) -> dict:
    """Time a cold, a warm, and a no-cache process against a fresh dir."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold_s, cold_out, cold_err = run_cli(cache_dir, scale)
        warm_s, warm_out, warm_err = run_cli(cache_dir, scale)
        nocache_s, nocache_out, _ = run_cli(cache_dir, scale, "--no-cache")
        entries = _disk_stat(cold_err, "entries")
        warm_hits = _disk_stat(warm_err, "hits")
    assert _strip_timing(cold_out) == _strip_timing(warm_out)
    assert _strip_timing(cold_out) == _strip_timing(nocache_out)
    assert entries > 0, "cold run persisted nothing"
    assert warm_hits == entries, "warm run missed the disk cache"
    return {
        "experiment": EXPERIMENT,
        "scale": scale,
        "disk_entries": entries,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "no_cache_s": round(nocache_s, 3),
        "speedup_warm_vs_cold": round(cold_s / warm_s, 2),
    }


# -- pytest checks (run in CI without --benchmark-only) ---------------------------


def test_warm_process_skips_pipelines_and_matches_cold():
    """Warm process: all disk hits, byte-identical output, not slower."""
    result = cold_warm_nocache(TEST_SCALE)
    print("\n" + json.dumps(result, indent=2))
    # At tiny scale interpreter startup dominates, so only sanity-bound the
    # timing; the speedup *floor* is asserted at benchmark scale in main().
    assert result["warm_s"] < result["cold_s"] * 1.5


# -- pytest-benchmark hooks: the serialization layer itself -----------------------


def _real_report():
    from repro.core import serialize
    from repro.experiments.common import PipelineCache
    from repro.workloads.spec import workload_by_id

    cache = PipelineCache(enabled=False)
    report = cache.get_or_run(
        workload_by_id("pytorch/inference/mobilenetv2"), TEST_SCALE, None
    )
    return serialize, report


def test_bench_report_dumps(benchmark):
    serialize, report = _real_report()
    blob = benchmark(serialize.dumps, report)
    assert len(blob) > 0


def test_bench_report_loads(benchmark):
    serialize, report = _real_report()
    blob = serialize.dumps(report)
    loaded = benchmark(serialize.loads, blob)
    assert serialize.reports_equal(loaded, report)


def main() -> None:
    """Regenerate the recorded baseline (run on the reference machine)."""
    result = cold_warm_nocache(BENCH_SCALE)
    assert result["speedup_warm_vs_cold"] >= SPEEDUP_FLOOR, (
        f"warm process only {result['speedup_warm_vs_cold']}x faster "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    baseline = {
        "workload": {
            "experiment": EXPERIMENT,
            "scale": BENCH_SCALE,
            "what": "cold process (runs pipelines, fills disk cache) vs "
            "warm process (deserializes persisted reports, zero "
            "workload runs) vs --no-cache process; wall time "
            "includes interpreter startup",
        },
        **{k: v for k, v in result.items() if k not in ("experiment", "scale")},
        "speedup_floor": SPEEDUP_FLOOR,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(json.dumps(baseline, indent=2))


if __name__ == "__main__":
    main()

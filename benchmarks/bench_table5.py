"""Benchmark: regenerate Table 5 (runtime improvements on the T4)."""

from benchmarks.conftest import run_and_check


def test_table5_runtime(benchmark):
    run_and_check(
        benchmark,
        "table5",
        required_pass=(
            "PyTorch GPU-memory savings >> TensorFlow/vLLM",
            "Inference gains a much larger time percentage than training",
            "Absolute time saving roughly constant across workloads",
        ),
        forbid_deviation=True,
    )

"""Micro-benchmark: warm snapshot import vs cold federation rebuild.

A replica has two ways to reach a serving state: **cold rebuild** (admit
every workload through the full detect -> locate -> compact pipeline
against an empty pipeline cache) or **warm import** (install the exported
store images - usage unions, per-library decisions, kernel-usage indexes,
debloated extents - with zero workload runs).  This benchmark times both
from fresh processes-worth of state, asserts the imported replica
re-exports byte-identical images, and proves the zero-run property by
patching ``WorkloadRunner.run`` to fail during the import.

``test_*`` functions run the comparison at the tiny test scale under a
plain pytest invocation; ``python benchmarks/bench_federation.py``
regenerates ``BENCH_federation.json``, the recorded baseline (benchmark
scale 0.125) future PRs compare against.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_federation.json"

BENCH_SCALE = 0.125
TEST_SCALE = 0.02

WORKLOAD_IDS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
    "tensorflow/train/mobilenetv2",
]

#: Floor for warm-import speedup over cold rebuild at benchmark scale.
SPEEDUP_FLOOR = 2.0


def _federation(scale: float):
    from repro.api import EngineConfig
    from repro.api.federation import StoreFederation
    from repro.core.debloat import DebloatOptions

    return StoreFederation(
        EngineConfig(
            scale=scale, options=DebloatOptions(runtime_comparison_top_n=0)
        )
    )


def _specs():
    from repro.workloads.spec import workload_by_id

    return [workload_by_id(wid) for wid in WORKLOAD_IDS]


def warm_vs_cold(scale: float) -> dict:
    """Time cold rebuild vs snapshot import; assert byte-identity."""
    import repro.workloads.runner as runner

    with tempfile.TemporaryDirectory(prefix="repro-bench-fed-") as root:
        # Cold rebuild: empty pipeline cache, every admission runs the
        # full pipeline.
        os.environ["REPRO_PIPELINE_CACHE_DIR"] = os.path.join(root, "cold")
        source = _federation(scale)
        start = time.perf_counter()
        for spec in _specs():
            source.admit(spec)
        cold_s = time.perf_counter() - start

        snapdir = os.path.join(root, "snapshot")
        start = time.perf_counter()
        manifest = source.export_snapshot(snapdir)
        export_s = time.perf_counter() - start
        snapshot_bytes = sum(e["bytes"] for e in manifest["shards"])

        # Warm import: a fresh federation (and another empty cache dir -
        # the image itself is the warmth), with workload runs forbidden.
        os.environ["REPRO_PIPELINE_CACHE_DIR"] = os.path.join(root, "warm")
        replica = _federation(scale)
        original_run = runner.WorkloadRunner.run

        def _refuse(self):
            raise AssertionError("workload ran during snapshot import")

        runner.WorkloadRunner.run = _refuse
        try:
            start = time.perf_counter()
            generations = replica.import_snapshot(snapdir)
            import_s = time.perf_counter() - start
        finally:
            runner.WorkloadRunner.run = original_run

        # Byte-identity: the replica re-exports the exact same files.
        reexport = os.path.join(root, "reexport")
        replica.export_snapshot(reexport)
        for entry in manifest["shards"]:
            a = Path(snapdir, entry["file"]).read_bytes()
            b = Path(reexport, entry["file"]).read_bytes()
            assert a == b, f"replica diverged on {entry['framework']}"
        assert set(generations) == {s.framework for s in _specs()}

    return {
        "scale": scale,
        "workloads": len(WORKLOAD_IDS),
        "snapshot_bytes": snapshot_bytes,
        "cold_rebuild_s": round(cold_s, 3),
        "snapshot_export_s": round(export_s, 3),
        "warm_import_s": round(import_s, 3),
        "speedup_import_vs_rebuild": round(cold_s / import_s, 2),
    }


# -- pytest checks (run in CI without --benchmark-only) ------------------------


def test_warm_import_is_byte_identical_and_faster():
    """Import beats rebuild and reproduces the exact store images."""
    result = warm_vs_cold(TEST_SCALE)
    print("\n" + json.dumps(result, indent=2))
    # Byte-identity and the zero-run property are asserted inside; at
    # tiny scale only sanity-bound the timing (the speedup *floor* is
    # asserted at benchmark scale in main()).
    assert result["warm_import_s"] < result["cold_rebuild_s"]


def main() -> None:
    """Regenerate the recorded baseline (run on the reference machine)."""
    result = warm_vs_cold(BENCH_SCALE)
    assert result["speedup_import_vs_rebuild"] >= SPEEDUP_FLOOR, (
        f"warm import only {result['speedup_import_vs_rebuild']}x faster "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    baseline = {
        "workload": {
            "scale": BENCH_SCALE,
            "workload_ids": WORKLOAD_IDS,
            "what": "cold federation rebuild (empty pipeline cache, full "
            "pipeline per admission) vs warm snapshot import "
            "(store images installed verbatim, zero workload "
            "runs, byte-identical re-export)",
        },
        **{k: v for k, v in result.items() if k != "scale"},
        "speedup_floor": SPEEDUP_FLOOR,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(json.dumps(baseline, indent=2))


if __name__ == "__main__":
    main()

"""Micro-benchmark: the vectorized kernel locator vs the pure-Python seed.

Builds a 2,000-element synthetic library (two architectures x 1,000
cubins, 8 kernels each - the magnitude of a paper-scale ``libtorch_cuda``
fatbin) and runs the retention decision for a realistic used-kernel set
through both engines:

* ``KernelLocator.locate``      - vectorized passes over the cached
  :class:`~repro.core.kindex.KernelUsageIndex`;
* ``repro.core._locate_py``     - the seed per-element loop, kept as the
  equivalence oracle.

``test_vectorized_locate_speedup`` asserts the >= 5x acceptance floor with
plain timers (runs under a normal ``pytest benchmarks/bench_locate.py``
invocation); ``test_process_pool_identity`` pins the other acceptance
criterion - process-sharded locate/compact output is byte-identical to
serial.  ``python benchmarks/bench_locate.py`` regenerates
``BENCH_locate.json``, the recorded baseline future PRs compare against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core._locate_py import locate_delta_py, locate_py
from repro.core.kindex import build_index
from repro.core.locate import KernelLocator
from repro.elf.builder import ElfBuilder
from repro.elf.parser import parse_shared_library
from repro.elf.symtab import SymbolTable
from repro.fatbin.builder import FatbinBuilder
from repro.fatbin.cubin import Cubin
from repro.fatbin.cuobjdump import extract_cubins

N_CUBINS = 1_000
ARCHS = (70, 75)
KERNELS_PER_CUBIN = 8
USED_FRACTION = 0.15
DELTA_FRACTION = 0.05
SEED = 20260727
SPEEDUP_FLOOR = 5.0
REPEATS = 3

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_locate.json"

_cache: dict = {}


def build_bench_library():
    """2,000 elements: ``N_CUBINS`` logical cubins replicated per arch."""
    if "lib" in _cache:
        return _cache["lib"]
    fb = FatbinBuilder()
    for arch in ARCHS:
        region = fb.add_region()
        for c in range(N_CUBINS):
            n = KERNELS_PER_CUBIN
            entry = np.zeros(n, dtype=bool)
            entry[: n // 2] = True
            region.add_element(
                Cubin.build(
                    names=[f"k{c}_{j}" for j in range(n)],
                    code_sizes=np.full(n, 256, dtype=np.int64),
                    entry_mask=entry,
                    launch_edges=[(0, n - 1)],
                ),
                sm_arch=arch,
            )
    n_fn = 64
    symtab = SymbolTable.for_functions(
        [f"fn_{i}" for i in range(n_fn)],
        np.arange(n_fn, dtype=np.int64) * 64,
        np.full(n_fn, 64, dtype=np.int64),
        section_index=1,
    )
    builder = ElfBuilder("libbench_locate.so")
    builder.add_text(n_fn * 64)
    builder.add_fatbin(fb.build())
    builder.set_function_symbols(symtab)
    lib = parse_shared_library(builder.build(), "libbench_locate.so")
    _cache["lib"] = lib
    return lib


def used_sets() -> tuple[frozenset[str], frozenset[str]]:
    """(initial used set, delta addition) - disjoint, deterministic."""
    rng = np.random.default_rng(SEED)
    n_used = int(N_CUBINS * KERNELS_PER_CUBIN * USED_FRACTION)
    n_delta = int(N_CUBINS * KERNELS_PER_CUBIN * DELTA_FRACTION)
    cubin = rng.integers(0, N_CUBINS, n_used + n_delta)
    kernel = rng.integers(0, KERNELS_PER_CUBIN // 2, n_used + n_delta)
    names = [f"k{c}_{j}" for c, j in zip(cubin.tolist(), kernel.tolist())]
    return frozenset(names[:n_used]), frozenset(names[n_used:]) - frozenset(
        names[:n_used]
    )


def _best(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure() -> dict:
    lib = build_bench_library()
    used, delta = used_sets()
    locator = KernelLocator()

    t0 = time.perf_counter()
    index = build_index(lib)
    index_build_s = time.perf_counter() - t0
    cubins = extract_cubins(lib)

    vec_s = _best(lambda: locator.locate(lib, used, 75, index=index))
    py_s = _best(lambda: locate_py(lib, used, 75, cubins=cubins))

    prev_vec = locator.locate(lib, used, 75, index=index)
    prev_py = locate_py(lib, used, 75, cubins=cubins)
    vec_delta_s = _best(
        lambda: locator.locate_delta(lib, prev_vec, delta, index=index)
    )
    py_delta_s = _best(
        lambda: locate_delta_py(lib, prev_py, delta, cubins=cubins)
    )

    # Equivalence on the exact benchmark inputs.
    assert (
        locator.locate(lib, used, 75, index=index).decisions
        == locate_py(lib, used, 75, cubins=cubins).decisions
    )
    assert (
        locator.locate_delta(lib, prev_vec, delta, index=index).decisions
        == locate_delta_py(lib, prev_py, delta, cubins=cubins).decisions
    )

    return {
        "n_elements": index.n,
        "n_kernels": len(index.kernel_names),
        "used_kernels": len(used),
        "delta_kernels": len(delta),
        "index_build_s": round(index_build_s, 6),
        "locate_python_s": round(py_s, 6),
        "locate_vectorized_s": round(vec_s, 6),
        "locate_speedup": round(py_s / vec_s, 2),
        "delta_python_s": round(py_delta_s, 6),
        "delta_vectorized_s": round(vec_delta_s, 6),
        "delta_speedup": round(py_delta_s / vec_delta_s, 2),
    }


def test_vectorized_locate_speedup():
    """Acceptance floor: >= 5x on the 2k-element locate microbench."""
    result = measure()
    assert result["n_elements"] == len(ARCHS) * N_CUBINS
    assert result["locate_speedup"] >= SPEEDUP_FLOOR, result
    assert result["delta_speedup"] >= SPEEDUP_FLOOR, result


def test_process_pool_identity():
    """Acceptance: process-sharded locate/compact == serial, byte-for-byte."""
    from repro.core import serialize
    from repro.core.debloat import Debloater, DebloatOptions
    from repro.frameworks.catalog import get_framework
    from repro.workloads.spec import workload_by_id

    spec = workload_by_id("pytorch/inference/mobilenetv2")
    framework = get_framework("pytorch", scale=0.02)
    fast = dict(verify=False, runtime_comparison_top_n=0)
    serial = Debloater(framework, DebloatOptions(**fast))
    serial_report = serial.debloat(spec)
    sharded = Debloater(
        framework,
        DebloatOptions(
            locate_workers=4, locate_workers_mode="process", **fast
        ),
    )
    sharded_report = sharded.debloat(spec)
    assert serialize.reports_equal(serial_report, sharded_report)
    for soname, d in serial.debloated_libraries.items():
        assert d.lib.data == sharded.debloated_libraries[soname].lib.data


def bench_locate_vectorized(benchmark):
    lib = build_bench_library()
    used, _ = used_sets()
    index = build_index(lib)
    locator = KernelLocator()
    benchmark(lambda: locator.locate(lib, used, 75, index=index))


def bench_locate_python_oracle(benchmark):
    lib = build_bench_library()
    used, _ = used_sets()
    cubins = extract_cubins(lib)
    benchmark(lambda: locate_py(lib, used, 75, cubins=cubins))


def main() -> None:
    result = measure()
    payload = {
        "benchmark": "kernel locate: vectorized index vs pure-Python seed",
        "config": {
            "n_cubins": N_CUBINS,
            "archs": list(ARCHS),
            "kernels_per_cubin": KERNELS_PER_CUBIN,
            "seed": SEED,
            "floor": SPEEDUP_FLOOR,
        },
        "result": result,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()

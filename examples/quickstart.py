"""Quickstart: debloat one ML workload's shared libraries with Negativa-ML.

This is the 60-second tour: generate a PyTorch-like framework build, run
the full pipeline (detection -> location -> compaction -> verification) for
MobileNetV2 inference on a T4, and print what got removed and what it
bought at runtime.

Run:  python examples/quickstart.py
"""

from repro import Debloater, get_framework, workload_by_id
from repro.utils.tables import Table
from repro.utils.units import fmt_mb

SCALE = 0.125  # entity-count scale; byte sizes are always paper-magnitude


def main() -> None:
    # 1. A framework build: ~111 shared libraries, ELF files with CPU code
    #    in .text and multi-architecture GPU code in .nv_fatbin.
    framework = get_framework("pytorch", scale=SCALE)
    workload = workload_by_id("pytorch/inference/mobilenetv2")

    # 2. The whole pipeline in one call.
    report = Debloater(framework).debloat(workload)

    # 3. What got removed.
    print(
        f"{report.workload_id}: {report.n_libraries} libraries, "
        f"{fmt_mb(report.total_file_size)} MB total"
    )
    print(
        f"  file size  -{report.file_reduction_pct:.0f}%   "
        f"CPU code -{report.cpu_reduction_pct:.0f}%   "
        f"GPU code -{report.gpu_reduction_pct:.0f}%   "
        f"fatbin elements -{report.element_reduction_pct:.0f}%"
    )

    table = Table(["Library", "File MB", "File red%", "GPU red%"],
                  title="Top bloat contributors")
    for lib in report.top_by_file_reduction(6):
        table.add_row(
            lib.soname,
            fmt_mb(lib.file_size),
            f"{lib.file_reduction_pct:.0f}",
            f"{lib.gpu_reduction_pct:.0f}" if lib.has_gpu_code else "-",
        )
    print()
    print(table.render())

    # 4. Correctness: the workload re-ran on debloated libraries with
    #    identical output.
    print()
    print(f"verification: {report.verification}")

    # 5. What it bought (paper Table 5 flow: top-8 libraries replaced).
    base, after = report.baseline, report.debloated_run
    print(
        f"runtime: exec {base.execution_time_s:.1f}s -> "
        f"{after.execution_time_s:.1f}s, "
        f"peak CPU {base.peak_cpu_mem_mb:,.0f} -> "
        f"{after.peak_cpu_mem_mb:,.0f} MB, "
        f"peak GPU {base.peak_gpu_mem_mb:,.0f} -> "
        f"{after.peak_gpu_mem_mb:,.0f} MB"
    )


if __name__ == "__main__":
    main()

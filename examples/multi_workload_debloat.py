"""Multi-workload debloating: one library set serving several workloads.

The paper's discussion (§5) observes that "code unused by one workload is
likely unnecessary for others as well".  This extension debloats against
the *union* of several workloads' usage, verifies each workload still runs
with identical output, and shows how quickly the needed set saturates as
workloads are added (most of what a new workload needs was already kept).

Run:  python examples/multi_workload_debloat.py
"""

from repro import DebloatOptions, workload_by_id
from repro.api import AdmitRequest, DebloatEngine, DebloatRequest, EngineConfig
from repro.utils.tables import Table

SCALE = 0.125

WORKLOAD_IDS = (
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
    "pytorch/inference/transformer",
)


def main() -> None:
    specs = [workload_by_id(wid) for wid in WORKLOAD_IDS]
    config = EngineConfig(
        scale=SCALE,
        options=DebloatOptions(runtime_comparison_top_n=0),
        use_cache=False,
    )
    with DebloatEngine(config) as engine:
        # Per-workload reductions for reference.
        solo = {}
        for spec in specs:
            report = engine.debloat(DebloatRequest(spec=spec)).report
            solo[spec.workload_id] = report.file_reduction_pct

        # The union build: admit every workload into the engine's pytorch
        # store shard, then read the shard's debloat_many-shaped report.
        for spec in specs:
            engine.admit(AdmitRequest(spec=spec))
        multi = engine.report("pytorch").union_report

    table = Table(
        ["Workload", "Solo file red %", "New kernels it added"],
        title="Usage saturation across workloads (shared debloated build)",
    )
    for (wid, new_kernels) in multi.saturation_series():
        table.add_row(wid, f"{solo[wid]:.1f}", new_kernels)
    print(table.render())
    print()
    print(
        f"union debloat: {multi.file_reduction_pct:.1f}% file reduction "
        f"across {len(multi.libraries)} libraries, all "
        f"{len(multi.verifications)} workloads verified: {multi.all_verified}"
    )
    first, rest = multi.marginal_new_kernels[0], multi.marginal_new_kernels[1:]
    print(
        f"saturation: the first workload pinned {first} kernels; each later "
        f"workload added only {sum(rest) / len(rest):.0f} on average."
    )


if __name__ == "__main__":
    main()

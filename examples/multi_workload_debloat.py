"""Multi-workload debloating: one library set serving several workloads.

The paper's discussion (§5) observes that "code unused by one workload is
likely unnecessary for others as well".  This extension debloats against
the *union* of several workloads' usage, verifies each workload still runs
with identical output, and shows how quickly the needed set saturates as
workloads are added (most of what a new workload needs was already kept).

Run:  python examples/multi_workload_debloat.py
"""

from repro import DebloatOptions, Debloater, get_framework, workload_by_id
from repro.utils.tables import Table

SCALE = 0.125

WORKLOAD_IDS = (
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
    "pytorch/inference/transformer",
)


def main() -> None:
    framework = get_framework("pytorch", scale=SCALE)
    specs = [workload_by_id(wid) for wid in WORKLOAD_IDS]

    # Per-workload reductions for reference.
    solo = {}
    for spec in specs:
        report = Debloater(
            framework, DebloatOptions(runtime_comparison_top_n=0)
        ).debloat(spec)
        solo[spec.workload_id] = report.file_reduction_pct

    multi = Debloater(
        framework, DebloatOptions(runtime_comparison_top_n=0)
    ).debloat_many(specs)

    table = Table(
        ["Workload", "Solo file red %", "New kernels it added"],
        title="Usage saturation across workloads (shared debloated build)",
    )
    for (wid, new_kernels) in multi.saturation_series():
        table.add_row(wid, f"{solo[wid]:.1f}", new_kernels)
    print(table.render())
    print()
    print(
        f"union debloat: {multi.file_reduction_pct:.1f}% file reduction "
        f"across {len(multi.libraries)} libraries, all "
        f"{len(multi.verifications)} workloads verified: {multi.all_verified}"
    )
    first, rest = multi.marginal_new_kernels[0], multi.marginal_new_kernels[1:]
    print(
        f"saturation: the first workload pinned {first} kernels; each later "
        f"workload added only {sum(rest) / len(rest):.0f} on average."
    )


if __name__ == "__main__":
    main()

"""Deterministic fault injection against a live debloat server.

The serving tier's failure story - transactional rollback, retry with
backoff, typed failures, quarantine - is only trustworthy if it can be
*reproduced*.  This example activates a seeded :class:`FaultPlan` that
kills the first worker attempt, faults one union merge mid-transaction,
and faults one per-library delta pass, then admits a catalog of workloads
through a server and shows that every arrival still lands (after retries)
with the store byte-identical to a fault-free run.

Run:  python examples/fault_injection.py

Try a different mix by editing PLAN below, or run the serving CLI under a
plan:  python -m repro.tools.cli serve --framework pytorch \
           --fault-plan "seed=7;store.merge@2;worker.pre_merge%0.1"
"""

from repro.core.debloat import DebloatOptions
from repro.errors import AdmissionError
from repro.frameworks.catalog import get_framework
from repro.serving import DebloatServer, DebloatStore, RetryPolicy
from repro.testing import fault_plan, faults
from repro.workloads.spec import TABLE1_WORKLOADS

SCALE = 0.125

#: One worker death, one mid-merge fault, one mid-delta fault - each
#: rolls the touched epoch back and is retried.  Same seed, same firing
#: pattern, every run.
PLAN = "seed=42;worker.pre_merge@1;store.merge@2;store.process@30"

OPTIONS = DebloatOptions(verify=False, runtime_comparison_top_n=0)


def main() -> None:
    specs = [w for w in TABLE1_WORKLOADS if w.framework == "pytorch"]
    framework = get_framework("pytorch", scale=SCALE)

    # Fault-free reference run.
    reference = DebloatStore(framework, OPTIONS)
    for spec in specs:
        reference.admit(spec)

    plan = faults.parse_plan(PLAN)
    store = DebloatStore(framework, OPTIONS)
    retry = RetryPolicy(max_attempts=3, base_backoff_s=0.05)
    with fault_plan(plan):
        with DebloatServer(store, workers=2, retry=retry) as server:
            tickets = [(s, server.submit(s)) for s in specs]
            for spec, ticket in tickets:
                try:
                    ticket.result(timeout=300)
                    print(f"  admitted {spec.workload_id} "
                          f"({ticket.latency_s * 1e3:.0f} ms)")
                except AdmissionError as err:
                    print(f"  FAILED   {spec.workload_id}: {err}")
            stats = server.stats()
            health = server.health()

    print()
    print(f"injected faults fired: {plan.stats()}")
    print(f"retried attempts: {stats['retries']}, "
          f"rolled-back transactions: {stats['rollbacks']} "
          f"({stats['rollback_recompactions']} recompactions discarded), "
          f"failed admissions: {stats['failed']}")
    print(f"server health: {health['state']}, "
          f"store last error: {health['store']['last_error']}")

    clean = reference.debloated_libraries()
    recovered = store.debloated_libraries()
    identical = sorted(clean) == sorted(recovered) and all(
        clean[s].lib.data == recovered[s].lib.data for s in clean
    )
    print(f"end state byte-identical to fault-free run: {identical}")


if __name__ == "__main__":
    main()

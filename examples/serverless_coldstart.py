"""Serverless cold-start study: where debloating buys the most latency.

The paper notes the execution-time improvement "is especially impactful for
tasks sensitive to cold start latency, such as serverless ML applications"
(§4.4): the absolute saving is roughly constant (library load time), so
short-lived invocations gain a large *percentage*.  This example quantifies
that across every inference workload and contrasts it with training.

Run:  python examples/serverless_coldstart.py
"""

from repro import TABLE1_WORKLOADS, Debloater, get_framework
from repro.utils.tables import Table

SCALE = 0.125


def main() -> None:
    table = Table(
        ["Workload", "Kind", "Cold start s", "Debloated s", "Saved s",
         "Saved %"],
        title="Cold-start latency before/after debloating (top-8 replaced)",
    )
    rows = []
    for spec in TABLE1_WORKLOADS:
        framework = get_framework(spec.framework, scale=SCALE)
        report = Debloater(framework).debloat(spec)
        base = report.baseline.execution_time_s
        after = report.debloated_run.execution_time_s
        rows.append((spec, base, after))

    rows.sort(key=lambda r: -(r[1] - r[2]) / r[1])
    inference_pcts, training_pcts = [], []
    for spec, base, after in rows:
        saved = base - after
        pct = 100 * saved / base
        table.add_row(
            spec.workload_id, spec.operation,
            f"{base:,.1f}", f"{after:,.1f}", f"{saved:.1f}", f"{pct:.1f}",
        )
        (inference_pcts if spec.operation == "inference" else
         training_pcts).append(pct)

    print(table.render())
    print()
    print(
        f"mean saving: inference {sum(inference_pcts)/len(inference_pcts):.1f}% "
        f"vs training {sum(training_pcts)/len(training_pcts):.1f}% - "
        "the constant absolute saving is the serverless win."
    )


if __name__ == "__main__":
    main()

"""Edge-fleet deployment: per-device-architecture debloating.

The paper's discussion (§5): library file-size reduction relieves the
storage/bandwidth bottlenecks of edge data centers, and most GPU bloat is
*architecture-induced* (Fig. 7) - each device class needs only its own
fatbin elements.  This example debloats the same inference workload once
per device architecture in a heterogeneous fleet and totals the bytes that
no longer have to be shipped and stored.

Run:  python examples/edge_deployment.py
"""

from repro import Debloater, get_framework, workload_by_id
from repro.utils.tables import Table
from repro.utils.units import GB

SCALE = 0.125

#: (device catalog key, number of edge nodes of that class)
FLEET = (
    ("t4", 40),
    ("a100-40gb", 12),
    ("v100", 24),
    ("rtx3090", 8),
)


def main() -> None:
    base_spec = workload_by_id("pytorch/inference/mobilenetv2")
    framework = get_framework("pytorch", scale=SCALE)

    table = Table(
        ["Device class", "Nodes", "Image MB", "Debloated MB", "Red %",
         "Fleet savings GB"],
        title="Per-architecture debloating across an edge fleet",
    )
    total_saved = 0.0
    for device, nodes in FLEET:
        spec = base_spec.variant(device_name=device)
        report = Debloater(framework).debloat(spec)
        before = report.total_file_size / (1 << 20)
        after = report.total_file_size_after / (1 << 20)
        saved_gb = (report.total_file_size - report.total_file_size_after) * (
            nodes / GB
        )
        total_saved += saved_gb
        table.add_row(
            device, nodes, f"{before:,.0f}", f"{after:,.0f}",
            f"{report.file_reduction_pct:.0f}", f"{saved_gb:,.1f}",
        )
    print(table.render())
    print()
    print(
        f"total storage/bandwidth no longer shipped to the fleet: "
        f"{total_saved:,.1f} GB"
    )
    print(
        "each device class keeps only its own sm_XX fatbin elements - the "
        "paper's 'software bloat can stem from hardware' in deployment form."
    )


if __name__ == "__main__":
    main()

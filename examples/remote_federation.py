"""Distributed federation: remote shard workers and warm snapshots.

Pushes the store federation out of process: two shard workers speak the
length-prefixed RDBC protocol, the federation routes each framework to a
worker by consistent hash of its build fingerprint, and every committed
mutation is auto-exported.  The example then SIGKILLs a worker to show
the recovery contract (typed ``RemoteShardError``, respawn, ledger
replay, byte-identical image) and finishes with the snapshot story: a
fresh replica imports the export and serves with **zero workload runs**.

Run:  python examples/remote_federation.py
"""

import os
import signal
import tempfile
import time

import repro.workloads.runner as runner
from repro.api import AdmitRequest, DebloatEngine, EngineConfig
from repro.core.debloat import DebloatOptions
from repro.errors import TransientError

SCALE = 0.125

WORKLOADS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
    "tensorflow/train/mobilenetv2",
]

OPTIONS = DebloatOptions(runtime_comparison_top_n=0)


def admit_with_retry(engine: DebloatEngine, workload_id: str):
    """One manual retry: what a serving RetryPolicy does automatically."""
    for attempt in (1, 2):
        try:
            return engine.admit(AdmitRequest(workload_id=workload_id))
        except TransientError as exc:
            print(f"  attempt {attempt}: {type(exc).__name__}: {exc}")
            time.sleep(0.1)
    raise AssertionError("second attempt should have recovered")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-remote-fed-") as root:
        snapdir = os.path.join(root, "snapshots")
        engine = DebloatEngine(
            EngineConfig(
                scale=SCALE,
                options=OPTIONS,
                remote_shards=2,
                snapshot_dir=snapdir,
            )
        ).open()
        try:
            print("== mixed-framework admissions over two shard workers ==")
            for workload_id in WORKLOADS:
                result = engine.admit(AdmitRequest(workload_id=workload_id))
                route = engine.federation.route_for(result.framework)
                print(f"  {workload_id:<32} -> {route}  "
                      f"(generation {result.generation})")

            remote = engine.health()["remote"]
            victim_name = sorted(remote["shards"])[0]
            victim = remote["shards"][victim_name]
            print(f"\n== SIGKILL {victim_name} (pid {victim['pid']}) ==")
            os.kill(victim["pid"], signal.SIGKILL)
            time.sleep(0.2)

            # The next touch surfaces a typed transient error; the retry
            # respawns the worker and replays its admissions ledger.
            result = admit_with_retry(engine, WORKLOADS[0])
            remote = engine.health()["remote"]
            print(f"  recovered: restarts={remote['restarts']} "
                  f"alive={remote['alive']}/{remote['workers']} "
                  f"(re-admission served at generation "
                  f"{result.generation})")

            print("\n== snapshot export ==")
            export = engine.export_snapshot().value
            for entry in export["manifest"]["shards"]:
                print(f"  {entry['file']:<28} "
                      f"{entry['bytes'] / 1e6:6.2f} MB  "
                      f"generation {entry['generation']}")
        finally:
            engine.close()

        print("\n== fresh replica imports the snapshot, zero runs ==")
        replica = DebloatEngine(
            EngineConfig(scale=SCALE, options=OPTIONS)
        ).open()
        original_run = runner.WorkloadRunner.run

        def refuse(self):
            raise AssertionError("workload ran during snapshot import")

        runner.WorkloadRunner.run = refuse
        try:
            start = time.perf_counter()
            imported = replica.import_snapshot(export["directory"])
            wall = time.perf_counter() - start
        finally:
            runner.WorkloadRunner.run = original_run

        reexport = replica.export_snapshot(
            os.path.join(root, "reexport")
        ).value
        for entry in export["manifest"]["shards"]:
            source = os.path.join(export["directory"], entry["file"])
            copy = os.path.join(reexport["directory"], entry["file"])
            with open(source, "rb") as a, open(copy, "rb") as b:
                assert a.read() == b.read(), entry["framework"]
        replica.close()

        print(f"  imported {imported.value['generations']} "
              f"in {wall:.2f}s - re-export byte-identical, "
              "no workload executed")


if __name__ == "__main__":
    main()

"""Drive the HTTP/JSON serving tier: admit, health, metrics, snapshot.

Boots the asyncio front-end in-process on an ephemeral port (the same
server ``negativa-ml serve --http :8000`` runs standalone), then acts as
a client against it with nothing but the standard library: concurrent
admissions through the coalescing window, a health probe, and the
Prometheus metrics scrape.  Shed responses (503 + ``Retry-After``) are
retried, demonstrating the backpressure contract from the client side.

Run:  python examples/http_client.py
"""

import http.client
import json
import threading
import time

from repro.api import DebloatEngine, EngineConfig, HttpConfig
from repro.serving.http import BackgroundHttpServer

SCALE = 0.05

WORKLOADS = [
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
    "pytorch/inference/transformer",
]


def call(port: int, method: str, path: str, payload: dict | None = None):
    """One HTTP exchange -> (status, headers, parsed-or-raw body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body)
        resp = conn.getresponse()
        raw = resp.read()
        headers = {k.lower(): v for k, v in resp.getheaders()}
        if headers.get("content-type", "").startswith("application/json"):
            return resp.status, headers, json.loads(raw)
        return resp.status, headers, raw.decode()
    finally:
        conn.close()


def admit(port: int, workload_id: str, results: list) -> None:
    """POST /v1/admit, honoring 503 + Retry-After shed responses."""
    while True:
        status, headers, body = call(
            port, "POST", "/v1/admit", {"workload_id": workload_id}
        )
        if status == 503:
            time.sleep(float(headers.get("retry-after", "1")))
            continue
        assert status == 200, (status, body)
        results.append(body)
        return


def main() -> None:
    config = EngineConfig(
        scale=SCALE,
        workers=2,
        batch_max=8,
        http=HttpConfig(port=0, coalesce_window_s=0.01, queue_bound=16),
    )
    engine = DebloatEngine(config)
    with BackgroundHttpServer(engine, config.http) as bg:
        print(f"serving on http://{bg.host}:{bg.port}\n")

        results: list[dict] = []
        threads = [
            threading.Thread(target=admit, args=(bg.port, wid, results))
            for wid in WORKLOADS
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        print(f"{'Workload':34} {'Gen':>3} {'New kernels':>11} "
              f"{'Latency ms':>10} {'Source':>6}")
        for res in sorted(results, key=lambda r: r["generation"]):
            print(f"{res['workload_id']:34} {res['generation']:>3} "
                  f"{res['new_kernels']:>11,} "
                  f"{res['latency_s'] * 1e3:>10,.0f} "
                  f"{res['cache_source']:>6}")

        status, _, health = call(bg.port, "GET", "/healthz")
        print(f"\n/healthz -> {status}: state={health['state']}, "
              f"served={health['served']}, in_flight={health['in_flight']}")

        _, _, snap = call(bg.port, "GET", "/v1/snapshot")
        shard = snap["shards"]["pytorch"]
        print(f"/v1/snapshot -> generation {shard['generation']}, "
              f"{shard['libraries']} libraries, "
              f"{shard['file_reduction_pct']}% file reduction")

        _, _, metrics = call(bg.port, "GET", "/metrics")
        print("\nselected /metrics lines:")
        for line in metrics.splitlines():
            if line.startswith((
                "negativa_admissions_",
                "negativa_coalesce",
                "negativa_admission_latency_seconds_count",
            )):
                print(f"  {line}")
    print("\ndrained cleanly")


if __name__ == "__main__":
    main()

"""Binary inspection: walk an ML shared library the way Negativa-ML does.

Shows the tool's analysis surface on one library: ELF sections, function
symbols, fatbin elements per GPU architecture, cuobjdump-style extraction,
and a single-kernel location query - all without any source code (the
library is flagged proprietary, like cuDNN/cuBLAS in the paper).

Run:  python examples/inspect_binaries.py
"""

from repro import get_framework
from repro.fatbin.cuobjdump import extract_cubins, find_kernel
from repro.tools.inspect import describe_library, kernel_listing, readelf_sections

SCALE = 0.125


def main() -> None:
    framework = get_framework("pytorch", scale=SCALE)
    lib = framework.libraries["libcublasLt.so.12"]  # proprietary: binary only

    print(describe_library(lib))
    print()
    print(readelf_sections(lib))
    print()
    print("cuobjdump-style extraction (first cubins):")
    print(kernel_listing(lib, limit=8))

    # Locate one kernel the way the locator does: find its cubins, map the
    # 1-based extraction index back to fatbin elements and file ranges.
    some_kernel = extract_cubins(lib)[0].entry_kernel_names[0]
    hits = find_kernel(lib, some_kernel)
    print()
    print(f"kernel {some_kernel!r} lives in {len(hits)} cubins "
          f"(one per architecture):")
    image = lib.fatbin
    for hit in hits:
        element = image.element_by_index(hit.index)
        rng = element.file_range
        print(
            f"  element {hit.index:4d}  sm_{hit.sm_arch}  file range "
            f"[{rng.start:#x}, {rng.stop:#x})  ({len(rng):,} bytes)"
        )
    print()
    print(
        "retaining a kernel means retaining its whole element - including "
        "the GPU-launching kernels compiled into the same cubin."
    )


if __name__ == "__main__":
    main()

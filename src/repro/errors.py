"""Exception hierarchy for the Negativa-ML reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures without also swallowing programming errors.  The
hierarchy mirrors the subsystems: binary-format errors (ELF / fatbin), runtime
errors from the simulated CUDA driver and loader, and debloating-pipeline
errors (most importantly :class:`MissingKernelError` /
:class:`MissingFunctionError`, which are what a *broken* debloat produces when
the workload is re-run for verification).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


# ---------------------------------------------------------------------------
# Binary container errors
# ---------------------------------------------------------------------------


class BinaryFormatError(ReproError):
    """A binary container (ELF or fatbin) is malformed or unsupported."""


class ElfFormatError(BinaryFormatError):
    """An ELF image violates the ELF64 structure this library understands."""


class FatbinFormatError(BinaryFormatError):
    """A ``.nv_fatbin`` payload violates the fatbin container structure."""


class CubinFormatError(FatbinFormatError):
    """A cubin payload inside a fatbin element is malformed."""


# ---------------------------------------------------------------------------
# Simulated runtime errors
# ---------------------------------------------------------------------------


class CudaError(ReproError):
    """Base class for simulated CUDA driver errors."""


class CudaArchMismatchError(CudaError):
    """No fatbin element in a module matches the device architecture."""


class MissingKernelError(CudaError):
    """``cuModuleGetFunction`` could not resolve a kernel name.

    After debloating, this is the failure mode of an over-aggressive locator
    that removed an element still needed by the workload.
    """


class DoubleFreeError(CudaError):
    """A device allocation was freed twice."""


class OutOfMemoryError(CudaError):
    """A host or device allocation exceeded the configured capacity."""


class LoaderError(ReproError):
    """Base class for dynamic-loader failures."""


class LibraryNotFoundError(LoaderError):
    """The process image does not contain the requested library."""


class SymbolResolutionError(LoaderError):
    """A dynamic symbol could not be resolved in any loaded library."""


class MissingFunctionError(LoaderError):
    """A call targeted a CPU function whose code bytes were removed.

    Raised when a workload, re-run against a debloated library, calls into a
    zeroed file range - i.e. the CPU-side analogue of
    :class:`MissingKernelError`.
    """


# ---------------------------------------------------------------------------
# Pipeline errors
# ---------------------------------------------------------------------------


class DebloatError(ReproError):
    """Base class for errors in the Negativa-ML debloating pipeline."""


class DetectionError(DebloatError):
    """The kernel/function detector could not attach or record."""


class LocationError(DebloatError):
    """The locator could not map a used kernel/function to file ranges."""


class CompactionError(DebloatError):
    """Compaction produced an inconsistent library."""


class VerificationError(DebloatError):
    """The debloated workload output differs from the original output."""


class StoreInvariantError(DebloatError):
    """A serving-store epoch failed its commit-time consistency check.

    Raised by :meth:`~repro.serving.store.DebloatStore.validate_invariants`
    when the union bookkeeping, library map, and admission ledger disagree.
    A transactional admission that trips this rolls back to the previous
    epoch before re-raising, so the store a caller observes afterwards is
    always the last consistent one.
    """


class BlockStoreError(DebloatError):
    """The content-addressed block store was misused or is inconsistent.

    Raised by :mod:`repro.storage` on double-release of a manifest, a
    digest collision with mismatched payload length, or a
    :meth:`~repro.storage.blockstore.BlockStore.validate_invariants`
    failure (refcount != live referents, leaked or dangling blocks).
    """


class ConfigurationError(ReproError):
    """A spec or configuration object is internally inconsistent."""


class UsageError(ConfigurationError):
    """The caller passed an unusable argument set to a pipeline entry point.

    Distinct from :class:`VerificationError` (a *result* of running the
    pipeline): a usage error means the request itself was malformed - an
    empty workload list, a workload targeting a different framework than
    the debloater holds, or a mixed-architecture union - and nothing was
    executed.
    """


# ---------------------------------------------------------------------------
# Fault tolerance / serving errors
# ---------------------------------------------------------------------------


class TransientError(ReproError):
    """A failure that is expected to succeed on retry.

    The serving tier's :class:`~repro.utils.retry.RetryPolicy` retries
    these (and OS-level errors); everything else - usage errors,
    verification failures - is permanent and surfaces immediately.
    """


class FaultError(TransientError):
    """An injected failure from the deterministic fault harness.

    Raised by :func:`repro.testing.faults.check` at an instrumented fault
    site when the active :class:`~repro.testing.faults.FaultPlan` fires.
    Subclasses :class:`TransientError` so every recovery path (retry,
    rollback, quarantine, sweeper survival) treats an injected fault
    exactly like the real transient failure it stands in for.
    """

    def __init__(self, site: str, ordinal: int = 0, kind: str = "fault"):
        super().__init__(f"injected {kind} at {site} (ordinal {ordinal})")
        self.site = site
        self.ordinal = ordinal
        self.kind = kind


class RemoteShardError(TransientError):
    """A remote shard process died or its connection dropped mid-call.

    Raised by :class:`~repro.serving.remote.RemoteShardProcess` whenever
    the length-prefixed transport fails - the worker was SIGKILLed, its
    pipe closed, a frame was truncated, or an injected ``remote.send`` /
    ``remote.recv`` fault fired.  Subclasses :class:`TransientError`
    because the supervisor restarts the worker (re-importing its last
    exported snapshot), so the retry policy re-drives the call instead of
    surfacing a raw ``OSError`` to the caller.
    """

    def __init__(self, shard: str, message: str):
        super().__init__(f"remote shard {shard!r}: {message}")
        self.shard = shard


class AdmissionError(ReproError):
    """An admission failed permanently after exhausting its retry budget.

    Carries the workload, the attempt count, and the last underlying
    failure (also chained as ``__cause__``), so a ticket waiter can tell a
    retried-then-dead admission apart from a malformed request
    (:class:`UsageError`) or a closed server (:class:`ServerClosedError`).
    """

    def __init__(
        self, workload_id: str, attempts: int, cause: BaseException
    ):
        super().__init__(
            f"admission of {workload_id} failed after {attempts} "
            f"attempt(s): {type(cause).__name__}: {cause}"
        )
        self.workload_id = workload_id
        self.attempts = attempts
        self.cause = cause
        self.__cause__ = cause


class ProtocolError(UsageError):
    """A wire request (HTTP/JSON) is malformed or violates the schema.

    Raised by :mod:`repro.serving.protocol` while decoding request bodies
    - unknown workload ids, wrong field types, unparseable JSON.  The
    HTTP tier maps it to a 400 response; nothing was admitted.
    """


class ServerClosedError(UsageError):
    """The serving queue is closed: the request was rejected or abandoned.

    Raised by ``submit()`` on a closed server, and by
    :meth:`~repro.serving.server.AdmissionTicket.result` for tickets that
    were still pending when ``close()`` drained the queue - a closed
    server never strands a waiter.
    """


class TicketTimeoutError(ReproError, TimeoutError):
    """An :class:`~repro.serving.server.AdmissionTicket` deadline expired.

    Subclasses :class:`TimeoutError` so pre-existing callers that caught
    the builtin keep working; the ticket itself stays valid and a later
    ``result()`` call can still succeed once the admission lands.
    """


# ---------------------------------------------------------------------------
# Cache / serialization errors
# ---------------------------------------------------------------------------


class CacheError(ReproError):
    """Base class for report-serialization and pipeline-cache errors.

    Callers that treat a cache as best-effort (the disk tier of the pipeline
    cache) catch this and fall back to recomputation; nothing in the cache
    path is allowed to surface a :class:`CacheError` to the user.
    """


class CacheDecodeError(CacheError):
    """A serialized report container is truncated, corrupt, or malformed."""


class CacheSchemaError(CacheDecodeError):
    """A serialized report uses a different (older/newer) schema version."""


# ---------------------------------------------------------------------------
# Snapshot (store image) errors
# ---------------------------------------------------------------------------


class SnapshotError(ReproError):
    """A store snapshot image on disk is unusable.

    Unlike :class:`CacheError` (where the fallback is silent
    recomputation), a snapshot is an explicit import request: a missing
    manifest, a digest mismatch, or a corrupt shard container surfaces to
    the caller - except during crash recovery, where the supervisor falls
    back to a cold ledger replay.
    """


class SnapshotSchemaError(SnapshotError):
    """A snapshot image was written under a different schema version."""


# ---------------------------------------------------------------------------
# Write-ahead log (durability) errors
# ---------------------------------------------------------------------------


class WalError(ReproError):
    """A write-ahead log operation failed.

    Raised for problems that are *not* recoverable by scanning: an append
    to a closed log, an unknown operation kind in a record, or a replay
    that diverged from the generation recorded at commit time.  Torn or
    corrupt tails are **not** errors - recovery silently keeps the longest
    valid prefix and quarantines the rest (see
    :func:`repro.serving.wal.scan_wal`).
    """


class WalReplayError(WalError, TransientError):
    """Replaying a WAL record failed to reproduce the committed state.

    Subclasses :class:`TransientError` because the most common causes -
    an injected ``wal.replay`` fault or a cold pipeline cache mid-flight -
    can succeed on a fresh :meth:`~repro.api.engine.DebloatEngine.open`.
    """

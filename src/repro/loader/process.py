"""Process image: loaded libraries, host memory, CPU-function execution.

The memory semantics implement the paper's runtime findings mechanistically:

* **eager** library loading keeps every retained file byte host-resident, so
  debloating (which turns removed ranges into holes) directly shrinks peak
  CPU memory (Table 5);
* **lazy** loading keeps only structural bytes plus code actually touched,
  so debloating barely moves CPU memory (Table 7, lazy rows);
* dlopen I/O time always covers the retained file bytes (prefetch), so
  execution-time savings are proportional to removed bytes in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.cuda.driver import LoadingMode
from repro.cuda.memory import MemoryMeter
from repro.elf.image import SharedLibrary
from repro.errors import LibraryNotFoundError, MissingFunctionError
from repro.loader.profiler import FunctionProfiler


@dataclass
class LoadedLibrary:
    """Per-library loader state."""

    lib: SharedLibrary
    resident_bytes: int
    used_mask: np.ndarray  # bool per function symbol
    #: Functions first executed before steady state (imports/initialization).
    startup_mask: np.ndarray | None = None
    touched_code_bytes: int = 0

    @property
    def soname(self) -> str:
        return self.lib.soname


@dataclass
class ProcessImage:
    """A simulated process: the loader's view of an ML workload."""

    clock: VirtualClock = field(default_factory=VirtualClock)
    costs: CostModel = DEFAULT_COSTS
    loading_mode: LoadingMode = LoadingMode.EAGER

    def __post_init__(self) -> None:
        self.host_memory = MemoryMeter("host")
        self.host_memory.allocate("interpreter", self.costs.interpreter_host_bytes)
        self.libraries: dict[str, LoadedLibrary] = {}
        self.profiler: FunctionProfiler | None = None
        #: False until the workload enters its iteration loop; functions
        #: first used before then are startup/initialization code - the
        #: "used bloat" candidates of paper SS5.
        self.steady_state = False

    # -- profiling ------------------------------------------------------------------

    def attach_profiler(self, profiler: FunctionProfiler) -> None:
        self.profiler = profiler
        self.clock.advance(profiler.attach_cost)

    def detach_profiler(self) -> None:
        self.profiler = None

    # -- library loading -----------------------------------------------------------------

    def load_library(self, lib: SharedLibrary) -> LoadedLibrary:
        """dlopen: charge I/O + link time, account residency by mode."""
        existing = self.libraries.get(lib.soname)
        if existing is not None:
            return existing

        removed = int(lib.tags.get("removed_bytes_total", 0))
        retained_file_bytes = lib.file_size - removed

        io_time = retained_file_bytes / self.costs.disk_bandwidth
        link_time = self.costs.link_per_symbol * len(lib.symtab)
        self.clock.advance(self.costs.dlopen_fixed + io_time + link_time)

        if self.loading_mode is LoadingMode.EAGER:
            resident = retained_file_bytes
        else:
            resident = min(lib.data.materialized_size, retained_file_bytes)
        self.host_memory.allocate(f"lib:{lib.soname}", resident)

        loaded = LoadedLibrary(
            lib=lib,
            resident_bytes=resident,
            used_mask=np.zeros(len(lib.symtab), dtype=bool),
            startup_mask=np.zeros(len(lib.symtab), dtype=bool),
        )
        self.libraries[lib.soname] = loaded
        return loaded

    def require(self, soname: str) -> LoadedLibrary:
        loaded = self.libraries.get(soname)
        if loaded is None:
            raise LibraryNotFoundError(f"{soname} is not loaded in this process")
        return loaded

    # -- CPU execution ----------------------------------------------------------------------

    def call_functions(
        self,
        soname: str,
        indices: np.ndarray,
        cpu_seconds: float = 0.0,
        calls: int = 1,
    ) -> None:
        """Execute the functions at ``indices`` in ``soname``.

        ``indices`` are symbol-table indices; ``cpu_seconds`` is the total
        host compute charged (scaled by the profiler slowdown when attached,
        modelling binary-instrumentation overhead).  Raises
        :class:`MissingFunctionError` if any target was removed by
        debloating - the CPU-side verification signal.
        """
        loaded = self.require(soname)
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            if indices.min() < 0 or indices.max() >= len(loaded.used_mask):
                raise MissingFunctionError(
                    f"{soname}: call to out-of-range function index"
                )
            removed_mask = loaded.lib.tags.get("removed_function_mask")
            if removed_mask is not None:
                hit = removed_mask[indices]
                if hit.any():
                    bad = int(indices[hit][0])
                    name = loaded.lib.symtab.names[bad]
                    raise MissingFunctionError(
                        f"{soname}: call into removed function {name!r} "
                        f"(zeroed by debloating)"
                    )
            fresh = indices[~loaded.used_mask[indices]]
            if fresh.size:
                loaded.used_mask[fresh] = True
                if not self.steady_state and loaded.startup_mask is not None:
                    loaded.startup_mask[fresh] = True
                if self.loading_mode is LoadingMode.LAZY:
                    touched = int(
                        loaded.lib.symtab.sizes[fresh].astype(np.int64).sum()
                    )
                    loaded.touched_code_bytes += touched
                    self.host_memory.allocate(f"code:{soname}", touched)
                if self.profiler is not None:
                    self.profiler.record(soname, fresh)

        slowdown = (
            self.costs.cpu_profiler_slowdown if self.profiler is not None else 1.0
        )
        if cpu_seconds:
            self.clock.advance(cpu_seconds * slowdown)

    def mark_steady_state(self) -> None:
        """Called by the runner when the iteration loop begins."""
        self.steady_state = True

    # -- reporting --------------------------------------------------------------------------

    def used_function_indices(self) -> dict[str, np.ndarray]:
        """Per-library indices of functions executed so far."""
        return {
            soname: np.flatnonzero(loaded.used_mask)
            for soname, loaded in self.libraries.items()
        }

    def resident_library_bytes(self) -> int:
        return sum(loaded.resident_bytes for loaded in self.libraries.values())

"""Dynamic loader and process image simulation.

Loading a shared library costs I/O time (the whole retained file is read -
the mechanism behind the paper's roughly constant absolute execution-time
savings) and host memory (eager mapping keeps all retained bytes resident;
lazy mapping keeps structural bytes plus touched code only - the mechanism
behind Table 7's eager-vs-lazy CPU-memory contrast).  CPU function calls
flow through :meth:`ProcessImage.call_functions`, which enforces
debloat correctness (calling a removed function raises
:class:`~repro.errors.MissingFunctionError`) and feeds the CPU-side
function profiler used by Negativa's detection phase.
"""

from repro.loader.linker import resolve_symbol
from repro.loader.process import LoadedLibrary, ProcessImage
from repro.loader.profiler import FunctionProfiler

__all__ = ["FunctionProfiler", "LoadedLibrary", "ProcessImage", "resolve_symbol"]

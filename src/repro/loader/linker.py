"""Cross-library dynamic symbol resolution.

A small ``ld.so``-style resolver used by tools and tests: given a set of
loaded libraries, find which library defines a global function symbol.
Load order matters (first definition wins), mirroring ELF interposition.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.elf import constants as C
from repro.elf.image import SharedLibrary
from repro.errors import SymbolResolutionError


def resolve_symbol(
    libraries: Iterable[SharedLibrary], name: str
) -> tuple[SharedLibrary, int]:
    """Resolve ``name`` to (defining library, symbol index).

    Only global (or weak, as fallback) defined symbols participate, like the
    dynamic linker's lookup rules.
    """
    weak_hit: tuple[SharedLibrary, int] | None = None
    for lib in libraries:
        symtab = lib.symtab
        try:
            idx = symtab.index_of(name)
        except KeyError:
            continue
        info = int(symtab.entries["st_info"][idx])
        shndx = int(symtab.entries["st_shndx"][idx])
        if shndx == C.SHN_UNDEF:
            continue
        bind = C.st_bind(info)
        if bind == C.STB_GLOBAL:
            return lib, idx
        if bind == C.STB_WEAK and weak_hit is None:
            weak_hit = (lib, idx)
    if weak_hit is not None:
        return weak_hit
    raise SymbolResolutionError(f"undefined symbol: {name}")

"""CPU-function usage profiler (Negativa's CPU detection phase).

Negativa (the CPU-only predecessor tool the paper extends) profiles the
workload to find which CPU functions it executes.  Binary instrumentation of
this kind slows the instrumented process down by a multiplicative factor -
modelled by ``CostModel.cpu_profiler_slowdown``, applied by
:meth:`ProcessImage.call_functions` while a profiler is attached.  The
recorded per-library index sets feed the CPU-side locator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FunctionProfiler:
    """Records (library, function index) usage during a profiled run."""

    attach_cost: float = 0.5
    _used: dict[str, set[int]] = field(default_factory=dict)

    def record(self, soname: str, indices: np.ndarray) -> None:
        bucket = self._used.setdefault(soname, set())
        bucket.update(int(i) for i in indices)

    def used_functions(self) -> dict[str, np.ndarray]:
        """Per-library sorted arrays of used function indices."""
        return {
            soname: np.asarray(sorted(idx), dtype=np.int64)
            for soname, idx in self._used.items()
        }

    def used_count(self) -> int:
        return sum(len(s) for s in self._used.values())

    def clear(self) -> None:
        self._used.clear()

"""ELF64 constants (the subset used by ML shared libraries).

Values follow the System V ABI / Linux ``elf.h``; only little-endian x86-64
shared objects are modelled, which matches the binaries the paper evaluates.
"""

from __future__ import annotations

# -- e_ident ------------------------------------------------------------------
ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1  # little-endian
EV_CURRENT = 1
ELFOSABI_SYSV = 0

EI_NIDENT = 16

# -- e_type ---------------------------------------------------------------------
ET_DYN = 3  # shared object

# -- e_machine ---------------------------------------------------------------------
EM_X86_64 = 62

# -- section types ------------------------------------------------------------------
SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_NOBITS = 8
SHT_DYNSYM = 11

# -- section flags -------------------------------------------------------------------
SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

# -- symbol binding / type ------------------------------------------------------------
STB_LOCAL = 0
STB_GLOBAL = 1
STB_WEAK = 2

STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2

SHN_UNDEF = 0


def st_info(bind: int, typ: int) -> int:
    """Pack symbol binding and type into ``st_info`` (ELF64_ST_INFO)."""
    return (bind << 4) | (typ & 0xF)


def st_bind(info: int) -> int:
    return info >> 4


def st_type(info: int) -> int:
    return info & 0xF


# -- canonical section names used by ML shared libraries -------------------------------
SEC_TEXT = ".text"
SEC_DATA = ".data"
SEC_RODATA = ".rodata"
SEC_BSS = ".bss"
SEC_SYMTAB = ".symtab"
SEC_STRTAB = ".strtab"
SEC_SHSTRTAB = ".shstrtab"
SEC_DYNSYM = ".dynsym"
SEC_DYNSTR = ".dynstr"
SEC_NV_FATBIN = ".nv_fatbin"
SEC_NVFATBIN_HDR = ".nvFatBinSegment"

EHDR_SIZE = 64
SHDR_SIZE = 64
SYM_SIZE = 24

# Base virtual address at which generated shared objects pretend to be linked.
# Using 0 keeps ``vaddr == file offset`` for PROGBITS sections, the identity
# the CPU-function locator relies on (it maps symbol values straight to file
# ranges, as Negativa does for position-independent libraries).
DEFAULT_BASE_VADDR = 0

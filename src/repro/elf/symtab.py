"""Bulk symbol tables backed by numpy structured arrays.

ML shared libraries carry hundreds of thousands of function symbols (the
paper reports 616K-1,043K per framework).  Representing each as a Python
object would dominate experiment runtime, so :class:`SymbolTable` keeps the
six ``Elf64_Sym`` fields in a structured array and serializes/parses the
whole table with two numpy calls.  The CPU-side detector and locator operate
directly on these arrays (boolean "used" masks over symbol indices).
"""

from __future__ import annotations

import numpy as np

from repro.elf import constants as C
from repro.elf.strtab import StringTable, StringTableBuilder
from repro.errors import ElfFormatError

SYM_DTYPE = np.dtype(
    [
        ("st_name", "<u4"),
        ("st_info", "u1"),
        ("st_other", "u1"),
        ("st_shndx", "<u2"),
        ("st_value", "<u8"),
        ("st_size", "<u8"),
    ]
)

assert SYM_DTYPE.itemsize == C.SYM_SIZE


class SymbolTable:
    """A symbol table: parallel numpy fields plus decoded names."""

    def __init__(self, entries: np.ndarray, names: list[str]) -> None:
        if entries.dtype != SYM_DTYPE:
            raise ValueError("entries must use SYM_DTYPE")
        if len(entries) != len(names):
            raise ValueError("entries/names length mismatch")
        self.entries = entries
        self.names = names

    # -- constructors -----------------------------------------------------------

    @classmethod
    def empty(cls) -> "SymbolTable":
        return cls(np.zeros(0, dtype=SYM_DTYPE), [])

    @classmethod
    def for_functions(
        cls,
        names: list[str],
        values: np.ndarray,
        sizes: np.ndarray,
        section_index: int,
        bind: int = C.STB_GLOBAL,
    ) -> "SymbolTable":
        """Build a function symbol table (the generator's bulk path).

        ``values`` are virtual addresses (== file offsets under our layout),
        ``sizes`` are function byte sizes.
        """
        n = len(names)
        entries = np.zeros(n, dtype=SYM_DTYPE)
        entries["st_info"] = C.st_info(bind, C.STT_FUNC)
        entries["st_shndx"] = section_index
        entries["st_value"] = np.asarray(values, dtype=np.uint64)
        entries["st_size"] = np.asarray(sizes, dtype=np.uint64)
        return cls(entries, list(names))

    # -- accessors ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def values(self) -> np.ndarray:
        return self.entries["st_value"]

    @property
    def sizes(self) -> np.ndarray:
        return self.entries["st_size"]

    def function_mask(self) -> np.ndarray:
        return (self.entries["st_info"] & 0xF) == C.STT_FUNC

    def function_count(self) -> int:
        return int(self.function_mask().sum())

    def function_bytes(self) -> int:
        mask = self.function_mask()
        return int(self.entries["st_size"][mask].sum())

    def index_of(self, name: str) -> int:
        """Linear-scan lookup (use :meth:`name_index` for bulk lookups)."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(name) from None

    def name_index(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self.names)}

    # -- serialization ----------------------------------------------------------------

    def to_bytes(self, strtab: StringTableBuilder) -> bytes:
        """Serialize, registering all names in ``strtab``."""
        entries = self.entries.copy()
        entries["st_name"] = strtab.add_many(self.names)
        return entries.tobytes()

    @classmethod
    def parse(cls, data: bytes, strtab_blob: bytes) -> "SymbolTable":
        if len(data) % C.SYM_SIZE != 0:
            raise ElfFormatError("symbol table size not a multiple of entry size")
        entries = np.frombuffer(data, dtype=SYM_DTYPE).copy()
        table = StringTable(strtab_blob) if strtab_blob else None
        if table is None:
            names = [""] * len(entries)
        else:
            names = table.get_many(entries["st_name"].astype(np.int64))
        return cls(entries, names)

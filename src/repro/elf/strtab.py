"""ELF string tables (``.strtab`` / ``.dynstr`` / ``.shstrtab``).

String tables start with a NUL byte (so offset 0 is the empty string) and
store NUL-terminated strings back to back.  The builder deduplicates exact
repeats; the reader indexes the blob once so per-symbol name lookups are O(1)
even for the ~600k-entry tables of ``libtorch_cuda.so``-scale libraries.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ElfFormatError


class StringTableBuilder:
    """Accumulates strings and assigns stable offsets."""

    def __init__(self) -> None:
        self._blob = bytearray(b"\x00")
        self._offsets: dict[bytes, int] = {b"": 0}

    def add(self, name: str | bytes) -> int:
        """Insert ``name`` (deduplicated) and return its table offset."""
        raw = name.encode("utf-8") if isinstance(name, str) else bytes(name)
        if b"\x00" in raw:
            raise ValueError("strings may not contain NUL")
        off = self._offsets.get(raw)
        if off is None:
            off = len(self._blob)
            self._blob += raw + b"\x00"
            self._offsets[raw] = off
        return off

    def add_many(self, names: list[str]) -> np.ndarray:
        """Bulk-append unique names (vectorized fast path, no dedup check).

        Generated symbol names are unique by construction; skipping the dict
        probe makes building a 600k-name table ~5x faster.
        """
        if not names:
            return np.zeros(0, dtype=np.int64)
        encoded = [n.encode("utf-8") for n in names]
        lengths = np.fromiter((len(e) + 1 for e in encoded), dtype=np.int64,
                              count=len(encoded))
        base = len(self._blob)
        offsets = base + np.concatenate(([0], np.cumsum(lengths[:-1])))
        self._blob += b"\x00".join(encoded) + b"\x00"
        return offsets

    def finish(self) -> bytes:
        return bytes(self._blob)

    def __len__(self) -> int:
        return len(self._blob)


class StringTable:
    """A parsed string table with O(1) offset->string lookup."""

    def __init__(self, blob: bytes) -> None:
        if not blob or blob[0] != 0:
            raise ElfFormatError("string table must start with NUL")
        if blob[-1] != 0:
            raise ElfFormatError("string table must end with NUL")
        self._blob = blob

    def get(self, offset: int) -> str:
        if offset < 0 or offset >= len(self._blob):
            raise ElfFormatError(f"string offset {offset} out of range")
        end = self._blob.index(b"\x00", offset)
        return self._blob[offset:end].decode("utf-8")

    def get_many(self, offsets: np.ndarray) -> list[str]:
        """Vectorized lookup for bulk symbol-name decoding."""
        blob = self._blob
        find = blob.index
        out: list[str] = []
        for off in offsets.tolist():
            end = find(b"\x00", off)
            out.append(blob[off:end].decode("utf-8"))
        return out

    def __len__(self) -> int:
        return len(self._blob)

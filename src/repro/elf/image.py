"""Parsed shared-library image: the object the whole pipeline passes around.

A :class:`SharedLibrary` owns its backing :class:`SparseFile` plus decoded
structure: section list, symbol table, and (lazily) the fatbin image.  It
exposes the size accounting the paper's tables use - total file size, CPU
code size (``.text``), GPU code size (``.nv_fatbin``), function count,
element count - and the file-range views the locator/compactor operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.elf import constants as C
from repro.elf.structs import Elf64SectionHeader
from repro.elf.symtab import SymbolTable
from repro.errors import ElfFormatError
from repro.utils.intervals import Range, RangeSet
from repro.utils.sparsefile import SparseFile


@dataclass
class Section:
    """A named section with its header."""

    name: str
    header: Elf64SectionHeader

    @property
    def file_range(self) -> Range:
        return Range(self.header.sh_offset, self.header.sh_offset + self.header.sh_size)

    @property
    def size(self) -> int:
        return self.header.sh_size


@dataclass
class SharedLibrary:
    """A shared library as seen by Negativa-ML.

    Attributes
    ----------
    soname:
        Library file name, e.g. ``"libtorch_cuda.so"``.
    data:
        Backing sparse file (byte-accurate ELF image).
    sections:
        All sections including the NULL entry at index 0.
    symtab:
        Function symbol table (empty for libraries with no symbols).
    proprietary:
        True for closed-source vendor libraries (cuDNN/cuBLAS-like); the
        pipeline must not assume anything beyond binary structure for these.
    """

    soname: str
    data: SparseFile
    sections: list[Section]
    symtab: SymbolTable
    proprietary: bool = False
    tags: dict = field(default_factory=dict)

    # -- section access ---------------------------------------------------------

    def section(self, name: str) -> Section | None:
        for sec in self.sections:
            if sec.name == name:
                return sec
        return None

    def require_section(self, name: str) -> Section:
        sec = self.section(name)
        if sec is None:
            raise ElfFormatError(f"{self.soname}: missing section {name!r}")
        return sec

    @property
    def text(self) -> Section | None:
        return self.section(C.SEC_TEXT)

    @property
    def fatbin_section(self) -> Section | None:
        return self.section(C.SEC_NV_FATBIN)

    @property
    def has_gpu_code(self) -> bool:
        sec = self.fatbin_section
        return sec is not None and sec.size > 0

    # -- size accounting (the paper's metrics) -------------------------------------

    @property
    def file_size(self) -> int:
        return self.data.logical_size

    @property
    def cpu_code_size(self) -> int:
        sec = self.text
        return sec.size if sec is not None else 0

    @property
    def gpu_code_size(self) -> int:
        sec = self.fatbin_section
        return sec.size if sec is not None else 0

    @property
    def function_count(self) -> int:
        return self.symtab.function_count()

    # -- function geometry (CPU locator inputs) -------------------------------------

    def function_file_ranges(self) -> tuple[np.ndarray, np.ndarray]:
        """(start_offsets, sizes) of all functions, as file offsets.

        Under the generator's layout ``vaddr == file offset`` for allocated
        sections (position-independent code loaded at base 0), so symbol
        values are usable directly as file offsets.  Mirrors Negativa's
        treatment of PIC shared libraries.
        """
        mask = self.symtab.function_mask()
        return (
            self.symtab.values[mask].astype(np.int64),
            self.symtab.sizes[mask].astype(np.int64),
        )

    def function_names(self) -> list[str]:
        mask = self.symtab.function_mask()
        if mask.all():
            return list(self.symtab.names)
        return [n for n, m in zip(self.symtab.names, mask) if m]

    # -- fatbin --------------------------------------------------------------------

    def fatbin_bytes(self) -> bytes:
        sec = self.fatbin_section
        if sec is None or sec.size == 0:
            return b""
        return self.data.read(sec.header.sh_offset, sec.header.sh_size)

    @cached_property
    def fatbin(self):
        """Parsed fatbin image (lazy; import deferred to avoid a cycle).

        Parses directly from sparse storage: only structural bytes are read,
        never kernel code areas, so paper-scale sections parse in
        milliseconds.
        """
        from repro.fatbin.parser import parse_fatbin

        sec = self.fatbin_section
        if sec is None or sec.size == 0:
            return None
        return parse_fatbin(
            self.data, base_offset=sec.header.sh_offset, size=sec.header.sh_size
        )

    @property
    def element_count(self) -> int:
        img = self.fatbin
        if img is None:
            return 0
        return sum(len(region.elements) for region in img.regions)

    # -- structural ranges -----------------------------------------------------------

    def structural_ranges(self) -> RangeSet:
        """Ranges the compactor must never remove: headers and tables.

        Everything outside ``.text`` and ``.nv_fatbin`` payload ranges is
        structural (ELF header, section headers, symbol/string tables, data
        sections) - removing those would break loadability.
        """
        universe = Range(0, self.file_size)
        payload = RangeSet(
            sec.file_range
            for sec in self.sections
            if sec.name in (C.SEC_TEXT, C.SEC_NV_FATBIN) and sec.size > 0
        )
        return payload.complement(universe)

    def copy(self) -> "SharedLibrary":
        return SharedLibrary(
            soname=self.soname,
            data=self.data.copy(),
            sections=[Section(s.name, Elf64SectionHeader(**vars(s.header)))
                      for s in self.sections],
            symtab=self.symtab,
            proprietary=self.proprietary,
            tags=dict(self.tags),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedLibrary({self.soname!r}, size={self.file_size}, "
            f"functions={self.function_count}, gpu={self.gpu_code_size})"
        )

"""Structural validation for shared libraries.

The compactor must keep a debloated library *loadable*: all structural bytes
intact, all retained symbols still inside ``.text``, the fatbin container
still well-formed.  ``validate_shared_library`` re-checks those invariants
and returns a list of findings; ``strict=True`` raises on the first error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.elf import constants as C
from repro.elf.image import SharedLibrary
from repro.errors import ElfFormatError


@dataclass(frozen=True)
class Finding:
    """A single validation finding."""

    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.message}"


def validate_shared_library(lib: SharedLibrary, strict: bool = False) -> list[Finding]:
    """Check structural invariants; return findings (errors first)."""
    findings: list[Finding] = []

    def err(msg: str) -> None:
        findings.append(Finding("error", msg))
        if strict:
            raise ElfFormatError(f"{lib.soname}: {msg}")

    def warn(msg: str) -> None:
        findings.append(Finding("warning", msg))

    size = lib.file_size

    # Sections within bounds and non-overlapping (ignoring NULL/NOBITS).
    placed = []
    for sec in lib.sections:
        hdr = sec.header
        if hdr.sh_type in (C.SHT_NULL, C.SHT_NOBITS) or hdr.sh_size == 0:
            continue
        if hdr.sh_offset + hdr.sh_size > size:
            err(f"section {sec.name!r} out of bounds")
            continue
        placed.append((hdr.sh_offset, hdr.sh_offset + hdr.sh_size, sec.name))
    placed.sort()
    for (s1, e1, n1), (s2, e2, n2) in zip(placed, placed[1:]):
        if s2 < e1:
            err(f"sections {n1!r} and {n2!r} overlap")

    # Required sections for an ML shared library.
    if lib.text is None:
        warn("no .text section")

    # Symbols must stay inside .text.
    text = lib.text
    if text is not None and len(lib.symtab):
        mask = lib.symtab.function_mask()
        values = lib.symtab.values[mask].astype(np.int64)
        sizes = lib.symtab.sizes[mask].astype(np.int64)
        lo = text.header.sh_addr
        hi = lo + text.header.sh_size
        bad = np.count_nonzero((values < lo) | (values + sizes > hi))
        if bad:
            err(f"{bad} function symbols fall outside .text")

    # Fatbin must parse and stay inside its section.
    if lib.has_gpu_code:
        try:
            img = lib.fatbin
        except Exception as exc:  # noqa: BLE001 - reported as a finding
            err(f"fatbin unparseable: {exc}")
        else:
            if img is not None:
                sec = lib.fatbin_section
                assert sec is not None
                end = sec.header.sh_offset + sec.header.sh_size
                for region in img.regions:
                    for element in region.elements:
                        if element.file_range.stop > end:
                            err(
                                f"fatbin element {element.index} extends past "
                                f".nv_fatbin"
                            )

    return sorted(findings, key=lambda f: f.severity)

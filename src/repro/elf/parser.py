"""ELF64 reader: parse a :class:`SparseFile` back into a :class:`SharedLibrary`.

The parser walks the section header table, decodes ``.shstrtab`` for section
names, and materializes ``.symtab``/``.strtab`` into a
:class:`~repro.elf.symtab.SymbolTable`.  It is strict about the invariants
the rest of the pipeline relies on (entry sizes, link indices, bounds).
"""

from __future__ import annotations

from repro.elf import constants as C
from repro.elf.image import Section, SharedLibrary
from repro.elf.structs import Elf64Header, Elf64SectionHeader
from repro.elf.strtab import StringTable
from repro.elf.symtab import SymbolTable
from repro.errors import ElfFormatError
from repro.utils.sparsefile import SparseFile


def parse_shared_library(
    data: SparseFile | bytes,
    soname: str = "unknown.so",
    proprietary: bool = False,
) -> SharedLibrary:
    """Parse an ELF64 image into a :class:`SharedLibrary`."""
    if isinstance(data, (bytes, bytearray)):
        data = SparseFile.from_bytes(bytes(data))

    if data.logical_size < C.EHDR_SIZE:
        raise ElfFormatError(f"{soname}: file too small for an ELF header")
    header = Elf64Header.unpack(data.read(0, C.EHDR_SIZE))

    if header.e_shoff == 0 or header.e_shnum == 0:
        raise ElfFormatError(f"{soname}: no section header table")
    table_size = header.e_shnum * C.SHDR_SIZE
    if header.e_shoff + table_size > data.logical_size:
        raise ElfFormatError(f"{soname}: section header table out of bounds")
    raw_table = data.read(header.e_shoff, table_size)
    raw_headers = [
        Elf64SectionHeader.unpack(raw_table[i * C.SHDR_SIZE : (i + 1) * C.SHDR_SIZE])
        for i in range(header.e_shnum)
    ]

    if header.e_shstrndx >= header.e_shnum:
        raise ElfFormatError(f"{soname}: e_shstrndx out of range")
    shstr_hdr = raw_headers[header.e_shstrndx]
    if shstr_hdr.sh_type != C.SHT_STRTAB:
        raise ElfFormatError(f"{soname}: shstrtab section is not SHT_STRTAB")
    shstrtab = StringTable(data.read(shstr_hdr.sh_offset, shstr_hdr.sh_size))

    sections: list[Section] = []
    for shdr in raw_headers:
        name = "" if shdr.sh_type == C.SHT_NULL and shdr.sh_name == 0 else shstrtab.get(
            shdr.sh_name
        )
        if shdr.sh_type != C.SHT_NOBITS and shdr.sh_size > 0:
            if shdr.sh_offset + shdr.sh_size > data.logical_size:
                raise ElfFormatError(
                    f"{soname}: section {name!r} extends past end of file"
                )
        sections.append(Section(name, shdr))

    symtab = _parse_symtab(data, sections, soname)
    return SharedLibrary(
        soname=soname,
        data=data,
        sections=sections,
        symtab=symtab,
        proprietary=proprietary,
    )


def _parse_symtab(
    data: SparseFile, sections: list[Section], soname: str
) -> SymbolTable:
    for i, sec in enumerate(sections):
        if sec.header.sh_type in (C.SHT_SYMTAB, C.SHT_DYNSYM):
            if sec.header.sh_entsize not in (0, C.SYM_SIZE):
                raise ElfFormatError(
                    f"{soname}: symbol entry size {sec.header.sh_entsize}"
                )
            link = sec.header.sh_link
            if link >= len(sections):
                raise ElfFormatError(f"{soname}: symtab sh_link out of range")
            str_sec = sections[link]
            if str_sec.header.sh_type != C.SHT_STRTAB:
                raise ElfFormatError(
                    f"{soname}: symtab links to non-STRTAB section {str_sec.name!r}"
                )
            sym_bytes = data.read(sec.header.sh_offset, sec.header.sh_size)
            str_bytes = data.read(str_sec.header.sh_offset, str_sec.header.sh_size)
            return SymbolTable.parse(sym_bytes, str_bytes)
    return SymbolTable.empty()

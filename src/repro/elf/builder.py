"""ELF64 writer producing byte-accurate shared objects over sparse storage.

The builder lays out: ELF header | section payloads (in insertion order,
aligned) | ``.symtab`` | ``.strtab`` | ``.shstrtab`` | section header table.
Payloads can be *sparse* (a declared size with no materialized bytes), which
is how generated libraries carry paper-scale ``.text``/``.nv_fatbin``
payloads cheaply; structural bytes (headers, tables) are always materialized
so a parser - ours or ``readelf`` - can walk the image.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.elf import constants as C
from repro.elf.structs import Elf64Header, Elf64SectionHeader
from repro.elf.strtab import StringTableBuilder
from repro.elf.symtab import SymbolTable
from repro.errors import ConfigurationError
from repro.utils.sparsefile import SparseFile


def _align(offset: int, alignment: int) -> int:
    if alignment <= 1:
        return offset
    return (offset + alignment - 1) // alignment * alignment


@dataclass
class _SectionSpec:
    name: str
    sh_type: int
    flags: int
    data: bytes | None
    sparse: SparseFile | None
    logical_size: int
    addralign: int
    entsize: int
    link: int
    info: int
    # Assigned during build():
    offset: int = 0
    index: int = 0


class ElfBuilder:
    """Accumulates sections and symbols, then emits a :class:`SparseFile`."""

    def __init__(self, soname: str) -> None:
        self.soname = soname
        self._sections: list[_SectionSpec] = []
        self._symtab: SymbolTable | None = None
        self._symtab_text_section: str | None = None

    # -- section API -------------------------------------------------------------

    def add_section(
        self,
        name: str,
        sh_type: int = C.SHT_PROGBITS,
        *,
        flags: int = 0,
        data: bytes | None = None,
        sparse: SparseFile | None = None,
        logical_size: int | None = None,
        addralign: int = 16,
        entsize: int = 0,
        link: int = 0,
        info: int = 0,
    ) -> str:
        """Declare a section; returns ``name`` for chaining.

        Exactly one of ``data`` (materialized payload), ``sparse`` (a payload
        with holes, e.g. a fatbin), or ``logical_size`` (an all-hole payload)
        must be given.
        """
        provided = sum(x is not None for x in (data, sparse, logical_size))
        if provided != 1:
            raise ConfigurationError(
                f"section {name!r}: provide exactly one of data/sparse/logical_size"
            )
        if any(s.name == name for s in self._sections):
            raise ConfigurationError(f"duplicate section {name!r}")
        if data is not None:
            size = len(data)
        elif sparse is not None:
            size = sparse.logical_size
        else:
            size = int(logical_size or 0)
        self._sections.append(
            _SectionSpec(
                name=name,
                sh_type=sh_type,
                flags=flags,
                data=data,
                sparse=sparse,
                logical_size=size,
                addralign=addralign,
                entsize=entsize,
                link=link,
                info=info,
            )
        )
        return name

    def add_text(self, logical_size: int, data: bytes | None = None) -> str:
        """Convenience: declare ``.text`` (sparse unless ``data`` given)."""
        if data is not None:
            return self.add_section(
                C.SEC_TEXT, flags=C.SHF_ALLOC | C.SHF_EXECINSTR, data=data
            )
        return self.add_section(
            C.SEC_TEXT,
            flags=C.SHF_ALLOC | C.SHF_EXECINSTR,
            logical_size=logical_size,
        )

    def add_fatbin(self, payload: SparseFile) -> str:
        """Declare ``.nv_fatbin`` holding the GPU code container."""
        return self.add_section(
            C.SEC_NV_FATBIN,
            flags=C.SHF_ALLOC,
            sparse=payload,
            addralign=8,
        )

    def set_function_symbols(self, symtab: SymbolTable,
                             text_section: str = C.SEC_TEXT) -> None:
        """Attach the function symbol table.

        Symbol values are interpreted as offsets *relative to the start of*
        ``text_section`` and relocated to absolute addresses during build.
        """
        self._symtab = symtab
        self._symtab_text_section = text_section

    # -- build ------------------------------------------------------------------------

    def build(self) -> SparseFile:
        """Lay out and serialize the image."""
        specs = list(self._sections)
        shstrtab = StringTableBuilder()

        # Section 0 is the mandatory SHT_NULL entry; real sections follow in
        # insertion order, then .symtab/.strtab/.shstrtab.
        for i, spec in enumerate(specs):
            spec.index = i + 1

        offset = C.EHDR_SIZE
        for spec in specs:
            offset = _align(offset, spec.addralign)
            spec.offset = offset
            offset += spec.logical_size

        # Serialize the symbol table now that section offsets are fixed.
        symtab_bytes = b""
        strtab_bytes = b""
        symtab_offset = strtab_offset = 0
        text_index = 0
        if self._symtab is not None:
            text_spec = next(
                (s for s in specs if s.name == self._symtab_text_section), None
            )
            if text_spec is None:
                raise ConfigurationError(
                    f"symbol table references missing section "
                    f"{self._symtab_text_section!r}"
                )
            text_index = text_spec.index
            reloc = SymbolTable(self._symtab.entries.copy(), self._symtab.names)
            reloc.entries["st_value"] = (
                reloc.entries["st_value"] + text_spec.offset + C.DEFAULT_BASE_VADDR
            )
            reloc.entries["st_shndx"] = text_index
            strtab_builder = StringTableBuilder()
            symtab_bytes = reloc.to_bytes(strtab_builder)
            strtab_bytes = strtab_builder.finish()

            offset = _align(offset, 8)
            symtab_offset = offset
            offset += len(symtab_bytes)
            strtab_offset = offset
            offset += len(strtab_bytes)

        # Section header names.
        name_offsets = {spec.name: shstrtab.add(spec.name) for spec in specs}
        n_extra = 0
        if self._symtab is not None:
            name_offsets[C.SEC_SYMTAB] = shstrtab.add(C.SEC_SYMTAB)
            name_offsets[C.SEC_STRTAB] = shstrtab.add(C.SEC_STRTAB)
            n_extra = 2
        name_offsets[C.SEC_SHSTRTAB] = shstrtab.add(C.SEC_SHSTRTAB)
        shstrtab_bytes = shstrtab.finish()
        shstrtab_offset = offset
        offset += len(shstrtab_bytes)

        shoff = _align(offset, 8)
        n_sections = 1 + len(specs) + n_extra + 1  # NULL + payloads + (symtabs) + shstrtab
        shstrndx = n_sections - 1

        out = SparseFile(shoff + n_sections * C.SHDR_SIZE)

        header = Elf64Header(
            e_shoff=shoff,
            e_shnum=n_sections,
            e_shstrndx=shstrndx,
        )
        out.write(0, header.pack())

        headers: list[Elf64SectionHeader] = [Elf64SectionHeader()]  # SHT_NULL
        for spec in specs:
            if spec.data is not None:
                out.write(spec.offset, spec.data)
            elif spec.sparse is not None:
                for extent in spec.sparse.extents():
                    out.write(
                        spec.offset + extent.start,
                        spec.sparse.read(extent.start, len(extent)),
                    )
            headers.append(
                Elf64SectionHeader(
                    sh_name=name_offsets[spec.name],
                    sh_type=spec.sh_type,
                    sh_flags=spec.flags,
                    sh_addr=(spec.offset + C.DEFAULT_BASE_VADDR)
                    if spec.flags & C.SHF_ALLOC
                    else 0,
                    sh_offset=spec.offset,
                    sh_size=spec.logical_size,
                    sh_link=spec.link,
                    sh_info=spec.info,
                    sh_addralign=spec.addralign,
                    sh_entsize=spec.entsize,
                )
            )

        if self._symtab is not None:
            strtab_index = 1 + len(specs) + 1
            out.write(symtab_offset, symtab_bytes)
            headers.append(
                Elf64SectionHeader(
                    sh_name=name_offsets[C.SEC_SYMTAB],
                    sh_type=C.SHT_SYMTAB,
                    sh_offset=symtab_offset,
                    sh_size=len(symtab_bytes),
                    sh_link=strtab_index,
                    sh_addralign=8,
                    sh_entsize=C.SYM_SIZE,
                )
            )
            out.write(strtab_offset, strtab_bytes)
            headers.append(
                Elf64SectionHeader(
                    sh_name=name_offsets[C.SEC_STRTAB],
                    sh_type=C.SHT_STRTAB,
                    sh_offset=strtab_offset,
                    sh_size=len(strtab_bytes),
                    sh_addralign=1,
                )
            )

        out.write(shstrtab_offset, shstrtab_bytes)
        headers.append(
            Elf64SectionHeader(
                sh_name=name_offsets[C.SEC_SHSTRTAB],
                sh_type=C.SHT_STRTAB,
                sh_offset=shstrtab_offset,
                sh_size=len(shstrtab_bytes),
                sh_addralign=1,
            )
        )

        assert len(headers) == n_sections
        table = b"".join(h.pack() for h in headers)
        out.write(shoff, table)
        return out

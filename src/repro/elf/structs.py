"""Binary layouts for the ELF64 structures Negativa-ML reads and writes.

Each dataclass packs/unpacks the exact on-disk representation (little-endian,
System V ABI).  The sizes are load-bearing: the parser trusts ``e_shentsize``
and the compactor preserves offsets, so round-tripping must be byte-exact.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.elf import constants as C
from repro.errors import ElfFormatError

_EHDR_FMT = "<16sHHIQQQIHHHHHH"
_SHDR_FMT = "<IIQQQQIIQQ"
_SYM_FMT = "<IBBHQQ"

assert struct.calcsize(_EHDR_FMT) == C.EHDR_SIZE
assert struct.calcsize(_SHDR_FMT) == C.SHDR_SIZE
assert struct.calcsize(_SYM_FMT) == C.SYM_SIZE


def make_ident() -> bytes:
    """Build the 16-byte ``e_ident`` prefix for an LSB ELF64 shared object."""
    ident = bytearray(C.EI_NIDENT)
    ident[0:4] = C.ELF_MAGIC
    ident[4] = C.ELFCLASS64
    ident[5] = C.ELFDATA2LSB
    ident[6] = C.EV_CURRENT
    ident[7] = C.ELFOSABI_SYSV
    return bytes(ident)


@dataclass
class Elf64Header:
    """The ELF file header (``Elf64_Ehdr``)."""

    e_ident: bytes = field(default_factory=make_ident)
    e_type: int = C.ET_DYN
    e_machine: int = C.EM_X86_64
    e_version: int = C.EV_CURRENT
    e_entry: int = 0
    e_phoff: int = 0
    e_shoff: int = 0
    e_flags: int = 0
    e_ehsize: int = C.EHDR_SIZE
    e_phentsize: int = 0
    e_phnum: int = 0
    e_shentsize: int = C.SHDR_SIZE
    e_shnum: int = 0
    e_shstrndx: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            _EHDR_FMT,
            self.e_ident,
            self.e_type,
            self.e_machine,
            self.e_version,
            self.e_entry,
            self.e_phoff,
            self.e_shoff,
            self.e_flags,
            self.e_ehsize,
            self.e_phentsize,
            self.e_phnum,
            self.e_shentsize,
            self.e_shnum,
            self.e_shstrndx,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Elf64Header":
        if len(data) < C.EHDR_SIZE:
            raise ElfFormatError("truncated ELF header")
        fields = struct.unpack(_EHDR_FMT, data[: C.EHDR_SIZE])
        hdr = cls(*fields)
        hdr.validate()
        return hdr

    def validate(self) -> None:
        if self.e_ident[:4] != C.ELF_MAGIC:
            raise ElfFormatError("bad ELF magic")
        if self.e_ident[4] != C.ELFCLASS64:
            raise ElfFormatError("only ELF64 is supported")
        if self.e_ident[5] != C.ELFDATA2LSB:
            raise ElfFormatError("only little-endian ELF is supported")
        if self.e_shentsize not in (0, C.SHDR_SIZE):
            raise ElfFormatError(f"unexpected e_shentsize={self.e_shentsize}")


@dataclass
class Elf64SectionHeader:
    """A section header (``Elf64_Shdr``)."""

    sh_name: int = 0
    sh_type: int = C.SHT_NULL
    sh_flags: int = 0
    sh_addr: int = 0
    sh_offset: int = 0
    sh_size: int = 0
    sh_link: int = 0
    sh_info: int = 0
    sh_addralign: int = 1
    sh_entsize: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            _SHDR_FMT,
            self.sh_name,
            self.sh_type,
            self.sh_flags,
            self.sh_addr,
            self.sh_offset,
            self.sh_size,
            self.sh_link,
            self.sh_info,
            self.sh_addralign,
            self.sh_entsize,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Elf64SectionHeader":
        if len(data) < C.SHDR_SIZE:
            raise ElfFormatError("truncated section header")
        return cls(*struct.unpack(_SHDR_FMT, data[: C.SHDR_SIZE]))


@dataclass
class Elf64Sym:
    """A symbol table entry (``Elf64_Sym``); used for single-symbol paths.

    Bulk symbol tables use :class:`repro.elf.symtab.SymbolTable`, which keeps
    the same fields in numpy arrays.
    """

    st_name: int = 0
    st_info: int = 0
    st_other: int = 0
    st_shndx: int = C.SHN_UNDEF
    st_value: int = 0
    st_size: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            _SYM_FMT,
            self.st_name,
            self.st_info,
            self.st_other,
            self.st_shndx,
            self.st_value,
            self.st_size,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Elf64Sym":
        if len(data) < C.SYM_SIZE:
            raise ElfFormatError("truncated symbol entry")
        return cls(*struct.unpack(_SYM_FMT, data[: C.SYM_SIZE]))

    @property
    def bind(self) -> int:
        return C.st_bind(self.st_info)

    @property
    def type(self) -> int:
        return C.st_type(self.st_info)

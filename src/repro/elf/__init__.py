"""ELF64 shared-library container.

ML frameworks package their CPU and GPU code as ELF shared libraries: CPU
code lives in ``.text`` (inventoried by the symbol table), GPU code lives in
the ``.nv_fatbin`` section (paper §2.1).  This package implements the subset
of ELF64 Negativa-ML needs: a builder that emits real, byte-accurate ELF
images (over :class:`~repro.utils.sparsefile.SparseFile` so code payloads can
stay sparse), a parser that reads them back, and a validator used by the
compactor to prove debloated libraries remain structurally loadable.
"""

from repro.elf.builder import ElfBuilder
from repro.elf.image import Section, SharedLibrary
from repro.elf.parser import parse_shared_library
from repro.elf.structs import Elf64Header, Elf64SectionHeader, Elf64Sym
from repro.elf.symtab import SymbolTable
from repro.elf.validate import validate_shared_library

__all__ = [
    "Elf64Header",
    "Elf64SectionHeader",
    "Elf64Sym",
    "ElfBuilder",
    "Section",
    "SharedLibrary",
    "SymbolTable",
    "parse_shared_library",
    "validate_shared_library",
]

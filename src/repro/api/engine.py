"""`DebloatEngine`: the single public facade over the whole pipeline.

The paper's detect -> locate -> compact -> verify pipeline grew four
divergent entry points (``Debloater``, ``report_for``, ``DebloatStore``,
two CLIs), each re-wiring caching, options, and fan-out knobs by hand.  The
engine is the one audited boundary in front of all of them:

* constructed from one :class:`~repro.api.config.EngineConfig`;
* explicit lifecycle - :meth:`open` / :meth:`close`, or a context manager;
* typed requests in, :class:`~repro.api.requests.EngineResult` out, every
  result carrying cache provenance and wall timing;
* single-workload pipelines route through the process-wide two-tier
  pipeline cache; serving routes through a
  :class:`~repro.api.federation.StoreFederation` of per-framework store
  shards with traffic-driven eviction;
* :meth:`server` fronts the federation with the queue/worker
  :class:`~repro.serving.server.DebloatServer` (plus the policy's
  background sweeper).

Every legacy entry point is now a thin adapter over this class; new
capabilities (remote stores, async admission, multi-backend) plug in here.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.api.config import EngineConfig
from repro.api.federation import FederationSnapshot, StoreFederation
from repro.api.requests import (
    AdmitRequest,
    DebloatRequest,
    EngineResult,
    EvictRequest,
    InspectRequest,
)
from repro.errors import UsageError
from repro.frameworks.catalog import (
    framework_build_fingerprint,
    get_framework,
)
from repro.serving.server import DebloatServer


class DebloatEngine:
    """The unified entry point (see module docstring)."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        cache=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or EngineConfig()
        #: Explicit cache override (tests); None = the process-wide
        #: PIPELINE_CACHE, resolved dynamically so reconfiguration and
        #: test monkeypatching are honored per call.
        self._cache = cache
        self._clock = clock
        self._federation: StoreFederation | None = None
        self._server: DebloatServer | None = None
        self._remote_pool = None
        self._durability = None
        self._opened = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def cache(self):
        if self._cache is not None:
            return self._cache
        from repro.experiments import common

        return common.PIPELINE_CACHE

    @property
    def closed(self) -> bool:
        return self._closed

    def open(self) -> "DebloatEngine":
        """Bring the engine up: apply cache overrides, build the federation."""
        if self._closed:
            raise UsageError("engine is closed; construct a new one")
        if self._opened:
            return self
        if (
            self.config.disk_cache is not None
            or self.config.cache_dir is not None
        ):
            self.cache.configure(
                disk_enabled=self.config.disk_cache,
                cache_dir=self.config.cache_dir,
            )
        if not self.config.degraded_modes.quarantine_corrupt_entries:
            self.cache.configure(quarantine=False)
        from repro.core.debloat import configure_fanout

        configure_fanout(self.config.degraded_modes.fanout_thread_fallback)
        if self.config.remote_shards > 0:
            import os

            from repro.serving.remote import RemoteShardPool

            snapshot_root = (
                os.path.join(self.config.snapshot_dir, "workers")
                if self.config.snapshot_dir is not None
                else None
            )
            liveness = self.config.liveness
            self._remote_pool = RemoteShardPool(
                self.config.remote_shards,
                scale=self.config.scale,
                archs=tuple(self.config.archs),
                use_cache=self.config.use_cache,
                snapshot_root=snapshot_root,
                op_deadline_s=liveness.op_deadline_s,
                breaker_threshold=liveness.breaker_threshold,
                breaker_cooldown_s=liveness.breaker_cooldown_s,
                heartbeat_interval_s=liveness.heartbeat_interval_s,
            )
        if self.config.durability.enabled:
            import os

            from repro.serving.wal import DurabilityController

            root = self.config.durability.directory
            if root is None:
                root = os.path.join(
                    self.config.snapshot_dir, "durability"
                )
            self._durability = DurabilityController(
                root,
                fsync=self.config.durability.fsync,
                fsync_batch_n=self.config.durability.fsync_batch_n,
            )
        self._federation = StoreFederation(
            self.config,
            clock=self._clock,
            cache=self._cache,
            remote_pool=self._remote_pool,
            durability=self._durability,
        )
        if self._durability is not None:
            self._durability.recover(self._federation)
            if self.config.durability.checkpoint_interval_s is not None:
                self._durability.start_checkpointer(
                    self._federation,
                    self.config.durability.checkpoint_interval_s,
                )
        self._opened = True
        return self

    def close(self) -> None:
        """Stop the server (draining its queue) and refuse further requests."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
        if self._remote_pool is not None:
            self._remote_pool.shutdown()
        if self._durability is not None:
            # Stops the checkpointer and syncs every WAL: a clean close
            # leaves nothing in the batch-fsync window.
            self._durability.close()

    def __enter__(self) -> "DebloatEngine":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise UsageError("engine is closed")
        if not self._opened:
            raise UsageError(
                "engine is not open; call open() or use it as a context "
                "manager"
            )

    @property
    def federation(self) -> StoreFederation:
        self._ensure_open()
        assert self._federation is not None
        return self._federation

    def server(self) -> DebloatServer:
        """The queue/worker admission front (created on first use)."""
        self._ensure_open()
        if self._server is None:
            self._server = DebloatServer(
                self.federation,
                workers=self.config.workers,
                verify=self.config.verify_admissions,
                batch_max=self.config.batch_max,
                sweep_interval_s=self.config.eviction.sweep_interval_s,
                retry=self.config.retry,
            )
        return self._server

    def http_server(self):
        """An HTTP/JSON front-end over this engine (not yet started).

        Configured from ``config.http``; call ``await start()`` on it (or
        wrap it in :class:`~repro.serving.http.BackgroundHttpServer`) -
        ``start()`` opens the engine, so this works on an un-opened one.
        Imported lazily so engines that never serve HTTP pay nothing.
        """
        if self._closed:
            raise UsageError("engine is closed; construct a new one")
        from repro.serving.http import DebloatHttpServer

        return DebloatHttpServer(self, self.config.http)

    # -- single-workload pipeline ---------------------------------------------

    def debloat(self, request: DebloatRequest) -> EngineResult:
        """Run (or fetch cached) the full pipeline for one workload."""
        self._ensure_open()
        spec = request.resolve_spec()
        scale = request.scale if request.scale is not None else self.config.scale
        options = (
            request.options if request.options is not None
            else self.config.options
        )
        archs = (
            tuple(request.archs) if request.archs is not None
            else tuple(self.config.archs)
        )
        start = time.perf_counter()
        provenance: dict[str, str] = {}
        if self.config.use_cache:
            report = self.cache.get_or_run(
                spec, scale, options, archs, provenance=provenance
            )
        else:
            from repro.core.debloat import Debloater

            framework = get_framework(spec.framework, scale=scale, archs=archs)
            report = Debloater(framework, options).debloat(spec)
        return EngineResult(
            kind="debloat",
            value=report,
            wall_s=time.perf_counter() - start,
            framework=spec.framework,
            fingerprint=framework_build_fingerprint(
                spec.framework, scale, archs
            ),
            cache_source=provenance.get("source", "computed"),
        )

    # -- federated serving ----------------------------------------------------

    def admit(self, request: AdmitRequest) -> EngineResult:
        """Admit one workload into its framework's federation shard."""
        self._ensure_open()
        spec = request.resolve_spec()
        verify = (
            request.verify if request.verify is not None
            else self.config.verify_admissions
        )
        start = time.perf_counter()
        result = self.federation.admit(
            spec, verify=verify, pinned=request.pinned
        )
        shard = self.federation.shard(spec.framework)
        return EngineResult(
            kind="admit",
            value=result,
            wall_s=time.perf_counter() - start,
            framework=spec.framework,
            fingerprint=shard.fingerprint,
            cache_source="cache" if result.detection_cached else "run",
            generation=result.generation,
        )

    def evict(self, request: EvictRequest) -> EngineResult:
        """Evict a workload from every shard holding it (or one shard)."""
        self._ensure_open()
        start = time.perf_counter()
        results = self.federation.evict(
            request.workload_id, request.framework
        )
        return EngineResult(
            kind="evict",
            value=results,
            wall_s=time.perf_counter() - start,
            framework=request.framework,
        )

    def touch(self, workload_id: str, framework: str | None = None) -> int:
        """Record read traffic for a served workload (TTL refresh).

        Admissions refresh their own last-served stamps; a deployment
        that *reads* a workload's debloated libraries out of a snapshot
        should call this so read-heavy workloads do not age out under a
        TTL/LRU policy.  Returns the number of shards refreshed (0 if no
        shard holds the workload).
        """
        self._ensure_open()
        return self.federation.touch(workload_id, framework)

    def sweep(self) -> EngineResult:
        """Apply the eviction policy across every shard, once, now."""
        self._ensure_open()
        start = time.perf_counter()
        swept = self.federation.sweep()
        return EngineResult(
            kind="sweep",
            value=swept,
            wall_s=time.perf_counter() - start,
        )

    def report(self, framework: str) -> EngineResult:
        """One shard's ``debloat_many``-shaped union report."""
        self._ensure_open()
        start = time.perf_counter()
        report = self.federation.report(framework)
        shard = self.federation.shard(framework)
        return EngineResult(
            kind="report",
            value=report,
            wall_s=time.perf_counter() - start,
            framework=framework,
            fingerprint=shard.fingerprint,
            generation=shard.store.generation,
        )

    def snapshot(self) -> FederationSnapshot:
        return self.federation.snapshot()

    # -- warm snapshots -------------------------------------------------------

    def _snapshot_directory(self, directory: str | None) -> str:
        if directory is not None:
            return directory
        if self.config.snapshot_dir is None:
            raise UsageError(
                "no snapshot directory: pass one explicitly or set "
                "EngineConfig.snapshot_dir"
            )
        import os

        return os.path.join(self.config.snapshot_dir, "federation")

    def export_snapshot(self, directory: str | None = None) -> EngineResult:
        """Write every shard's warm store image (see serving.snapshot)."""
        self._ensure_open()
        directory = self._snapshot_directory(directory)
        start = time.perf_counter()
        manifest = self.federation.export_snapshot(directory)
        return EngineResult(
            kind="snapshot_export",
            value={"directory": directory, "manifest": manifest},
            wall_s=time.perf_counter() - start,
        )

    def import_snapshot(self, directory: str | None = None) -> EngineResult:
        """Warm the federation from a snapshot - zero workload runs."""
        self._ensure_open()
        directory = self._snapshot_directory(directory)
        start = time.perf_counter()
        generations = self.federation.import_snapshot(directory)
        return EngineResult(
            kind="snapshot_import",
            value={"directory": directory, "generations": generations},
            wall_s=time.perf_counter() - start,
        )

    def checkpoint(self) -> EngineResult:
        """Snapshot every durable shard, then truncate its WAL, once, now.

        Requires ``config.durability.enabled``; the background
        checkpointer (``durability.checkpoint_interval_s``) runs exactly
        this on a cadence.
        """
        self._ensure_open()
        if self._durability is None:
            raise UsageError(
                "checkpoint requires EngineConfig.durability.enabled"
            )
        start = time.perf_counter()
        result = self._durability.checkpoint(self.federation)
        return EngineResult(
            kind="checkpoint",
            value=result,
            wall_s=time.perf_counter() - start,
        )

    @property
    def recovery(self) -> dict | None:
        """The last ``open()``'s durability recovery report (or None)."""
        if self._durability is None:
            return None
        return self._durability.recovery_report

    def stats(self) -> dict[str, int]:
        """Federation counters, plus the server's when one is running."""
        self._ensure_open()
        if self._server is not None:
            out = self._server.stats()
        else:
            out = self.federation.stats()
        if self._durability is not None:
            out = {**out, **self._durability.stats()}
        return out

    def storage_stats(self) -> dict[str, int | float]:
        """Gauges for the federation's shared content-addressed block store."""
        self._ensure_open()
        return self.federation.storage_stats()

    def health(self) -> dict:
        """One aggregated health report across every serving layer.

        Includes the server's worker/sweeper liveness (when a server is
        running), per-shard recovery state and retry counters from the
        federation, process-wide locate fan-out degradations, and the
        disk cache's quarantine count.  Safe to call on a closed engine.
        """
        from repro.core.debloat import fanout_events

        if self._closed:
            out: dict = {"state": "closed"}
        elif self._server is not None:
            out = self._server.health()
        else:
            self._ensure_open()
            target = self.federation.health()
            out = {"state": target["state"], "target": target}
        if not self._closed:
            out["storage"] = self.federation.storage_stats()
        events = fanout_events()
        out["fanout_degraded"] = len(events)
        out["quarantined_entries"] = self.cache.stats().get(
            "disk_quarantined", 0
        )
        if self._remote_pool is not None:
            out["remote"] = self._remote_pool.health()
        if self._durability is not None:
            out["durability"] = self._durability.health()
        return out

    # -- inspection -----------------------------------------------------------

    def inspect(self, request: InspectRequest) -> EngineResult:
        """Describe one generated library (rendered text).

        The kernel listing is served from the engine's cached
        :class:`~repro.core.kindex.KernelUsageIndex` - in-process first,
        then the persisted disk tier - so repeated inspects never re-parse
        the fatbin.
        """
        self._ensure_open()
        from repro.tools.inspect import (
            block_report,
            describe_library,
            kernel_listing,
            readelf_sections,
        )

        start = time.perf_counter()
        scale = self.config.scale
        archs = tuple(self.config.archs)
        framework = get_framework(request.framework, scale=scale, archs=archs)
        parts = []
        source = None
        lib = None
        if request.soname:
            lib = framework.libraries.get(request.soname)
            if lib is None:
                err = UsageError(
                    f"no library {request.soname!r} in {request.framework}"
                )
                err.available = sorted(framework.libraries)
                raise err
            parts.append(describe_library(lib))
        elif not request.blocks:
            raise UsageError(
                "inspect needs a soname (or the blocks view)"
            )
        if request.blocks:
            parts.append(block_report(self.federation.storage_report()))
        if lib is not None and request.sections:
            parts.append(readelf_sections(lib))
        if lib is not None and request.kernels and lib.has_gpu_code:
            if self.config.use_cache:
                index, source = self.cache.library_index(
                    lib, request.framework, scale, archs
                )
            else:
                from repro.core.kindex import index_for

                index, source = index_for(lib), "computed"
            parts.append(kernel_listing(lib, index=index))
        return EngineResult(
            kind="inspect",
            value="\n\n".join(parts),
            wall_s=time.perf_counter() - start,
            framework=request.framework,
            fingerprint=framework_build_fingerprint(
                request.framework, scale, archs
            ),
            cache_source=source,
        )

    # -- cache control --------------------------------------------------------

    def configure_cache(
        self,
        enabled: bool | None = None,
        disk_enabled: bool | None = None,
        cache_dir=None,
        quarantine: bool | None = None,
    ) -> None:
        """Adjust the process-wide pipeline cache (None = leave unchanged)."""
        self.cache.configure(
            enabled=enabled,
            disk_enabled=disk_enabled,
            cache_dir=cache_dir,
            quarantine=quarantine,
        )


#: Lazily constructed singleton behind the deprecation shims and the
#: experiment helpers: one opened engine over the process-wide cache.
_DEFAULT_ENGINE: DebloatEngine | None = None


def default_engine() -> DebloatEngine:
    """The process-wide engine (opened on first use, never auto-closed)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None or _DEFAULT_ENGINE.closed:
        _DEFAULT_ENGINE = DebloatEngine().open()
    return _DEFAULT_ENGINE

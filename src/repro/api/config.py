"""Engine configuration: one object that subsumes every pipeline knob.

Before the :mod:`repro.api` facade existed, each entry point wired its own
slice of configuration by hand - ``DebloatOptions`` for the pipeline, cache
flags on the CLIs, worker counts on the server, scale/arch arguments on the
experiment helpers.  :class:`EngineConfig` is the single place all of those
live now: construct one, hand it to
:class:`~repro.api.engine.DebloatEngine`, and every layer underneath (the
pipeline cache, the store federation, the admission server) reads the same
object.

:class:`EvictionPolicy` is the serving-side half: how a long-running engine
sheds idle workloads.  Last-served timestamps are fed by request traffic
(every admission touches its workload), and a sweep - explicit via
:meth:`~repro.api.engine.DebloatEngine.sweep`, or periodic via the server's
background sweeper - applies the policy:

* ``ttl`` - evict workloads idle longer than ``ttl_s``;
* ``lru`` - keep at most ``max_workloads`` per framework shard, evicting
  the least recently served beyond the cap;
* ``pinned`` - only explicitly pinned workloads survive a sweep;
* ``bytes`` - cap the shared content-addressed block store at
  ``budget_bytes`` physical bytes, evicting the cheapest-to-rebuild per
  byte freed first (rebuild cost = tracked admission virtual time);
* ``none`` - never evict (the default).

Pinned workloads (``pinned`` here, or ``AdmitRequest(pinned=True)``) are
never evicted under any mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.debloat import DebloatOptions
from repro.cuda.arch import SHIPPED_ARCHITECTURES
from repro.errors import ConfigurationError
from repro.experiments.common import DEFAULT_SCALE
from repro.utils.retry import RetryPolicy

#: Modes :class:`EvictionPolicy` accepts.
EVICTION_MODES = ("none", "ttl", "lru", "pinned", "bytes")

#: WAL fsync policies :class:`DurabilityConfig` accepts (strictest first).
WAL_FSYNC_POLICIES = ("always", "batch", "off")


@dataclass(frozen=True)
class DurabilityConfig:
    """Crash-consistent durability: WAL, auto-recovery, checkpointing.

    With ``enabled``, every committed admission/eviction/reset appends to
    a per-shard write-ahead log (:mod:`repro.serving.wal`) and
    ``DebloatEngine.open()`` recovers the committed state automatically:
    newest checkpoint snapshot first, then the WAL tail replayed through
    the zero-run cached-usage path.  ``fsync`` picks the durability/
    latency trade-off (``always`` per append, ``batch`` every
    ``fsync_batch_n`` appends, ``off`` = flush only - survives process
    death, not power loss).  ``checkpoint_interval_s`` runs a background
    export-then-truncate checkpointer bounding WAL replay time.
    """

    enabled: bool = False
    #: Root for WAL + checkpoint files; None = ``<snapshot_dir>/durability``.
    directory: str | None = None
    fsync: str = "batch"
    #: ``batch`` policy: appends between physical syncs.
    fsync_batch_n: int = 8
    #: Period of the background checkpointer (None = manual only).
    checkpoint_interval_s: float | None = None

    def __post_init__(self) -> None:
        if self.fsync not in WAL_FSYNC_POLICIES:
            raise ConfigurationError(
                f"wal fsync policy must be one of {WAL_FSYNC_POLICIES}, "
                f"got {self.fsync!r}"
            )
        if self.fsync_batch_n < 1:
            raise ConfigurationError("fsync_batch_n must be >= 1")
        if (
            self.checkpoint_interval_s is not None
            and self.checkpoint_interval_s <= 0
        ):
            raise ConfigurationError(
                "checkpoint_interval_s must be positive"
            )


@dataclass(frozen=True)
class LivenessConfig:
    """Remote-shard liveness: deadlines, heartbeats, circuit breaking.

    ``op_deadline_s`` bounds every send+recv against a worker process (a
    wedged worker surfaces as :class:`~repro.errors.RemoteShardError`
    instead of blocking forever).  ``heartbeat_interval_s`` runs a
    supervisor thread probing each worker's ``ping`` op.
    ``breaker_threshold`` consecutive transport failures open a per-worker
    circuit breaker: calls fast-fail for ``breaker_cooldown_s``, then one
    half-open probe either closes the breaker or re-opens it - so a hung
    worker degrades its shard to ``recovering`` (last-good snapshot
    reads) instead of stalling every caller.
    """

    #: Per-operation send+recv deadline (None = wait forever).
    op_deadline_s: float | None = 30.0
    #: Period of the supervisor heartbeat probes (None = no heartbeats).
    heartbeat_interval_s: float | None = None
    #: Consecutive transport failures before the breaker opens
    #: (None = breaker disabled).
    breaker_threshold: int | None = 3
    #: Seconds an open breaker fast-fails before a half-open probe.
    breaker_cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        if self.op_deadline_s is not None and self.op_deadline_s <= 0:
            raise ConfigurationError("op_deadline_s must be positive")
        if (
            self.heartbeat_interval_s is not None
            and self.heartbeat_interval_s <= 0
        ):
            raise ConfigurationError(
                "heartbeat_interval_s must be positive"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise ConfigurationError("breaker_cooldown_s must be positive")


@dataclass(frozen=True)
class DegradedModes:
    """What the engine is allowed to do when a component fails.

    Each knob trades a little fidelity for availability; all default on,
    matching the ISSUE's failure model (see README "Failure model &
    degraded modes"):

    * ``fanout_thread_fallback`` - a process-pool locate fan-out whose
      pool breaks twice (original + one rebuild) re-runs the same shards
      on threads instead of failing the admission; off = the
      ``BrokenProcessPool`` propagates (and the retry policy decides).
    * ``serve_last_good_reads`` - while a shard is mid-recovery (a worker
      is retrying an admission against it), federation reads serve the
      shard's last successfully committed :class:`StoreSnapshot` instead
      of blocking or erroring.
    * ``quarantine_corrupt_entries`` - corrupt disk-cache entries move to
      the ``quarantine/`` sidecar for inspection; off = they are deleted
      outright.  Either way the entry is recomputed.
    """

    fanout_thread_fallback: bool = True
    serve_last_good_reads: bool = True
    quarantine_corrupt_entries: bool = True


@dataclass(frozen=True)
class EvictionPolicy:
    """Traffic-driven store eviction (see module docstring for the modes)."""

    mode: str = "none"
    #: ``ttl`` mode: seconds a workload may sit idle before eviction.
    ttl_s: float | None = None
    #: ``lru`` mode: per-shard cap on distinct admitted workloads.
    max_workloads: int | None = None
    #: ``bytes`` mode: cap on the shared block store's physical bytes;
    #: sweeps evict cheapest-to-rebuild-per-byte-freed until it holds.
    budget_bytes: int | None = None
    #: Workload ids that are never evicted, under any mode.
    pinned: frozenset[str] = frozenset()
    #: Period of the server's background sweeper (None = no background
    #: sweeps; callers can still sweep explicitly).
    sweep_interval_s: float | None = None

    #: Which per-mode knob each mode consumes; setting any *other* mode's
    #: knob is a contradiction the constructor rejects by field name.
    _MODE_KNOBS = {
        "ttl": "ttl_s",
        "lru": "max_workloads",
        "bytes": "budget_bytes",
    }

    def __post_init__(self) -> None:
        if self.mode not in EVICTION_MODES:
            raise ConfigurationError(
                f"eviction mode must be one of {EVICTION_MODES}, got "
                f"{self.mode!r}"
            )
        if self.mode == "ttl" and (self.ttl_s is None or self.ttl_s < 0):
            raise ConfigurationError(
                "field 'ttl_s': ttl eviction requires a non-negative ttl_s"
            )
        if self.mode == "lru" and (
            self.max_workloads is None or self.max_workloads < 1
        ):
            raise ConfigurationError(
                "field 'max_workloads': lru eviction requires "
                "max_workloads >= 1"
            )
        if self.mode == "bytes" and (
            self.budget_bytes is None or self.budget_bytes < 1
        ):
            raise ConfigurationError(
                "field 'budget_bytes': bytes eviction requires "
                "budget_bytes > 0"
            )
        for knob_mode, knob in self._MODE_KNOBS.items():
            if knob_mode != self.mode and getattr(self, knob) is not None:
                raise ConfigurationError(
                    f"field {knob!r}: only mode {knob_mode!r} uses {knob}; "
                    f"it contradicts mode {self.mode!r}"
                )
        if self.sweep_interval_s is not None:
            if self.sweep_interval_s <= 0:
                raise ConfigurationError(
                    "field 'sweep_interval_s': must be positive"
                )
            if self.mode == "none":
                raise ConfigurationError(
                    "field 'sweep_interval_s': needs an eviction mode - a "
                    "sweeper under mode 'none' would never evict anything"
                )
        object.__setattr__(self, "pinned", frozenset(self.pinned))

    @property
    def enabled(self) -> bool:
        return self.mode != "none"


@dataclass(frozen=True)
class HttpConfig:
    """Knobs for the asyncio HTTP/JSON front-end (:mod:`repro.serving.http`).

    The backpressure contract lives here: ``queue_bound`` caps how many
    admissions may sit behind HTTP at once - the gate sheds beyond it
    with ``503`` + ``Retry-After: retry_after_s`` instead of buffering
    without limit - and ``request_deadline_s`` bounds how long any one
    request may wait before it resolves to ``504``.  ``coalesce_window_s``
    / ``coalesce_max`` shape the request-coalescing window that drains
    concurrent admits into one ``admit_many`` batch.
    """

    #: Bind address; port 0 picks an ephemeral port (tests, CI).
    host: str = "127.0.0.1"
    port: int = 8000
    #: Max admissions in flight behind HTTP before load-shedding.
    queue_bound: int = 64
    #: Seconds the pump waits for more concurrent admits to coalesce
    #: (0 disables coalescing).
    coalesce_window_s: float = 0.005
    #: Cap on admissions per coalesced batch.
    coalesce_max: int = 16
    #: Default per-request deadline; ``deadline_s`` in a body overrides.
    request_deadline_s: float = 30.0
    #: Suggested client back-off carried in 503 ``Retry-After``.
    retry_after_s: int = 1
    max_body_bytes: int = 1 << 20
    #: Ring size of the in-memory structured audit trail.
    audit_log_size: int = 1024
    #: Grace for in-flight responses to flush during drain.
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise ConfigurationError(f"port out of range: {self.port}")
        if self.queue_bound < 1:
            raise ConfigurationError("queue_bound must be >= 1")
        if self.coalesce_window_s < 0:
            raise ConfigurationError("coalesce_window_s must be >= 0")
        if self.coalesce_max < 1:
            raise ConfigurationError("coalesce_max must be >= 1")
        if self.request_deadline_s <= 0:
            raise ConfigurationError("request_deadline_s must be positive")
        if self.retry_after_s < 0:
            raise ConfigurationError("retry_after_s must be >= 0")
        if self.max_body_bytes < 1:
            raise ConfigurationError("max_body_bytes must be >= 1")
        if self.audit_log_size < 1:
            raise ConfigurationError("audit_log_size must be >= 1")
        if self.drain_timeout_s <= 0:
            raise ConfigurationError("drain_timeout_s must be positive")


@dataclass(frozen=True)
class EngineConfig:
    """Everything a :class:`~repro.api.engine.DebloatEngine` needs.

    Subsumes the knobs the old entry points wired by hand:

    * **pipeline** - ``options`` (a full :class:`DebloatOptions`, including
      the ``locate_workers``/``locate_workers_mode`` fan-out), ``scale``
      and ``archs`` (which framework build the engine debloats);
    * **cache** - ``use_cache`` (route reports, admission usage, and kernel
      indexes through the two-tier pipeline cache), ``disk_cache`` /
      ``cache_dir`` (explicit disk-tier overrides applied on ``open()``;
      ``None`` leaves the process-wide settings alone);
    * **serving** - admission ``workers`` and ``batch_max`` for the queue
      server, ``verify_admissions``, the ``eviction`` policy, and the
      ``http`` front-end knobs (:class:`HttpConfig`);
    * **fault tolerance** - the worker ``retry`` policy
      (:class:`~repro.utils.retry.RetryPolicy`) and the
      :class:`DegradedModes` knobs;
    * **federation** - ``remote_shards`` (run framework stores in that
      many worker processes, consistent-hash routed by build
      fingerprint; 0 = everything in-process) and ``snapshot_dir`` (root
      for warm store snapshots: workers auto-export under
      ``<dir>/workers/<name>`` and recover from there after a crash;
      engine-level export/import defaults to ``<dir>/federation``);
    * **durability / liveness** - ``durability``
      (:class:`DurabilityConfig`: per-shard write-ahead log with
      automatic crash recovery on ``open()`` and background
      checkpointing) and ``liveness`` (:class:`LivenessConfig`:
      per-operation deadlines, heartbeat probes, and a per-worker
      circuit breaker for the remote-shard pool).
    """

    scale: float = DEFAULT_SCALE
    archs: tuple[int, ...] = SHIPPED_ARCHITECTURES
    options: DebloatOptions = field(default_factory=DebloatOptions)
    use_cache: bool = True
    disk_cache: bool | None = None
    cache_dir: str | None = None
    verify_admissions: bool = False
    workers: int = 2
    batch_max: int = 1
    eviction: EvictionPolicy = field(default_factory=EvictionPolicy)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degraded_modes: DegradedModes = field(default_factory=DegradedModes)
    http: HttpConfig = field(default_factory=HttpConfig)
    remote_shards: int = 0
    snapshot_dir: str | None = None
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    liveness: LivenessConfig = field(default_factory=LivenessConfig)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.batch_max < 1:
            raise ConfigurationError("batch_max must be >= 1")
        if self.remote_shards < 0:
            raise ConfigurationError("remote_shards must be >= 0")
        if (
            self.durability.enabled
            and self.durability.directory is None
            and self.snapshot_dir is None
        ):
            raise ConfigurationError(
                "durability needs a directory: set durability.directory "
                "or snapshot_dir"
            )
        object.__setattr__(self, "archs", tuple(self.archs))

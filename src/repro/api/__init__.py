"""Unified public API: one typed facade over detect/locate/compact/verify.

Quickstart::

    from repro.api import AdmitRequest, DebloatEngine, DebloatRequest, EngineConfig

    with DebloatEngine(EngineConfig(scale=0.125)) as engine:
        result = engine.debloat(
            DebloatRequest(workload_id="pytorch/train/mobilenetv2")
        )
        print(result.report.file_reduction_pct, result.cache_source)
        engine.admit(AdmitRequest(workload_id="pytorch/train/transformer"))
        print(engine.snapshot().frameworks)

The engine hosts a :class:`~repro.api.federation.StoreFederation` - one
:class:`~repro.serving.store.DebloatStore` shard per framework, routed by
each request's spec - and applies the configured
:class:`~repro.api.config.EvictionPolicy` (ttl/lru/pinned) on sweeps.  The
legacy entry points (``Debloater.debloat_many``,
``repro.experiments.common.report_for``, the CLIs) are thin adapters over
this package.
"""

from repro.api.config import (
    EVICTION_MODES,
    DegradedModes,
    EngineConfig,
    EvictionPolicy,
    HttpConfig,
)
from repro.api.engine import DebloatEngine, default_engine
from repro.api.federation import (
    FederationShard,
    FederationSnapshot,
    ShardSnapshot,
    StoreFederation,
    SweptWorkload,
)
from repro.api.requests import (
    AdmitRequest,
    DebloatRequest,
    EngineResult,
    EvictRequest,
    InspectRequest,
)

__all__ = [
    "AdmitRequest",
    "DebloatEngine",
    "DebloatRequest",
    "DegradedModes",
    "EVICTION_MODES",
    "EngineConfig",
    "EngineResult",
    "EvictRequest",
    "EvictionPolicy",
    "FederationShard",
    "FederationSnapshot",
    "HttpConfig",
    "InspectRequest",
    "ShardSnapshot",
    "StoreFederation",
    "SweptWorkload",
    "default_engine",
]

"""Federated multi-framework serving: N per-framework store shards.

A :class:`~repro.serving.store.DebloatStore` serves one framework build;
production traffic spans several (the paper's Table 1 alone covers four).
:class:`StoreFederation` hosts one store *shard* per framework - keyed by
the framework-build fingerprint - and routes every admission by its spec's
framework, creating shards on demand from the catalog.  On top of routing
it adds what a long-running service needs and a single store does not have:

* **last-served timestamps fed by request traffic** - every admission
  (fresh or duplicate) touches its workload's timestamp, so idleness is
  defined by what callers actually request, not by what the store holds;
* **policy-driven eviction** (:class:`~repro.api.config.EvictionPolicy`):
  :meth:`sweep` applies ttl/lru/pinned rules per shard, evicting through
  :meth:`DebloatStore.evict` - which rebuilds the union from the remaining
  admissions and re-compacts only the libraries that actually shrank;
* **federation-wide snapshots** - one immutable
  :class:`FederationSnapshot` pairing every shard's generation-numbered
  :class:`~repro.serving.store.StoreSnapshot` with its fingerprint and
  traffic state.

The federation exposes the same ``admit``/``admit_many``/``snapshot``/
``stats`` surface as a single store, so the queue-draining
:class:`~repro.serving.server.DebloatServer` fronts either interchangeably
(and batches spanning frameworks split per shard).

With a :class:`~repro.serving.remote.RemoteShardPool` attached, catalog
shards leave the process: each framework's build fingerprint is
consistent-hashed onto a worker (:class:`~repro.serving.remote.HashRing`),
and the shard's ``store`` becomes a
:class:`~repro.serving.remote.RemoteStoreClient` - same duck-typed
surface, so routing, eviction, recovery tracking, and the server stack
are unchanged.  Hand-built (non-catalog) shards registered through
:meth:`ensure_shard` have no fingerprint to route by and always stay
local, which is how local and remote shards coexist in one federation.
:meth:`export_snapshot` / :meth:`import_snapshot` move whole federations
through the versioned on-disk image format
(:mod:`repro.serving.snapshot`): a fresh replica imports every shard's
committed epoch - local or remote - byte-identically, with zero workload
runs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Mapping

from repro.api.config import EngineConfig
from repro.core.debloat import MultiWorkloadReport
from repro.errors import TransientError, UsageError
from repro.frameworks.catalog import (
    build_key_for,
    framework_build_fingerprint,
    get_framework,
)
from repro.frameworks.spec import Framework
from repro.serving import snapshot as snapshots
from repro.serving.store import (
    AdmissionResult,
    DebloatStore,
    EvictionResult,
    StoreSnapshot,
)
from repro.storage.blockstore import BlockStore
from repro.storage.evictor import CostAwareEvictor, EvictionCandidate
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class SweptWorkload:
    """One workload a :meth:`StoreFederation.sweep` evicted."""

    framework: str
    workload_id: str
    #: Seconds since the workload was last served, at sweep time.
    idle_s: float
    #: Which policy rule evicted it: ``ttl``/``lru``/``unpinned``/``bytes``.
    reason: str
    result: EvictionResult


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's consistent view plus its traffic state."""

    framework: str
    #: Build fingerprint for catalog builds, None for hand-built shards.
    fingerprint: str | None
    store: StoreSnapshot
    #: workload id -> last-served clock reading (federation clock units).
    last_served: Mapping[str, float]
    pinned: tuple[str, ...]
    #: ``ok`` / ``recovering`` (a worker is retrying against this shard;
    #: ``store`` may be the last-good epoch) / ``degraded`` (the last
    #: admission failed permanently).
    state: str = "ok"


@dataclass(frozen=True)
class FederationSnapshot:
    """An immutable view across every shard (taken under the routing lock)."""

    shards: Mapping[str, ShardSnapshot]

    @property
    def frameworks(self) -> tuple[str, ...]:
        return tuple(sorted(self.shards))

    @property
    def total_file_size(self) -> int:
        return sum(s.store.total_file_size for s in self.shards.values())

    @property
    def total_file_size_after(self) -> int:
        return sum(
            s.store.total_file_size_after for s in self.shards.values()
        )

    @property
    def workload_count(self) -> int:
        return sum(len(s.store.workload_ids) for s in self.shards.values())


#: The committed-nothing epoch a freshly routed remote shard reports
#: until its first admission (or snapshot import) lands.
_EMPTY_STORE_SNAPSHOT = StoreSnapshot(
    generation=0,
    workload_ids=(),
    libraries=MappingProxyType({}),
    union_kernels=0,
    union_functions=0,
    reductions=(),
)


class FederationShard:
    """One framework's store plus the federation's per-shard traffic state."""

    def __init__(
        self,
        framework: Framework,
        config: EngineConfig,
        cache=None,
        blockstore=None,
    ) -> None:
        self.framework = framework
        self.name = framework.name
        #: True when ``store`` is a RemoteStoreClient in a worker process.
        self.remote = False
        # Fingerprint of the build this shard ACTUALLY serves: derived
        # from the instance's own catalog generation key, never from the
        # engine config (ensure_shard may host a build - e.g. a
        # single-arch ablation - that differs from config.archs).
        build_key = build_key_for(framework)
        self.fingerprint = (
            framework_build_fingerprint(*build_key)
            if build_key is not None
            else None
        )
        self.store = DebloatStore(
            framework,
            config.options,
            use_cache=config.use_cache,
            cache=cache,
            blockstore=blockstore,
        )
        #: workload id -> last-served clock reading; the eviction policy's
        #: only input besides pins.
        self.last_served: dict[str, float] = {}
        self.pinned: set[str] = set()
        #: Rebuild-cost model for the byte-budget eviction mode: each
        #: workload's observed admission virtual time and the marginal
        #: growth of the shard's compacted union it caused.
        self.admit_cost_s: dict[str, float] = {}
        self.admit_bytes: dict[str, int] = {}
        self._union_after_seen = 0
        #: ``ok`` / ``recovering`` / ``degraded`` - see ShardSnapshot.
        self.state = "ok"
        self.consecutive_failures = 0
        self.retries = 0
        self.last_error: str | None = None
        #: The last successfully committed epoch; served for reads while
        #: the shard is mid-recovery (``degraded_modes.serve_last_good_reads``).
        self.last_good: StoreSnapshot = self.store.snapshot()

    @classmethod
    def for_remote(
        cls, name: str, fingerprint: str | None, client
    ) -> "FederationShard":
        """A shard fronting a worker-process store through ``client``.

        Constructed without generating the framework in this process -
        the fingerprint comes from the catalog's build key alone, and the
        worker generates (or snapshot-imports) the actual build.
        """
        shard = cls.__new__(cls)
        shard.framework = None
        shard.name = name
        shard.remote = True
        shard.fingerprint = fingerprint
        shard.store = client
        shard.last_served = {}
        shard.pinned = set()
        shard.admit_cost_s = {}
        shard.admit_bytes = {}
        shard._union_after_seen = 0
        shard.state = "ok"
        shard.consecutive_failures = 0
        shard.retries = 0
        shard.last_error = None
        # No remote round-trip at registration: the worker spawns lazily
        # on the first admission, and note_success refreshes last_good.
        shard.last_good = _EMPTY_STORE_SNAPSHOT
        return shard

    def touch(self, workload_id: str, now: float, pinned: bool) -> None:
        self.last_served[workload_id] = now
        if pinned:
            self.pinned.add(workload_id)

    def forget(self, workload_id: str) -> None:
        self.last_served.pop(workload_id, None)
        self.pinned.discard(workload_id)
        self.admit_cost_s.pop(workload_id, None)
        self.admit_bytes.pop(workload_id, None)

    def note_admission(self, workload_id: str, result) -> None:
        """Record the byte-budget cost model's inputs for one admission.

        The admission's virtual pipeline time is the workload's rebuild
        cost (what evicting it would make a later re-admission pay), and
        the marginal growth of the shard's compacted union is its bytes
        estimate.  A duplicate admission grows nothing and keeps the
        original estimates.
        """
        after = int(result.union_file_size_after)
        grown = max(0, after - self._union_after_seen)
        self._union_after_seen = max(self._union_after_seen, after)
        if grown > 0 or workload_id not in self.admit_bytes:
            self.admit_bytes[workload_id] = max(1, grown)
        self.admit_cost_s[workload_id] = max(
            self.admit_cost_s.get(workload_id, 0.0),
            float(result.admit_virtual_s),
        )

    # -- recovery state (called under the federation's routing lock) ---------

    def note_retry(self, error: BaseException) -> None:
        self.state = "recovering"
        self.consecutive_failures += 1
        self.retries += 1
        self.last_error = f"{type(error).__name__}: {error}"

    def note_failure(self, error: BaseException) -> None:
        self.state = "degraded"
        self.consecutive_failures += 1
        self.last_error = f"{type(error).__name__}: {error}"

    def note_success(self) -> None:
        self.state = "ok"
        self.consecutive_failures = 0
        self.last_good = self.store.snapshot()


class StoreFederation:
    """Routes admissions across per-framework shards and applies eviction."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        cache=None,
        remote_pool=None,
        durability=None,
    ) -> None:
        self.config = config or EngineConfig()
        self.policy = self.config.eviction
        self._clock = clock
        #: Pipeline-cache override threaded into every shard's store
        #: (None = the process-wide cache, resolved dynamically).
        self._cache = cache
        #: A :class:`~repro.serving.remote.RemoteShardPool`; when set,
        #: catalog shards are consistent-hash routed onto its workers.
        self._remote_pool = remote_pool
        #: A :class:`~repro.serving.wal.DurabilityController`; when set,
        #: every locally created shard gets its write-ahead log attached
        #: so committed mutations are journaled from the first admission.
        self._durability = durability
        #: Guards shard creation and traffic bookkeeping; the expensive
        #: work (detection, delta compaction) runs under each store's own
        #: admission lock, never under this one.
        self._lock = threading.RLock()
        self._shards: dict[str, FederationShard] = {}
        self._stat_sweeps = 0
        self._stat_evicted = 0
        #: One content-addressed block store shared by every local shard:
        #: byte-identical chunks admitted into different framework shards
        #: collapse to a single refcounted physical copy, and the
        #: byte-budget eviction mode sweeps against its physical size.
        #: (Remote shards' worker processes hold their own.)
        self.blockstore = BlockStore()

    # -- shards ---------------------------------------------------------------

    def ensure_shard(self, framework: Framework) -> FederationShard:
        """Register (or fetch) the shard hosting ``framework``.

        The explicit-instance form exists for non-catalog builds (the
        ``debloat_many`` shim hands over whatever framework the caller
        constructed); :meth:`shard` creates catalog shards by name.
        """
        with self._lock:
            shard = self._shards.get(framework.name)
            if shard is None:
                shard = FederationShard(
                    framework, self.config, self._cache, self.blockstore
                )
                self._shards[framework.name] = shard
                if self._durability is not None:
                    self._durability.attach(shard)
            elif shard.framework is not framework:
                raise UsageError(
                    f"federation already hosts a different "
                    f"{framework.name!r} build"
                )
            return shard

    def shard(self, framework_name: str) -> FederationShard:
        """The shard serving ``framework_name``, built from the catalog.

        With a remote pool attached the shard's build fingerprint (a
        pure catalog computation - nothing is generated here) routes it
        onto a worker through the consistent-hash ring; without one the
        framework is generated locally as before.
        """
        with self._lock:
            existing = self._shards.get(framework_name)
            if existing is not None:
                return existing
        if self._remote_pool is not None:
            fingerprint = framework_build_fingerprint(
                framework_name,
                self.config.scale,
                tuple(self.config.archs),
            )
            client = self._remote_pool.client_for(
                framework_name, fingerprint
            )
            with self._lock:
                existing = self._shards.get(framework_name)
                if existing is not None:
                    return existing
                shard = FederationShard.for_remote(
                    framework_name, fingerprint, client
                )
                self._shards[framework_name] = shard
                return shard
        # Framework generation can be expensive; do it outside the lock.
        framework = get_framework(
            framework_name,
            scale=self.config.scale,
            archs=tuple(self.config.archs),
        )
        with self._lock:
            existing = self._shards.get(framework_name)
            if existing is not None:
                # A racing builder won.  Catalog generation is
                # deterministic, so the instances are equivalent builds -
                # keep the registered shard.
                return existing
            shard = FederationShard(
                framework, self.config, self._cache, self.blockstore
            )
            self._shards[framework_name] = shard
            if self._durability is not None:
                self._durability.attach(shard)
            return shard

    def local_shards(self) -> list[FederationShard]:
        """Every registered in-process shard (checkpointing walks these)."""
        with self._lock:
            return [s for s in self._shards.values() if not s.remote]

    def warm_shard(self, framework_name: str) -> int:
        """Refresh traffic/recovery bookkeeping after an out-of-band install.

        Durability recovery installs store state directly (snapshot
        import + WAL replay); this brings the federation's view in line:
        recovered workloads enter the eviction clock as freshly served,
        the shard reads as ``ok``, and ``last_good`` is the recovered
        epoch.  Returns the shard's generation.
        """
        with self._lock:
            shard = self._shards[framework_name]
            snap = shard.store.snapshot()
            now = self._clock()
            for workload_id in snap.workload_ids:
                shard.touch(workload_id, now, False)
            shard.state = "ok"
            shard.consecutive_failures = 0
            shard.last_good = snap
            return snap.generation

    def route_for(self, framework_name: str) -> str:
        """Where ``framework_name`` is (or would be) hosted.

        ``"local"`` without a remote pool (and for already-registered
        local shards); otherwise the pool worker its build fingerprint
        hashes onto.  Pure computation - nothing is spawned or built.
        """
        with self._lock:
            existing = self._shards.get(framework_name)
            if existing is not None and not existing.remote:
                return "local"
        if self._remote_pool is None:
            return "local"
        return self._remote_pool.node_for(
            framework_build_fingerprint(
                framework_name,
                self.config.scale,
                tuple(self.config.archs),
            )
        )

    def frameworks(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._shards))

    # -- admission ------------------------------------------------------------

    def admit(
        self,
        spec: WorkloadSpec,
        verify: bool = False,
        pinned: bool = False,
    ) -> AdmissionResult:
        """Route one admission to its framework's shard and record traffic."""
        shard = self.shard(spec.framework)
        result = shard.store.admit(spec, verify=verify)
        with self._lock:
            shard.touch(spec.workload_id, self._clock(), pinned)
            shard.note_admission(spec.workload_id, result)
            shard.note_success()
        return result

    def admit_many(
        self, specs: list[WorkloadSpec], verify: bool = False
    ) -> list[AdmissionResult]:
        """Batch admission across shards, preserving input order.

        Specs are grouped by framework and each group drains through its
        shard's :meth:`DebloatStore.admit_many` (one union merge + one
        delta pass per grown library).  Groups validate upfront within
        their own shard; a malformed group raises with *that shard*
        untouched - callers that need all-or-nothing across shards (the
        server's drained batches) fall back to per-spec admission, which
        is safe because re-admission is idempotent.
        """
        if not specs:
            raise UsageError("admit_many needs at least one workload")
        groups: dict[str, list[int]] = {}
        for pos, spec in enumerate(specs):
            groups.setdefault(spec.framework, []).append(pos)
        results: list[AdmissionResult | None] = [None] * len(specs)
        for framework_name, positions in groups.items():
            shard = self.shard(framework_name)
            group_results = shard.store.admit_many(
                [specs[pos] for pos in positions], verify=verify
            )
            now = self._clock()
            with self._lock:
                for pos, result in zip(positions, group_results):
                    results[pos] = result
                    shard.touch(specs[pos].workload_id, now, False)
                    shard.note_admission(specs[pos].workload_id, result)
                shard.note_success()
        return results  # type: ignore[return-value]

    # -- recovery tracking ----------------------------------------------------
    # Duck-typed hooks the DebloatServer workers call on their target;
    # a shard that has not been created yet (the very first admission of a
    # framework failed before its shard registered) is simply skipped.

    def mark_recovering(self, spec: WorkloadSpec, error: BaseException) -> None:
        """A worker is retrying ``spec``'s admission after a transient error."""
        with self._lock:
            shard = self._shards.get(spec.framework)
            if shard is not None:
                shard.note_retry(error)

    def record_failure(self, spec: WorkloadSpec, error: BaseException) -> None:
        """``spec``'s admission failed permanently (retry budget exhausted)."""
        with self._lock:
            shard = self._shards.get(spec.framework)
            if shard is not None:
                shard.note_failure(error)

    def record_success(self, spec: WorkloadSpec) -> None:
        """``spec``'s admission committed; the shard is healthy again."""
        with self._lock:
            shard = self._shards.get(spec.framework)
            if shard is not None:
                shard.note_success()

    def touch(self, workload_id: str, framework: str | None = None) -> int:
        """Refresh last-served timestamps without admitting (read traffic)."""
        now = self._clock()
        touched = 0
        with self._lock:
            for shard in self._shards.values():
                if framework is not None and shard.name != framework:
                    continue
                if workload_id in shard.last_served:
                    shard.last_served[workload_id] = now
                    touched += 1
        return touched

    # -- eviction -------------------------------------------------------------

    def evict(
        self, workload_id: str, framework: str | None = None
    ) -> dict[str, EvictionResult]:
        """Evict a workload from every shard holding it (or one shard)."""
        with self._lock:
            shards = [
                shard
                for shard in self._shards.values()
                if framework is None or shard.name == framework
            ]
        results: dict[str, EvictionResult] = {}
        for shard in shards:
            if workload_id not in set(
                shard.store.snapshot().workload_ids
            ):
                continue
            try:
                results[shard.name] = shard.store.evict(workload_id)
            except UsageError:
                # Raced with the background sweeper (or another evictor):
                # the workload is gone, which is what this call wanted.
                continue
            with self._lock:
                shard.forget(workload_id)
                self._stat_evicted += 1
        if not results:
            held = sorted(
                {
                    wid
                    for shard in shards
                    for wid in shard.store.snapshot().workload_ids
                }
            )
            raise UsageError(
                f"{workload_id!r} is not admitted"
                + (f" in {framework!r}" if framework else "")
                + f"; held: {held}"
            )
        return results

    def sweep(self, now: float | None = None) -> list[SweptWorkload]:
        """Apply the eviction policy to every shard.

        Victim selection reads the traffic state under the routing lock;
        the evictions themselves (union rebuild + recompaction of shrunk
        libraries) run under each store's own admission lock.  A workload
        re-admitted between selection and eviction is still evicted - TTL
        serving is approximate by design, and a later request simply
        re-admits (cheaply, from recorded usage) what the sweep dropped.
        """
        if now is None:
            now = self._clock()
        if self.policy.mode == "bytes":
            return self._sweep_bytes(now)
        with self._lock:
            self._stat_sweeps += 1
            victims = [
                (shard, workload_id, idle, reason)
                for shard in self._shards.values()
                for workload_id, idle, reason in self._victims(shard, now)
            ]
        swept: list[SweptWorkload] = []
        for shard, workload_id, idle, reason in victims:
            try:
                result = shard.store.evict(workload_id)
            except UsageError:
                continue  # raced with an explicit evict; already gone
            with self._lock:
                shard.forget(workload_id)
                self._stat_evicted += 1
            swept.append(
                SweptWorkload(
                    framework=shard.name,
                    workload_id=workload_id,
                    idle_s=idle,
                    reason=reason,
                    result=result,
                )
            )
        return swept

    def _sweep_bytes(self, now: float) -> list[SweptWorkload]:
        """Byte-budget sweep: evict cheapest-rebuild-per-byte until it fits.

        Victim selection runs against the **shared block store's physical
        bytes** - what the federation actually occupies after dedupe - not
        the sum of logical shard sizes.  Each round picks the unpinned
        workload with the lowest tracked rebuild-cost-per-byte-freed
        (:class:`~repro.storage.evictor.CostAwareEvictor`), evicts it, and
        re-reads the physical size: shared blocks mean an eviction can
        free fewer bytes than estimated, so the loop measures instead of
        trusting the plan.  Remote shards are skipped (their bytes live in
        worker processes, not this block store).
        """
        evictor = CostAwareEvictor(self.policy.budget_bytes)
        with self._lock:
            self._stat_sweeps += 1
        swept: list[SweptWorkload] = []
        while True:
            physical = self.blockstore.stats()["bytes_physical"]
            if not evictor.over_budget(physical):
                break
            with self._lock:
                candidates = []
                for shard in self._shards.values():
                    if shard.remote:
                        continue
                    protected = shard.pinned | set(self.policy.pinned)
                    for wid, served in shard.last_served.items():
                        if wid in protected:
                            continue
                        candidates.append(
                            EvictionCandidate(
                                framework=shard.name,
                                workload_id=wid,
                                rebuild_cost_s=shard.admit_cost_s.get(
                                    wid, 0.0
                                ),
                                bytes_estimate=shard.admit_bytes.get(wid, 1),
                                idle_s=now - served,
                            )
                        )
            victim = evictor.pick(candidates)
            if victim is None:
                break
            with self._lock:
                shard = self._shards.get(victim.framework)
            if shard is None:
                break
            try:
                result = shard.store.evict(victim.workload_id)
            except UsageError:
                # Raced with an explicit evict; drop it from the traffic
                # state so the next round offers fresh candidates.
                with self._lock:
                    shard.forget(victim.workload_id)
                continue
            with self._lock:
                shard.forget(victim.workload_id)
                self._stat_evicted += 1
            swept.append(
                SweptWorkload(
                    framework=shard.name,
                    workload_id=victim.workload_id,
                    idle_s=victim.idle_s,
                    reason="bytes",
                    result=result,
                )
            )
        return swept

    def _victims(
        self, shard: FederationShard, now: float
    ) -> list[tuple[str, float, str]]:
        """(workload, idle seconds, reason) a sweep should evict, per policy."""
        policy = self.policy
        if not policy.enabled:
            return []
        protected = shard.pinned | set(policy.pinned)
        idle_of = {
            wid: now - served for wid, served in shard.last_served.items()
        }
        candidates = [
            wid for wid in shard.last_served if wid not in protected
        ]
        if policy.mode == "ttl":
            return [
                (wid, idle_of[wid], "ttl")
                for wid in candidates
                if idle_of[wid] > policy.ttl_s
            ]
        if policy.mode == "lru":
            excess = len(shard.last_served) - policy.max_workloads
            if excess <= 0:
                return []
            oldest = sorted(candidates, key=lambda wid: idle_of[wid],
                            reverse=True)
            return [(wid, idle_of[wid], "lru") for wid in oldest[:excess]]
        # "pinned": only explicitly pinned workloads survive.
        return [(wid, idle_of[wid], "unpinned") for wid in candidates]

    # -- readers --------------------------------------------------------------

    def snapshot(self) -> FederationSnapshot:
        """Every shard's consistent view (one immutable object).

        A shard that is mid-recovery (a worker retrying against it) serves
        its **last-good** committed epoch when
        ``degraded_modes.serve_last_good_reads`` is on - readers keep
        getting a consistent library set while the shard heals, they just
        may not see the admission that is being retried yet.
        """
        serve_last_good = self.config.degraded_modes.serve_last_good_reads
        with self._lock:
            return FederationSnapshot(
                shards=MappingProxyType(
                    {
                        name: ShardSnapshot(
                            framework=name,
                            fingerprint=shard.fingerprint,
                            store=(
                                shard.last_good
                                if serve_last_good
                                and shard.state == "recovering"
                                else shard.store.snapshot()
                            ),
                            last_served=MappingProxyType(
                                dict(shard.last_served)
                            ),
                            pinned=tuple(sorted(shard.pinned)),
                            state=shard.state,
                        )
                        for name, shard in self._shards.items()
                    }
                )
            )

    def health(self) -> dict:
        """Per-shard recovery state, retry/rollback counters, last errors.

        Health must never raise and never block on a dead worker: a remote
        shard whose worker cannot answer reports its last-good epoch (and
        the error) instead of propagating the transport failure.
        """
        with self._lock:
            shards = dict(self._shards)
        rows = {}
        for name, shard in shards.items():
            try:
                snap = shard.store.snapshot()
                rollbacks = shard.store.stats().get("rollbacks", 0)
            except (TransientError, OSError) as exc:
                snap = shard.last_good
                rollbacks = 0
                rows[name] = {
                    "state": "recovering",
                    "route": (
                        shard.store.worker if shard.remote else "local"
                    ),
                    "generation": snap.generation,
                    "workloads": len(snap.workload_ids),
                    "consecutive_failures": shard.consecutive_failures,
                    "retries": shard.retries,
                    "rollbacks": rollbacks,
                    "last_error": f"{type(exc).__name__}: {exc}",
                }
                continue
            rows[name] = {
                "state": shard.state,
                "route": shard.store.worker if shard.remote else "local",
                "generation": snap.generation,
                "workloads": len(snap.workload_ids),
                "consecutive_failures": shard.consecutive_failures,
                "retries": shard.retries,
                "rollbacks": rollbacks,
                "last_error": shard.last_error,
            }
        states = {row["state"] for row in rows.values()}
        if "recovering" in states:
            state = "recovering"
        elif "degraded" in states:
            state = "degraded"
        else:
            state = "ok"
        return {"state": state, "shards": rows}

    def report(self, framework_name: str) -> MultiWorkloadReport:
        """One shard's ``debloat_many``-shaped union report."""
        with self._lock:
            shard = self._shards.get(framework_name)
        if shard is None:
            raise UsageError(
                f"federation has no {framework_name!r} shard; serving: "
                f"{sorted(self._shards)}"
            )
        return shard.store.report()

    # -- snapshots ------------------------------------------------------------

    def export_snapshot(self, directory: str) -> dict:
        """Write every shard's committed store image under ``directory``.

        Local and remote shards export uniformly: each store serialises
        its full committed epoch (usage unions, per-library decisions,
        kernel-usage indexes, debloated extents) and
        :func:`~repro.serving.snapshot.write_snapshot` lays them down
        crash-safely with a manifest.  Returns the manifest.
        """
        with self._lock:
            shards = dict(self._shards)
        payloads = {
            name: shard.store.export_state()
            for name, shard in sorted(shards.items())
        }
        return snapshots.write_snapshot(directory, payloads)

    def import_snapshot(self, directory: str) -> dict[str, int]:
        """Warm every shard from the snapshot at ``directory``.

        Creates (or routes, with a remote pool) a shard per imaged
        framework and installs its store image verbatim - **zero**
        workload runs.  Imported workloads enter the eviction clock as
        freshly served.  Returns ``{framework: generation}``.
        """
        payloads = snapshots.load_snapshot(directory)
        generations: dict[str, int] = {}
        now = self._clock()
        for name in sorted(payloads):
            shard = self.shard(name)
            shard.store.import_state(payloads[name])
            snap = shard.store.snapshot()
            with self._lock:
                for workload_id in snap.workload_ids:
                    shard.touch(workload_id, now, False)
                shard.state = "ok"
                shard.consecutive_failures = 0
                shard.last_good = snap
            generations[name] = snap.generation
        return generations

    def stats(self) -> dict[str, int]:
        """Federation-wide counters (per-shard stores summed)."""
        with self._lock:
            shards = list(self._shards.values())
            sweeps, evicted = self._stat_sweeps, self._stat_evicted
        totals: dict[str, int] = {
            "shards": len(shards),
            "sweeps": sweeps,
            "evicted_workloads": evicted,
        }
        for shard in shards:
            for key, value in shard.store.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def storage_stats(self) -> dict[str, int | float]:
        """The shared block store's gauges, ``storage_``-prefixed.

        These are the exact names the Prometheus ``/metrics`` route and
        ``engine.health()`` publish; ``storage_dedupe_ratio`` is a float
        (logical/physical, >= 1.0), everything else an integer byte or
        block count.
        """
        s = self.blockstore.stats()
        return {
            "storage_blocks_total": s["blocks_total"],
            "storage_bytes_physical": s["bytes_physical"],
            "storage_bytes_logical": s["bytes_logical"],
            "storage_dedupe_ratio": s["dedupe_ratio"],
            "storage_evicted_bytes_total": s["evicted_bytes_total"],
        }

    def storage_report(self) -> dict:
        """The ``inspect --blocks`` view: per-shard bytes + top blocks."""
        return {
            "stats": self.blockstore.stats(),
            "per_shard": self.blockstore.per_owner_stats(),
            "top_blocks": self.blockstore.top_blocks(10),
        }

"""Typed request/response dataclasses of the :mod:`repro.api` facade.

Every engine operation takes one request object and returns one
:class:`EngineResult`.  Requests name a workload either by ``spec`` (a full
:class:`~repro.workloads.spec.WorkloadSpec`) or by ``workload_id`` (resolved
against the Table-1 catalog); results uniformly carry the payload plus the
three things every caller of the old ad-hoc entry points had to reconstruct
by hand - cache provenance, wall-clock timing, and the store generation the
operation landed on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.debloat import DebloatOptions
from repro.errors import UsageError
from repro.workloads.spec import WorkloadSpec, workload_by_id


def _resolve_spec(
    spec: WorkloadSpec | None, workload_id: str | None, kind: str
) -> WorkloadSpec:
    if (spec is None) == (workload_id is None):
        raise UsageError(
            f"{kind} needs exactly one of spec= or workload_id="
        )
    if spec is not None:
        return spec
    return workload_by_id(workload_id)


@dataclass(frozen=True)
class DebloatRequest:
    """Run (or fetch cached) the full single-workload debloat pipeline.

    ``scale``/``options``/``archs`` default to the engine's
    :class:`~repro.api.config.EngineConfig`; passing them overrides per
    request (the ablation experiments debloat single-arch rebuilds and
    option variants through the same engine).
    """

    spec: WorkloadSpec | None = None
    workload_id: str | None = None
    scale: float | None = None
    options: DebloatOptions | None = None
    archs: tuple[int, ...] | None = None

    def resolve_spec(self) -> WorkloadSpec:
        return _resolve_spec(self.spec, self.workload_id, "DebloatRequest")


@dataclass(frozen=True)
class AdmitRequest:
    """Admit one workload into the engine's federated serving store.

    ``verify`` (None = the engine's ``verify_admissions``) re-runs the
    workload against the post-admission library set; ``pinned`` marks the
    workload as never evictable by any sweep.
    """

    spec: WorkloadSpec | None = None
    workload_id: str | None = None
    verify: bool | None = None
    pinned: bool = False

    def resolve_spec(self) -> WorkloadSpec:
        return _resolve_spec(self.spec, self.workload_id, "AdmitRequest")


@dataclass(frozen=True)
class EvictRequest:
    """Evict every admission of a workload from the federation.

    ``framework`` narrows the eviction to one shard; ``None`` evicts from
    every shard that holds the workload (raises
    :class:`~repro.errors.UsageError` if none does).
    """

    workload_id: str
    framework: str | None = None


@dataclass(frozen=True)
class InspectRequest:
    """Describe one generated library (the ``negativa-ml inspect`` payload).

    ``kernels`` renders the per-cubin kernel listing from the engine's
    cached :class:`~repro.core.kindex.KernelUsageIndex` - repeated inspects
    (and a warm disk cache) never re-parse the fatbin.

    ``blocks`` renders the federation's content-addressed block-store
    report (per-shard logical vs physical bytes, dedupe ratio, and the
    most-referenced blocks); with ``blocks`` set, ``soname`` may be left
    empty to inspect the store alone.
    """

    framework: str
    soname: str = ""
    sections: bool = False
    kernels: bool = False
    blocks: bool = False


@dataclass(frozen=True)
class EngineResult:
    """Uniform envelope for every engine operation.

    ``value`` is the operation payload (a
    :class:`~repro.core.report.WorkloadDebloatReport`, an
    :class:`~repro.serving.store.AdmissionResult`, eviction records,
    rendered text, ...); typed accessors below assert the kind for callers
    that want early failure over duck typing.
    """

    #: Operation kind: ``debloat``/``admit``/``evict``/``sweep``/
    #: ``inspect``/``report``.
    kind: str
    value: Any
    #: Wall-clock seconds the engine spent on this request.
    wall_s: float
    #: Framework the request resolved to (None for cross-shard sweeps).
    framework: str | None = None
    #: Framework-build fingerprint of the shard/build involved, when the
    #: build came out of the catalog.
    fingerprint: str | None = None
    #: Where the expensive part came from: ``memory``/``disk``/``computed``
    #: for pipeline reports and index queries, ``cache``/``run`` for
    #: admission detection.
    cache_source: str | None = None
    #: Store generation after a mutating operation.
    generation: int | None = None

    def _expect(self, kind: str) -> Any:
        if self.kind != kind:
            raise UsageError(
                f"result holds a {self.kind!r} payload, not {kind!r}"
            )
        return self.value

    @property
    def report(self):
        """The :class:`WorkloadDebloatReport` of a ``debloat`` result."""
        return self._expect("debloat")

    @property
    def admission(self):
        """The :class:`AdmissionResult` of an ``admit`` result."""
        return self._expect("admit")

    @property
    def evictions(self):
        """``{framework: EvictionResult}`` of an ``evict`` result."""
        return self._expect("evict")

    @property
    def swept(self):
        """The :class:`SweptWorkload` list of a ``sweep`` result."""
        return self._expect("sweep")

    @property
    def text(self) -> str:
        """The rendered text of an ``inspect`` result."""
        return self._expect("inspect")

    @property
    def union_report(self):
        """The :class:`MultiWorkloadReport` of a ``report`` result."""
        return self._expect("report")

"""Library inspection helpers (``readelf`` / ``cuobjdump`` style output)."""

from __future__ import annotations

from repro.elf import constants as EC
from repro.elf.image import SharedLibrary
from repro.fatbin.cuobjdump import list_fatbin_elements
from repro.utils.tables import Table, kv_block
from repro.utils.units import fmt_bytes, fmt_count


def readelf_sections(lib: SharedLibrary) -> str:
    """``readelf -S``-style section listing."""
    table = Table(
        ["Nr", "Name", "Type", "Addr", "Offset", "Size", "Flags"],
        title=f"Section headers of {lib.soname}",
    )
    type_names = {
        EC.SHT_NULL: "NULL",
        EC.SHT_PROGBITS: "PROGBITS",
        EC.SHT_SYMTAB: "SYMTAB",
        EC.SHT_STRTAB: "STRTAB",
        EC.SHT_NOBITS: "NOBITS",
        EC.SHT_DYNSYM: "DYNSYM",
    }
    for i, sec in enumerate(lib.sections):
        hdr = sec.header
        flags = ""
        if hdr.sh_flags & EC.SHF_ALLOC:
            flags += "A"
        if hdr.sh_flags & EC.SHF_EXECINSTR:
            flags += "X"
        if hdr.sh_flags & EC.SHF_WRITE:
            flags += "W"
        table.add_row(
            i,
            sec.name or "<null>",
            type_names.get(hdr.sh_type, hex(hdr.sh_type)),
            f"{hdr.sh_addr:#010x}",
            f"{hdr.sh_offset:#010x}",
            f"{hdr.sh_size:#x}",
            flags,
        )
    return table.render()


def describe_library(lib: SharedLibrary, verbose: bool = False) -> str:
    """Human-readable summary: the numbers Negativa-ML's tables are made of."""
    pairs = [
        ("file size", fmt_bytes(lib.file_size)),
        ("CPU code (.text)", fmt_bytes(lib.cpu_code_size)),
        ("functions", fmt_count(lib.function_count)),
        ("GPU code (.nv_fatbin)", fmt_bytes(lib.gpu_code_size)),
        ("fatbin elements", lib.element_count),
        ("proprietary", lib.proprietary),
    ]
    image = lib.fatbin
    if image is not None:
        pairs.append(
            ("architectures", ", ".join(f"sm_{a}" for a in image.architectures()))
        )
    out = kv_block(lib.soname, pairs)
    if verbose and lib.has_gpu_code:
        lines = list_fatbin_elements(lib)
        preview = "\n".join(lines[:20])
        if len(lines) > 20:
            preview += f"\n... ({len(lines) - 20} more elements)"
        out += "\n\n" + preview
    return out


def block_report(report: dict) -> str:
    """Render the federation's block-store report (``inspect --blocks``).

    ``report`` is :meth:`~repro.api.federation.StoreFederation.storage_report`
    output: aggregate store gauges, per-shard logical vs resident bytes,
    and the most-referenced blocks.
    """
    stats = report["stats"]
    pairs = [
        ("blocks", fmt_count(stats["blocks_total"])),
        ("physical bytes", fmt_bytes(stats["bytes_physical"])),
        ("logical bytes", fmt_bytes(stats["bytes_logical"])),
        ("dedupe ratio", f"{stats['dedupe_ratio']:.3f}x"),
        ("evicted bytes (total)", fmt_bytes(stats["evicted_bytes_total"])),
        ("shards", fmt_count(stats["owners"])),
    ]
    parts = [kv_block("block store", pairs)]

    shards = Table(
        ["Shard", "Manifests", "Logical", "Resident"],
        title="Per-shard bytes",
    )
    for row in report["per_shard"]:
        shards.add_row(
            row["owner"],
            fmt_count(row["manifests"]),
            fmt_bytes(row["bytes_logical"]),
            fmt_bytes(row["bytes_resident"]),
        )
    parts.append(shards.render())

    top = Table(
        ["Digest", "Bytes", "Refs"],
        title=f"Top {len(report['top_blocks'])} most-referenced blocks",
    )
    for row in report["top_blocks"]:
        top.add_row(row["digest"][:16], fmt_bytes(row["bytes"]), row["refs"])
    parts.append(top.render())
    return "\n\n".join(parts)


def kernel_listing(
    lib: SharedLibrary, limit: int = 30, index=None
) -> str:
    """``cuobjdump -elf``-style kernel listing per extracted cubin.

    Rendered from the library's cached
    :class:`~repro.core.kindex.KernelUsageIndex` (pass ``index`` when a
    caller - e.g. the engine facade - already holds one, possibly loaded
    from the persisted disk tier), so repeated listings never re-drive the
    cubin extraction.  Output is identical to the historical
    ``extract_cubins`` walk: the index preserves file order and per-cubin
    name order.
    """
    from repro.core.kindex import index_for
    from repro.fatbin.cuobjdump import _extracted_view

    if index is None:
        index = index_for(lib)
    lines = []
    for row in range(min(index.n, limit)):
        cubin = _extracted_view(index, row)
        lines.append(
            f"{cubin.filename}: sm_{cubin.sm_arch}, "
            f"{len(cubin.kernel_names)} kernels "
            f"({len(cubin.entry_kernel_names)} entry)"
        )
    return "\n".join(lines)

"""``negativa-ml``: the tool's command-line interface.

Subcommands:

* ``inspect <framework> <soname>`` - describe a generated library
  (sections, code sizes, fatbin architectures, kernels);
* ``debloat <workload-id>`` - run the full pipeline for a Table-1 workload
  and print the per-library reduction report;
* ``serve`` - run the multi-workload debloat server: admit workloads into
  one shared :class:`~repro.serving.store.DebloatStore` through a worker
  pool, delta-compacting only the libraries each admission actually grew;
* ``workloads`` - list the available workload ids.

``debloat`` and ``serve`` go through the shared two-tier pipeline cache
(:data:`repro.experiments.common.PIPELINE_CACHE`), so a workload already
debloated by an earlier invocation - or by the experiment CLI - renders
from the persisted report (or admits from cached usage) without re-running
anything.  ``--no-cache``, ``--no-disk-cache``, and ``--cache-dir`` mirror
the experiment CLI's cache flags; printed reports are byte-identical either
way.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import DEFAULT_SCALE, report_for
from repro.frameworks.catalog import FRAMEWORK_NAMES, get_framework
from repro.tools.inspect import describe_library, kernel_listing, readelf_sections
from repro.utils.tables import Table
from repro.utils.units import fmt_mb
from repro.workloads.spec import TABLE1_WORKLOADS, workload_by_id


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="negativa-ml",
        description="Identify and remove bloat in ML framework shared libraries.",
    )
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="entity-count scale (1.0 = paper magnitude)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the pipeline cache entirely (both tiers)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="keep the in-memory pipeline cache but never "
                        "read or write the persisted disk tier")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk-tier cache directory (default: "
                        "$REPRO_PIPELINE_CACHE_DIR or ~/.cache/repro-debloat)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="describe a shared library")
    p_inspect.add_argument("framework", choices=FRAMEWORK_NAMES)
    p_inspect.add_argument("soname")
    p_inspect.add_argument("--sections", action="store_true")
    p_inspect.add_argument("--kernels", action="store_true")

    p_debloat = sub.add_parser("debloat", help="debloat a workload's libraries")
    p_debloat.add_argument("workload_id", help="e.g. pytorch/train/mobilenetv2")
    p_debloat.add_argument("--top", type=int, default=12,
                           help="show the top-N libraries by reduction")
    p_debloat.add_argument("--locate-workers", type=int, default=0,
                           help="fan the per-library locate/compact loop "
                           "out over N workers (0 = serial; output is "
                           "byte-identical for any worker count)")
    p_debloat.add_argument("--locate-workers-mode", default=None,
                           choices=("thread", "process"),
                           help="fan-out mode: GIL-bound threads or "
                           "library shards across a process pool "
                           "(default: $REPRO_LOCATE_WORKERS_MODE or "
                           "thread)")

    p_serve = sub.add_parser(
        "serve",
        help="admit workloads into a shared debloated-library store",
    )
    p_serve.add_argument(
        "workload_ids", nargs="*",
        help="workload ids to admit in order (default: every catalog "
        "workload of --framework)")
    p_serve.add_argument("--framework", default="pytorch",
                         choices=FRAMEWORK_NAMES,
                         help="framework whose catalog workloads to serve "
                         "when no ids are given")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="admission worker threads (detections overlap; "
                         "union merges serialize)")
    p_serve.add_argument("--verify", action="store_true",
                         help="re-run each workload against the store after "
                         "its admission")
    p_serve.add_argument("--batch-max", type=int, default=1,
                         help="let a worker drain up to N queued admissions "
                         "into one union merge + delta pass per library "
                         "(1 = admit one at a time)")

    sub.add_parser("workloads", help="list workload ids")
    return parser


def cmd_inspect(args: argparse.Namespace) -> int:
    framework = get_framework(args.framework, scale=args.scale)
    lib = framework.libraries.get(args.soname)
    if lib is None:
        print(f"no library {args.soname!r} in {args.framework}; available:",
              file=sys.stderr)
        for soname in sorted(framework.libraries):
            print(f"  {soname}", file=sys.stderr)
        return 1
    print(describe_library(lib))
    if args.sections:
        print()
        print(readelf_sections(lib))
    if args.kernels and lib.has_gpu_code:
        print()
        print(kernel_listing(lib))
    return 0


def cmd_debloat(args: argparse.Namespace) -> int:
    from repro.core.debloat import DebloatOptions

    spec = workload_by_id(args.workload_id)
    options = None
    if args.locate_workers or args.locate_workers_mode:
        kwargs = {"locate_workers": args.locate_workers}
        if args.locate_workers_mode:
            kwargs["locate_workers_mode"] = args.locate_workers_mode
        options = DebloatOptions(**kwargs)
    report = report_for(spec, scale=args.scale, options=options)

    table = Table(
        ["Library", "File MB (red%)", "CPU MB (red%)", "GPU MB (red%)",
         "Elements (red%)"],
        title=f"Debloating report: {spec.workload_id}",
    )
    for lib in report.top_by_file_reduction(args.top):
        table.add_row(
            lib.soname,
            f"{fmt_mb(lib.file_size)} ({lib.file_reduction_pct:.0f})",
            f"{fmt_mb(lib.cpu_size)} ({lib.cpu_reduction_pct:.0f})",
            f"{fmt_mb(lib.gpu_size)} ({lib.gpu_reduction_pct:.0f})"
            if lib.has_gpu_code else "-",
            f"{lib.n_elements} ({lib.element_reduction_pct:.0f})"
            if lib.has_gpu_code else "-",
        )
    print(table.render())
    print()
    print(
        f"totals: file {fmt_mb(report.total_file_size)} MB -> "
        f"{fmt_mb(report.total_file_size_after)} MB "
        f"({report.file_reduction_pct:.0f}% reduction) across "
        f"{report.n_libraries} libraries"
    )
    assert report.verification is not None
    print(f"verification: {report.verification}")
    print(f"end-to-end pipeline time: {report.timing.total_s:,.0f} virtual s")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import DebloatServer, DebloatStore

    if args.workload_ids:
        specs = [workload_by_id(wid) for wid in args.workload_ids]
        frameworks = {spec.framework for spec in specs}
        if len(frameworks) != 1:
            print(
                f"serve admits one framework per store; got {sorted(frameworks)}",
                file=sys.stderr,
            )
            return 1
        framework_name = specs[0].framework
    else:
        framework_name = args.framework
        specs = [
            spec for spec in TABLE1_WORKLOADS
            if spec.framework == framework_name
        ]

    framework = get_framework(framework_name, scale=args.scale)
    store = DebloatStore(framework, use_cache=not args.no_cache)
    table = Table(
        ["Workload", "Latency ms", "New kernels", "Libs redone",
         "Libs served", "Union MB after", "Source"],
        title=f"Serving admissions: {framework_name} @ scale {args.scale}",
    )
    with DebloatServer(store, workers=args.workers, verify=args.verify,
                       batch_max=args.batch_max) as server:
        tickets = [server.submit(spec) for spec in specs]
        for ticket in tickets:
            res = ticket.result()
            # Row values come from the AdmissionResult, pinned to that
            # admission's epoch - a live snapshot here could already
            # include later admissions when --workers > 1.
            table.add_row(
                res.workload_id,
                f"{ticket.latency_s * 1e3:,.0f}",
                f"{res.new_kernels:,}",
                f"{len(res.recompacted)}",
                f"{len(res.untouched)}",
                fmt_mb(res.union_file_size_after),
                "cache" if res.detection_cached else "run",
            )
        stats = server.stats()
    print(table.render())
    print()
    snap = store.snapshot()
    print(
        f"store generation {snap.generation}: {len(snap.reductions)} "
        f"libraries, union {snap.union_kernels:,} kernels / "
        f"{snap.union_functions:,} functions, "
        f"{fmt_mb(snap.total_file_size)} MB -> "
        f"{fmt_mb(snap.total_file_size_after)} MB "
        f"({snap.file_reduction_pct:.0f}% reduction)"
    )
    print(
        f"served {stats['served']} admissions with {stats['workers']} "
        f"workers ({stats['batches_merged']} drained batches); "
        f"{stats['untouched_served']} library servings skipped "
        f"re-compaction, {stats['usage_cache_hits']} detections from cache"
    )
    return 0


def cmd_workloads(_: argparse.Namespace) -> int:
    for spec in TABLE1_WORKLOADS:
        print(spec.workload_id)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.experiments.cli import configure_cache

    configure_cache(args)
    handlers = {
        "inspect": cmd_inspect,
        "debloat": cmd_debloat,
        "serve": cmd_serve,
        "workloads": cmd_workloads,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

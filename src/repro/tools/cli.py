"""``negativa-ml``: the tool's command-line interface.

Subcommands:

* ``inspect <framework> <soname>`` - describe a generated library
  (sections, code sizes, fatbin architectures, kernels);
* ``debloat <workload-id>`` - run the full pipeline for a Table-1 workload
  and print the per-library reduction report;
* ``serve`` - run the federated debloat server: admit workloads (of one or
  several frameworks) through a worker pool into per-framework
  :class:`~repro.serving.store.DebloatStore` shards, delta-compacting only
  the libraries each admission actually grew, with optional traffic-driven
  TTL/LRU/pinned eviction; ``--remote-shards N`` moves the stores into N
  worker processes routed by build fingerprint;
* ``snapshot export|import`` - write a federation's warm store images to
  a directory / bring a fresh process up warm from one, with zero
  workload runs;
* ``workloads`` - list the available workload ids.

Every subcommand is a thin adapter over the :class:`repro.api.DebloatEngine`
facade: the CLI flags build one :class:`~repro.api.EngineConfig`, requests
go through typed :mod:`repro.api.requests` objects, and the engine routes
reports, admission usage, and kernel indexes through the shared two-tier
pipeline cache - so a workload already debloated by an earlier invocation
(or by the experiment CLI) renders from the persisted report, and a warm
store admits from cached usage, without re-running anything.  ``--no-cache``,
``--no-disk-cache``, and ``--cache-dir`` mirror the experiment CLI's cache
flags; printed reports are byte-identical either way.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext

from repro.api import (
    AdmitRequest,
    DebloatEngine,
    DebloatRequest,
    EngineConfig,
    EvictionPolicy,
    InspectRequest,
)
from repro.errors import AdmissionError, ConfigurationError, UsageError
from repro.experiments.common import DEFAULT_SCALE
from repro.frameworks.catalog import FRAMEWORK_NAMES
from repro.utils.tables import Table
from repro.utils.units import fmt_mb
from repro.workloads.spec import TABLE1_WORKLOADS, workload_by_id


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="negativa-ml",
        description="Identify and remove bloat in ML framework shared libraries.",
    )
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="entity-count scale (1.0 = paper magnitude)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the pipeline cache entirely (both tiers)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="keep the in-memory pipeline cache but never "
                        "read or write the persisted disk tier")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk-tier cache directory (default: "
                        "$REPRO_PIPELINE_CACHE_DIR or ~/.cache/repro-debloat)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="describe a shared library")
    p_inspect.add_argument("framework", choices=FRAMEWORK_NAMES)
    p_inspect.add_argument("soname", nargs="?", default="")
    p_inspect.add_argument("--sections", action="store_true")
    p_inspect.add_argument("--kernels", action="store_true")
    p_inspect.add_argument("--blocks", action="store_true",
                           help="show the content-addressed block store "
                           "(admits the framework's catalog workloads first)")

    p_debloat = sub.add_parser("debloat", help="debloat a workload's libraries")
    p_debloat.add_argument("workload_id", help="e.g. pytorch/train/mobilenetv2")
    p_debloat.add_argument("--top", type=int, default=12,
                           help="show the top-N libraries by reduction")
    p_debloat.add_argument("--locate-workers", type=int, default=0,
                           help="fan the per-library locate/compact loop "
                           "out over N workers (0 = serial; output is "
                           "byte-identical for any worker count)")
    p_debloat.add_argument("--locate-workers-mode", default=None,
                           choices=("thread", "process"),
                           help="fan-out mode: GIL-bound threads or "
                           "library shards across a process pool "
                           "(default: $REPRO_LOCATE_WORKERS_MODE or "
                           "thread)")

    p_serve = sub.add_parser(
        "serve",
        help="admit workloads into the federated debloated-library store",
    )
    p_serve.add_argument(
        "workload_ids", nargs="*",
        help="workload ids to admit in order, any mix of frameworks "
        "(default: every catalog workload of --framework)")
    p_serve.add_argument("--framework", default="pytorch",
                         choices=FRAMEWORK_NAMES,
                         help="framework whose catalog workloads to serve "
                         "when no ids are given")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="admission worker threads (detections overlap; "
                         "union merges serialize)")
    p_serve.add_argument("--verify", action="store_true",
                         help="re-run each workload against the store after "
                         "its admission")
    p_serve.add_argument("--batch-max", type=int, default=1,
                         help="let a worker drain up to N queued admissions "
                         "into one union merge + delta pass per library "
                         "(1 = admit one at a time)")
    p_serve.add_argument("--evict", default="none",
                         choices=("none", "ttl", "lru", "pinned", "bytes"),
                         help="traffic-driven eviction policy applied on "
                         "sweeps (default: none)")
    p_serve.add_argument("--ttl-s", type=float, default=None,
                         help="ttl mode: seconds a workload may sit idle "
                         "before a sweep evicts it")
    p_serve.add_argument("--max-workloads", type=int, default=None,
                         help="lru mode: per-framework cap on admitted "
                         "workloads")
    p_serve.add_argument("--budget-bytes", type=int, default=None,
                         metavar="N",
                         help="bytes mode: cap on the shared block store's "
                         "physical bytes; sweeps evict the cheapest-to-"
                         "rebuild per byte freed until the store fits")
    p_serve.add_argument("--pin", action="append", default=[],
                         metavar="WORKLOAD_ID",
                         help="workload id a sweep must never evict "
                         "(repeatable)")
    p_serve.add_argument("--sweep-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="run the policy sweep periodically in the "
                         "background while serving (default: one final "
                         "sweep after all admissions)")
    p_serve.add_argument("--max-attempts", type=int, default=None,
                         metavar="N",
                         help="retry each admission up to N times on "
                         "transient faults with exponential backoff "
                         "(default: 3)")
    p_serve.add_argument("--http", default=None, metavar="HOST:PORT",
                         help="serve the asyncio HTTP/JSON front-end "
                         "instead of admitting a workload list (':8000' "
                         "binds loopback, ':0' picks an ephemeral port); "
                         "runs until SIGTERM/SIGINT, then drains")
    p_serve.add_argument("--http-queue-bound", type=int, default=64,
                         metavar="N",
                         help="max admissions in flight behind HTTP before "
                         "load-shedding with 503 + Retry-After")
    p_serve.add_argument("--coalesce-window-ms", type=float, default=5.0,
                         metavar="MS",
                         help="window for coalescing concurrent admits "
                         "into one admit_many batch (0 = no coalescing)")
    p_serve.add_argument("--request-deadline-s", type=float, default=30.0,
                         metavar="SECONDS",
                         help="default per-request deadline; expiry "
                         "answers 504 (body deadline_s overrides)")
    p_serve.add_argument("--fault-plan", default=None, metavar="PLAN",
                         help="activate a deterministic fault-injection "
                         "plan while serving: a named plan "
                         "('ci-standard[:seed]') or a spec like "
                         "'seed=7;store.merge@2;diskcache.read%%0.05:corrupt' "
                         "(default: $REPRO_FAULT_PLAN if set)")
    p_serve.add_argument("--remote-shards", type=int, default=0, metavar="N",
                         help="run the framework stores in N worker "
                         "processes, consistent-hash routed by build "
                         "fingerprint (0 = everything in-process)")
    p_serve.add_argument("--snapshot-dir", default=None, metavar="DIR",
                         help="root for warm store snapshots: remote "
                         "workers auto-export and crash-recover under "
                         "DIR/workers; POST /v1/snapshot/export defaults "
                         "to DIR/federation")
    p_serve.add_argument("--durable", action="store_true",
                         help="crash-consistent durability: journal every "
                         "admission/eviction to a per-shard write-ahead "
                         "log and auto-recover the store on startup")
    p_serve.add_argument("--durability-dir", default=None, metavar="DIR",
                         help="root for the WAL + checkpoint files "
                         "(default: SNAPSHOT_DIR/durability; required "
                         "with --durable if --snapshot-dir is unset)")
    p_serve.add_argument("--wal-fsync", default="batch",
                         choices=("always", "batch", "off"),
                         help="WAL fsync policy: 'always' syncs every "
                         "append, 'batch' every few appends plus on "
                         "checkpoint, 'off' flushes without syncing "
                         "(default: batch)")
    p_serve.add_argument("--checkpoint-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="export a store snapshot and truncate the "
                         "WAL every SECONDS in the background (default: "
                         "checkpoint only on demand)")
    p_serve.add_argument("--op-deadline-s", type=float, default=30.0,
                         metavar="SECONDS",
                         help="per-operation send/receive deadline for "
                         "remote shard workers; a hung worker raises "
                         "instead of blocking forever (default: 30)")
    p_serve.add_argument("--heartbeat-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="probe every remote shard worker with a "
                         "liveness ping every SECONDS (default: off)")
    p_serve.add_argument("--breaker-threshold", type=int, default=3,
                         metavar="N",
                         help="open a remote shard's circuit breaker "
                         "after N consecutive transport failures "
                         "(default: 3; 0 disables the breaker)")

    p_snapshot = sub.add_parser(
        "snapshot",
        help="export or import a federation's warm store snapshot",
    )
    snap_sub = p_snapshot.add_subparsers(
        dest="snapshot_command", required=True
    )
    p_export = snap_sub.add_parser(
        "export",
        help="admit workloads, then write their warm store images",
    )
    p_export.add_argument("directory")
    p_export.add_argument(
        "--workloads", nargs="*", default=[], metavar="WORKLOAD_ID",
        help="workload ids to admit before exporting (default: every "
        "catalog workload of --framework)")
    p_export.add_argument("--framework", default="pytorch",
                          choices=FRAMEWORK_NAMES,
                          help="framework whose catalog workloads to "
                          "export when no ids are given")
    p_import = snap_sub.add_parser(
        "import",
        help="warm a fresh federation from a snapshot (zero workload runs)",
    )
    p_import.add_argument("directory")

    sub.add_parser("workloads", help="list workload ids")
    return parser


def engine_config(args: argparse.Namespace, **serving) -> EngineConfig:
    """One EngineConfig from the CLI's shared + per-subcommand flags."""
    return EngineConfig(
        scale=args.scale,
        use_cache=not args.no_cache,
        disk_cache=False if args.no_disk_cache else None,
        cache_dir=args.cache_dir,
        **serving,
    )


def cmd_inspect(args: argparse.Namespace) -> int:
    with DebloatEngine(engine_config(args)) as engine:
        if args.blocks:
            for spec in TABLE1_WORKLOADS:
                if spec.framework == args.framework:
                    engine.admit(AdmitRequest(spec=spec))
        try:
            result = engine.inspect(InspectRequest(
                framework=args.framework,
                soname=args.soname,
                sections=args.sections,
                kernels=args.kernels,
                blocks=args.blocks,
            ))
        except UsageError as err:
            available = getattr(err, "available", [])
            if available:
                print(f"no library {args.soname!r} in {args.framework}; "
                      "available:", file=sys.stderr)
                for soname in available:
                    print(f"  {soname}", file=sys.stderr)
            else:
                print(err, file=sys.stderr)
            return 1
    print(result.text)
    return 0


def cmd_debloat(args: argparse.Namespace) -> int:
    from repro.core.debloat import DebloatOptions

    spec = workload_by_id(args.workload_id)
    options = None
    if args.locate_workers or args.locate_workers_mode:
        kwargs = {"locate_workers": args.locate_workers}
        if args.locate_workers_mode:
            kwargs["locate_workers_mode"] = args.locate_workers_mode
        options = DebloatOptions(**kwargs)
    with DebloatEngine(engine_config(args)) as engine:
        report = engine.debloat(
            DebloatRequest(spec=spec, options=options)
        ).report

    table = Table(
        ["Library", "File MB (red%)", "CPU MB (red%)", "GPU MB (red%)",
         "Elements (red%)"],
        title=f"Debloating report: {spec.workload_id}",
    )
    for lib in report.top_by_file_reduction(args.top):
        table.add_row(
            lib.soname,
            f"{fmt_mb(lib.file_size)} ({lib.file_reduction_pct:.0f})",
            f"{fmt_mb(lib.cpu_size)} ({lib.cpu_reduction_pct:.0f})",
            f"{fmt_mb(lib.gpu_size)} ({lib.gpu_reduction_pct:.0f})"
            if lib.has_gpu_code else "-",
            f"{lib.n_elements} ({lib.element_reduction_pct:.0f})"
            if lib.has_gpu_code else "-",
        )
    print(table.render())
    print()
    print(
        f"totals: file {fmt_mb(report.total_file_size)} MB -> "
        f"{fmt_mb(report.total_file_size_after)} MB "
        f"({report.file_reduction_pct:.0f}% reduction) across "
        f"{report.n_libraries} libraries"
    )
    assert report.verification is not None
    print(f"verification: {report.verification}")
    print(f"end-to-end pipeline time: {report.timing.total_s:,.0f} virtual s")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.workload_ids:
        specs = [workload_by_id(wid) for wid in args.workload_ids]
    else:
        specs = [
            spec for spec in TABLE1_WORKLOADS
            if spec.framework == args.framework
        ]
    frameworks = sorted({spec.framework for spec in specs})

    from repro.testing import faults
    from repro.utils.retry import RetryPolicy

    try:
        policy = EvictionPolicy(
            mode=args.evict,
            ttl_s=args.ttl_s,
            max_workloads=args.max_workloads,
            budget_bytes=args.budget_bytes,
            pinned=frozenset(args.pin),
            sweep_interval_s=args.sweep_interval,
        )
        retry = RetryPolicy()
        if args.max_attempts is not None:
            retry = RetryPolicy(max_attempts=args.max_attempts)
        serving: dict = dict(
            verify_admissions=args.verify,
            workers=args.workers,
            batch_max=args.batch_max,
            eviction=policy,
            retry=retry,
            remote_shards=args.remote_shards,
            snapshot_dir=args.snapshot_dir,
        )
        if args.durable or args.durability_dir:
            from repro.api.config import DurabilityConfig

            serving["durability"] = DurabilityConfig(
                enabled=True,
                directory=args.durability_dir,
                fsync=args.wal_fsync,
                checkpoint_interval_s=args.checkpoint_interval,
            )
        from repro.api.config import LivenessConfig

        serving["liveness"] = LivenessConfig(
            op_deadline_s=args.op_deadline_s or None,
            heartbeat_interval_s=args.heartbeat_interval,
            breaker_threshold=args.breaker_threshold or None,
        )
        if args.http is not None:
            from repro.api import HttpConfig
            from repro.serving.http import parse_http_address

            host, port = parse_http_address(args.http)
            http = HttpConfig(
                host=host,
                port=port,
                queue_bound=args.http_queue_bound,
                coalesce_window_s=args.coalesce_window_ms / 1000.0,
                request_deadline_s=args.request_deadline_s,
            )
            serving["http"] = http
            # Coalesced admits only merge if a worker may drain them as
            # one batch; lift batch_max to the window cap.
            serving["batch_max"] = max(args.batch_max, http.coalesce_max)
        config = engine_config(args, **serving)
        plan = (
            faults.parse_plan(args.fault_plan) if args.fault_plan
            else faults.plan_from_env()
        )
    except ConfigurationError as err:
        print(str(err), file=sys.stderr)
        return 1

    if args.http is not None:
        return _serve_http(config, plan)

    table = Table(
        ["Workload", "Latency ms", "New kernels", "Libs redone",
         "Libs served", "Union MB after", "Source"],
        title=f"Serving admissions: {'+'.join(frameworks)} @ scale "
        f"{args.scale}",
    )
    failed: list[tuple[str, AdmissionError]] = []
    with faults.fault_plan(plan) if plan is not None else nullcontext():
        with DebloatEngine(config) as engine:
            server = engine.server()
            tickets = [server.submit(spec) for spec in specs]
            for spec, ticket in zip(specs, tickets):
                try:
                    res = ticket.result()
                except AdmissionError as err:
                    failed.append((spec.workload_id, err))
                    continue
                # Row values come from the AdmissionResult, pinned to that
                # admission's epoch - a live snapshot here could already
                # include later admissions when --workers > 1.
                table.add_row(
                    res.workload_id,
                    f"{ticket.latency_s * 1e3:,.0f}",
                    f"{res.new_kernels:,}",
                    f"{len(res.recompacted)}",
                    f"{len(res.untouched)}",
                    fmt_mb(res.union_file_size_after),
                    "cache" if res.detection_cached else "run",
                )
            swept = engine.sweep().swept if policy.enabled else []
            stats = engine.stats()
            snapshot = engine.snapshot()
            health = engine.health()
    print(table.render())
    print()
    for name in snapshot.frameworks:
        snap = snapshot.shards[name].store
        print(
            f"{name} store generation {snap.generation}: "
            f"{len(snap.reductions)} libraries, union "
            f"{snap.union_kernels:,} kernels / "
            f"{snap.union_functions:,} functions, "
            f"{fmt_mb(snap.total_file_size)} MB -> "
            f"{fmt_mb(snap.total_file_size_after)} MB "
            f"({snap.file_reduction_pct:.0f}% reduction)"
        )
    print(
        f"served {stats['served']} admissions with {stats['workers']} "
        f"workers ({stats['batches_merged']} drained batches); "
        f"{stats['untouched_served']} library servings skipped "
        f"re-compaction, {stats['usage_cache_hits']} detections from cache"
    )
    print(
        f"health: {health['state']} - {stats['retries']} retried "
        f"admission attempt(s), {len(failed)} failed, "
        f"{stats['sweeps_failed']} failed sweep(s), "
        f"{health['fanout_degraded']} degraded fan-out(s), "
        f"{health['quarantined_entries']} quarantined cache entries"
    )
    for workload_id, err in failed:
        print(f"  FAILED {workload_id}: {err}", file=sys.stderr)
    if policy.enabled:
        print(
            f"eviction policy {policy.mode}: final sweep evicted "
            f"{len(swept)} workload(s)"
            + (
                " - " + ", ".join(
                    f"{s.workload_id} [{s.framework}] "
                    f"({s.reason}, {len(s.result.recompacted)} libs "
                    f"recompacted, {len(s.result.dropped_libraries)} dropped)"
                    for s in swept
                )
                if swept else ""
            )
        )
    return 1 if failed else 0


def _serve_http(config: EngineConfig, plan) -> int:
    """``serve --http``: run the asyncio front-end until SIGTERM/SIGINT.

    Prints the bound address on stdout (flushed) so harnesses that start
    the server on an ephemeral port (``--http :0``) can parse it.
    """
    import asyncio

    from repro.testing import faults

    engine = DebloatEngine(config)
    server = engine.http_server()

    def announce(host: str, port: int) -> None:
        print(f"serving HTTP on http://{host}:{port}", flush=True)

    with faults.fault_plan(plan) if plan is not None else nullcontext():
        asyncio.run(server.serve_forever(announce=announce))
    stats = server.metrics
    print(
        f"drained cleanly: {stats.counter_total('admissions_served_total')} "
        f"admissions served, "
        f"{stats.counter_total('admissions_shed_total')} shed, "
        f"{stats.counter_total('admissions_deadline_total')} past "
        f"deadline, {len(server.audit)} requests audited"
    )
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.errors import SnapshotError

    if args.snapshot_command == "export":
        if args.workloads:
            specs = [workload_by_id(wid) for wid in args.workloads]
        else:
            specs = [
                spec for spec in TABLE1_WORKLOADS
                if spec.framework == args.framework
            ]
        with DebloatEngine(engine_config(args)) as engine:
            for spec in specs:
                engine.admit(AdmitRequest(spec=spec))
            result = engine.export_snapshot(args.directory)
        for entry in result.value["manifest"]["shards"]:
            print(
                f"{entry['framework']}: generation {entry['generation']}, "
                f"{entry['bytes']:,} bytes -> {entry['file']}"
            )
        print(
            f"exported {len(result.value['manifest']['shards'])} shard(s) "
            f"to {result.value['directory']}"
        )
        return 0

    with DebloatEngine(engine_config(args)) as engine:
        try:
            result = engine.import_snapshot(args.directory)
        except SnapshotError as err:
            print(str(err), file=sys.stderr)
            return 1
        snapshot = engine.snapshot()
    for name, generation in sorted(result.value["generations"].items()):
        snap = snapshot.shards[name].store
        print(
            f"{name}: generation {generation}, "
            f"{len(snap.workload_ids)} workload(s), "
            f"{len(snap.reductions)} libraries, "
            f"{fmt_mb(snap.total_file_size)} MB -> "
            f"{fmt_mb(snap.total_file_size_after)} MB"
        )
    print(
        f"imported {len(result.value['generations'])} shard(s) from "
        f"{result.value['directory']} with zero workload runs"
    )
    return 0


def cmd_workloads(_: argparse.Namespace) -> int:
    for spec in TABLE1_WORKLOADS:
        print(spec.workload_id)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "inspect": cmd_inspect,
        "debloat": cmd_debloat,
        "serve": cmd_serve,
        "snapshot": cmd_snapshot,
        "workloads": cmd_workloads,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

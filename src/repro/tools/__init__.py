"""User-facing CLI tools: ``negativa-ml`` (inspect/debloat) and the
``readelf``/``cuobjdump``-style inspection helpers they wrap."""

from repro.tools.inspect import describe_library, readelf_sections

__all__ = ["describe_library", "readelf_sections"]

"""Content-addressed block storage shared across serving shards.

``repro.storage`` is the ownership layer under the serving stack:
:class:`BlockStore` holds every compacted (and original) library payload
as refcounted, content-addressed blocks so cross-shard duplicates
collapse to one physical copy, and :class:`CostAwareEvictor` implements
the byte-budget eviction mode that weighs tracked rebuild cost against
bytes freed.  See :mod:`repro.storage.blockstore` for the dedupe/CoW
model and :mod:`repro.storage.evictor` for victim selection.
"""

from repro.core.serialize import DEFAULT_BLOCK_SIZE
from repro.storage.blockstore import (
    BlockManifest,
    BlockOwner,
    BlockRef,
    BlockStore,
    BlockView,
)
from repro.storage.evictor import CostAwareEvictor, EvictionCandidate

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockManifest",
    "BlockOwner",
    "BlockRef",
    "BlockStore",
    "BlockView",
    "CostAwareEvictor",
    "EvictionCandidate",
]

"""Content-addressed block storage: refcounted dedupe + CoW extents.

The paper's central observation is that the *same* shared-library content
recurs massively across workloads, frameworks, and architectures - yet
until this layer existed, every :class:`~repro.core.compact.DebloatedLibrary`
in every shard owned a private copy of its bytes.  The
:class:`BlockStore` collapses those duplicates: compacted (and original)
library payloads are chunked into pieces split at **absolute** multiples
of the block size (:data:`~repro.core.serialize.DEFAULT_BLOCK_SIZE`),
each piece keyed by its content digest and stored exactly once with a
refcount.  Byte-identical extents at equal offsets - the common case for
shards built from the same framework build, e.g. the torch-family
frameworks sharing one build id - therefore share physical blocks no
matter which shard ingested them first.

Copy-on-write falls out of the refcounts: :meth:`BlockStore.ingest` with
a name that is already registered ingests the *new* payload first (every
unchanged piece dedupes against the existing blocks, bumping refcounts)
and only then releases the old manifest - so a delta recompaction that
changes a few chunks allocates only the changed blocks, and shared blocks
never transiently hit refcount zero.

Ownership is explicit: each client (one per :class:`DebloatStore`)
registers through :meth:`BlockStore.new_owner` and every live manifest is
recorded against its owner.  That registry is what makes
:meth:`validate_invariants` exact - expected refcounts are *recomputed*
from the registered manifests and compared against the live counters, so
a leaked block, a dangling reference, or a drifted counter is always
detectable, not just statistically likely.

The store is process-local and rebuilt from commits: snapshot import and
WAL replay drive the ordinary store mutators, whose commit hooks re-ingest
every library - which is how refcounts stay crash-consistent without the
block layer writing a single byte of its own to disk.  (The on-disk block
layout lives in :mod:`repro.serving.snapshot`'s pool file instead.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.serialize import (
    DEFAULT_BLOCK_SIZE,
    block_digest,
    iter_block_pieces,
)
from repro.errors import BlockStoreError
from repro.utils.intervals import RangeSet


@dataclass(frozen=True)
class BlockRef:
    """One piece of a file: ``length`` bytes at logical ``offset``.

    The digest is the content address; equal content at equal offsets in
    two different files produces equal refs pointing at one physical
    block.
    """

    digest: str
    offset: int
    length: int


@dataclass(frozen=True)
class BlockManifest:
    """A file's payload as an ordered run of block references.

    Refs are in ascending offset order and partition the file's extents
    exactly: rebuilding by writing each ref's block at its offset
    reproduces the original :class:`~repro.utils.sparsefile.SparseFile`
    structure (adjacent pieces of one extent re-merge on write).
    """

    logical_size: int
    refs: tuple[BlockRef, ...]

    @property
    def payload_bytes(self) -> int:
        """Materialized (extent) bytes this manifest references."""
        return sum(r.length for r in self.refs)


class BlockOwner:
    """Registration handle: one per client store, holds its live manifests."""

    __slots__ = ("label", "manifests")

    def __init__(self, label: str):
        self.label = label
        self.manifests: dict[str, BlockManifest] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockOwner({self.label!r}, {len(self.manifests)} manifests)"


class BlockView:
    """Read-only view of a manifest's bytes served from shared blocks.

    The ``BlockRef``-backed counterpart of a materialized
    :class:`SparseFile`: reads resolve through the block store's single
    physical copy, and :meth:`to_sparsefile` rebuilds an exact structural
    clone on demand.
    """

    __slots__ = ("_store", "manifest")

    def __init__(self, store: "BlockStore", manifest: BlockManifest):
        self._store = store
        self.manifest = manifest

    @property
    def logical_size(self) -> int:
        return self.manifest.logical_size

    def extents(self) -> RangeSet:
        """Materialized ranges (adjacent pieces merge, like SparseFile)."""
        return RangeSet(
            (r.offset, r.offset + r.length) for r in self.manifest.refs
        )

    def read(self, offset: int, size: int) -> bytes:
        """``size`` bytes at ``offset``; holes read as zeros."""
        if offset < 0 or size < 0:
            raise ValueError("negative read offset/size")
        out = bytearray(size)
        end = offset + size
        for ref in self.manifest.refs:
            r_end = ref.offset + ref.length
            if r_end <= offset:
                continue
            if ref.offset >= end:
                break
            block = self._store.block_bytes(ref.digest)
            lo = max(offset, ref.offset)
            hi = min(end, r_end)
            out[lo - offset : hi - offset] = block[
                lo - ref.offset : hi - ref.offset
            ]
        return bytes(out)

    def to_sparsefile(self):
        """Materialize an exact structural clone of the ingested file."""
        from repro.utils.sparsefile import SparseFile

        sf = SparseFile(self.manifest.logical_size)
        for ref in self.manifest.refs:
            sf.write(ref.offset, self._store.block_bytes(ref.digest))
        return sf


class BlockStore:
    """Refcounted, content-addressed block storage shared across shards."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size < 1:
            raise BlockStoreError(f"block_size must be >= 1, got {block_size}")
        self._lock = threading.RLock()
        self._block_size = int(block_size)
        self._blocks: dict[str, bytes] = {}
        self._refs: dict[str, int] = {}
        self._owners: list[BlockOwner] = []
        self._bytes_physical = 0
        self._bytes_logical = 0
        self._ingested_bytes_total = 0
        self._deduped_bytes_total = 0
        self._evicted_bytes_total = 0

    @property
    def block_size(self) -> int:
        return self._block_size

    # -- ownership ---------------------------------------------------------

    def new_owner(self, label: str) -> BlockOwner:
        owner = BlockOwner(label)
        with self._lock:
            self._owners.append(owner)
        return owner

    def drop_owner(self, owner: BlockOwner) -> int:
        """Release every manifest the owner holds; returns bytes freed."""
        with self._lock:
            freed = 0
            for name in sorted(owner.manifests):
                freed += self._release_locked(owner, name)
            self._owners.remove(owner)
            return freed

    # -- ingest / release --------------------------------------------------

    def ingest(self, owner: BlockOwner, name: str, sf) -> BlockManifest:
        """Chunk + dedupe one payload; replaces ``name`` copy-on-write.

        If ``name`` is already registered for this owner, the new payload
        is ingested *first* (unchanged pieces bump the refcounts of the
        blocks they dedupe against) and the old manifest is released
        after - the CoW ordering that keeps shared blocks alive across a
        delta recompaction.
        """
        extents = sf.extents()
        with self._lock:
            refs: list[BlockRef] = []
            for s, e in zip(extents.starts.tolist(), extents.stops.tolist()):
                for ps, pe in iter_block_pieces(s, e, self._block_size):
                    piece = sf.read(ps, pe - ps)
                    digest = block_digest(piece)
                    existing = self._blocks.get(digest)
                    if existing is None:
                        self._blocks[digest] = bytes(piece)
                        self._refs[digest] = 1
                        self._bytes_physical += len(piece)
                    else:
                        if len(existing) != len(piece):
                            raise BlockStoreError(
                                f"digest collision on {digest}: "
                                f"{len(existing)} vs {len(piece)} bytes"
                            )
                        self._refs[digest] += 1
                        self._deduped_bytes_total += len(piece)
                    self._ingested_bytes_total += len(piece)
                    refs.append(BlockRef(digest, ps, pe - ps))
            manifest = BlockManifest(int(sf.logical_size), tuple(refs))
            if name in owner.manifests:
                self._release_locked(owner, name)
            owner.manifests[name] = manifest
            self._bytes_logical += manifest.payload_bytes
            return manifest

    def release(self, owner: BlockOwner, name: str) -> int:
        """Drop one registered manifest; returns physical bytes freed."""
        with self._lock:
            return self._release_locked(owner, name)

    def _release_locked(self, owner: BlockOwner, name: str) -> int:
        manifest = owner.manifests.pop(name, None)
        if manifest is None:
            raise BlockStoreError(
                f"{owner.label}: release of unregistered manifest {name!r}"
            )
        freed = 0
        for ref in manifest.refs:
            count = self._refs.get(ref.digest)
            if count is None:
                raise BlockStoreError(
                    f"{owner.label}: manifest {name!r} references missing "
                    f"block {ref.digest}"
                )
            if count > 1:
                self._refs[ref.digest] = count - 1
            else:
                del self._refs[ref.digest]
                block = self._blocks.pop(ref.digest)
                self._bytes_physical -= len(block)
                freed += len(block)
        self._bytes_logical -= manifest.payload_bytes
        self._evicted_bytes_total += freed
        return freed

    # -- lookups -----------------------------------------------------------

    def manifest_for(self, owner: BlockOwner, name: str) -> BlockManifest | None:
        with self._lock:
            return owner.manifests.get(name)

    def view(self, manifest: BlockManifest) -> BlockView:
        return BlockView(self, manifest)

    def block_bytes(self, digest: str) -> bytes:
        with self._lock:
            block = self._blocks.get(digest)
            if block is None:
                raise BlockStoreError(f"no block with digest {digest}")
            return block

    def refcount(self, digest: str) -> int:
        with self._lock:
            return self._refs.get(digest, 0)

    def snapshot_refcounts(self) -> dict[str, int]:
        """A copy of the live refcount map (test/diagnostic hook)."""
        with self._lock:
            return dict(self._refs)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            physical = self._bytes_physical
            logical = self._bytes_logical
            return {
                "blocks_total": len(self._blocks),
                "bytes_physical": physical,
                "bytes_logical": logical,
                "dedupe_ratio": (logical / physical) if physical else 1.0,
                "evicted_bytes_total": self._evicted_bytes_total,
                "ingested_bytes_total": self._ingested_bytes_total,
                "deduped_bytes_total": self._deduped_bytes_total,
                "owners": len(self._owners),
            }

    def top_blocks(self, limit: int = 10) -> list[dict]:
        """The most-referenced blocks, ties broken by size then digest."""
        with self._lock:
            ranked = sorted(
                self._refs.items(),
                key=lambda kv: (-kv[1], -len(self._blocks[kv[0]]), kv[0]),
            )
            return [
                {
                    "digest": digest,
                    "bytes": len(self._blocks[digest]),
                    "refs": count,
                }
                for digest, count in ranked[:limit]
            ]

    def per_owner_stats(self) -> list[dict]:
        """Per-owner logical vs resident bytes (shared blocks counted once
        per owner that references them)."""
        with self._lock:
            rows = []
            for owner in self._owners:
                logical = 0
                resident_digests: set[str] = set()
                for manifest in owner.manifests.values():
                    logical += manifest.payload_bytes
                    resident_digests.update(r.digest for r in manifest.refs)
                resident = sum(
                    len(self._blocks[d]) for d in resident_digests
                )
                rows.append(
                    {
                        "owner": owner.label,
                        "manifests": len(owner.manifests),
                        "bytes_logical": logical,
                        "bytes_resident": resident,
                    }
                )
            rows.sort(key=lambda r: r["owner"])
            return rows

    # -- invariants --------------------------------------------------------

    def validate_invariants(self) -> None:
        """Exact consistency check; raises :class:`BlockStoreError`.

        Recomputes what the refcounts, logical bytes, and physical bytes
        *must* be from the registered manifests and compares against the
        live state - catching leaked blocks (physical bytes no manifest
        references), dangling refs (manifests naming absent blocks), and
        counter drift.
        """
        with self._lock:
            problems: list[str] = []
            expected_refs: dict[str, int] = {}
            expected_logical = 0
            for owner in self._owners:
                for name, manifest in owner.manifests.items():
                    expected_logical += manifest.payload_bytes
                    for ref in manifest.refs:
                        expected_refs[ref.digest] = (
                            expected_refs.get(ref.digest, 0) + 1
                        )
                        block = self._blocks.get(ref.digest)
                        if block is None:
                            problems.append(
                                f"{owner.label}/{name}: dangling ref to "
                                f"{ref.digest}"
                            )
                        elif len(block) != ref.length:
                            problems.append(
                                f"{owner.label}/{name}: ref length "
                                f"{ref.length} != block {len(block)}"
                            )
            if expected_refs != self._refs:
                drifted = {
                    d
                    for d in set(expected_refs) | set(self._refs)
                    if expected_refs.get(d, 0) != self._refs.get(d, 0)
                }
                problems.append(
                    f"refcount drift on {len(drifted)} block(s): "
                    + ", ".join(
                        f"{d}={self._refs.get(d, 0)} (expected "
                        f"{expected_refs.get(d, 0)})"
                        for d in sorted(drifted)[:5]
                    )
                )
            leaked = set(self._blocks) - set(expected_refs)
            if leaked:
                problems.append(
                    f"{len(leaked)} leaked block(s) with no referent: "
                    + ", ".join(sorted(leaked)[:5])
                )
            if expected_logical != self._bytes_logical:
                problems.append(
                    f"logical bytes counter {self._bytes_logical} != "
                    f"recomputed {expected_logical}"
                )
            actual_physical = sum(len(b) for b in self._blocks.values())
            if actual_physical != self._bytes_physical:
                problems.append(
                    f"physical bytes counter {self._bytes_physical} != "
                    f"recomputed {actual_physical}"
                )
            zero = [d for d, c in self._refs.items() if c < 1]
            if zero:
                problems.append(
                    f"{len(zero)} block(s) with refcount < 1 still live"
                )
            if problems:
                raise BlockStoreError(
                    "block store invariants violated: "
                    + "; ".join(problems)
                )

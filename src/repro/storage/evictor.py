"""Cost-aware victim selection for ``EvictionPolicy(mode="bytes")``.

TTL/LRU eviction asks "who is idle?"; the byte-budget mode asks a
different question: **which workload frees the most physical bytes for
the least rebuild pain?**  The federation records each admission's
virtual pipeline time (``AdmissionResult.admit_virtual_s``) as that
workload's rebuild cost and the marginal growth of its shard's compacted
union as its bytes estimate; while the shared block store's physical
bytes exceed ``budget_bytes``, the sweeper evicts the candidate with the
lowest rebuild-cost-per-byte-freed until the budget holds (or no
evictable candidates remain - pinned workloads are never offered).

Victim selection is deterministic: ties on the cost/byte score fall to
the larger bytes estimate (frees more per sweep step), then the longer
idle time, then lexical (framework, workload) order.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EvictionCandidate:
    """One evictable workload with its tracked cost model inputs."""

    framework: str
    workload_id: str
    rebuild_cost_s: float
    bytes_estimate: int
    idle_s: float = 0.0

    @property
    def score(self) -> float:
        """Rebuild seconds per byte freed - lower evicts first."""
        return self.rebuild_cost_s / max(1, self.bytes_estimate)


class CostAwareEvictor:
    """Picks cheapest-to-rebuild-per-byte-freed victims under a budget."""

    def __init__(self, budget_bytes: int):
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)

    def over_budget(self, physical_bytes: int) -> int:
        """Bytes above budget (0 when the store fits)."""
        return max(0, int(physical_bytes) - self.budget_bytes)

    def pick(
        self, candidates: list[EvictionCandidate]
    ) -> EvictionCandidate | None:
        """The next victim, or None when nothing is evictable."""
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda c: (
                c.score,
                -c.bytes_estimate,
                -c.idle_s,
                c.framework,
                c.workload_id,
            ),
        )

    def plan(
        self,
        candidates: list[EvictionCandidate],
        physical_bytes: int,
    ) -> list[EvictionCandidate]:
        """Victim order until the *estimated* freed bytes cover the excess.

        A planning helper for callers without live re-measurement; the
        federation sweep instead re-reads the block store's physical
        bytes after every eviction, because shared blocks mean an
        eviction can free fewer bytes than the candidate's estimate.
        """
        excess = self.over_budget(physical_bytes)
        remaining = list(candidates)
        picked: list[EvictionCandidate] = []
        while excess > 0 and remaining:
            victim = self.pick(remaining)
            if victim is None:
                break
            remaining.remove(victim)
            picked.append(victim)
            excess -= victim.bytes_estimate
        return picked

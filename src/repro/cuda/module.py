"""Loaded CUDA modules and kernel handles.

A :class:`LoadedModule` is a shared library's GPU code as the driver sees
it: the subset of fatbin elements whose compute-capability matches the
device (paper §3.2 - "only the elements that match the GPU architecture can
be loaded into GPU memory"), minus elements the compactor removed.  Kernel
resolution follows the paper's model: only *CPU-launching* (entry) kernels
are resolvable via ``cuModuleGetFunction``; GPU-launching kernels execute
through intra-cubin launch edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf.image import SharedLibrary
from repro.errors import MissingKernelError
from repro.fatbin import constants as FC
from repro.fatbin.parser import FatbinElement


@dataclass(frozen=True)
class KernelHandle:
    """Opaque function handle returned by ``cuModuleGetFunction``."""

    library: str
    kernel_name: str
    element_index: int
    kernel_index: int


@dataclass
class LoadedModule:
    """A library's GPU code registered with a device context."""

    lib: SharedLibrary
    device_arch: int
    #: Elements matching the device architecture and not removed.
    matching_elements: list[FatbinElement]
    #: Element indices whose code is resident on the device.
    resident_elements: set[int] = field(default_factory=set)
    _kernel_map: dict[str, tuple[int, int]] | None = None
    _handles: dict[str, KernelHandle] = field(default_factory=dict)
    _element_by_index: dict[int, FatbinElement] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._element_by_index = {e.index: e for e in self.matching_elements}

    @property
    def soname(self) -> str:
        return self.lib.soname

    def element(self, index: int) -> FatbinElement:
        return self._element_by_index[index]

    def kernel_map(self) -> dict[str, tuple[int, int]]:
        """Entry-kernel name -> (element index, kernel index)."""
        if self._kernel_map is None:
            mapping: dict[str, tuple[int, int]] = {}
            for elem in self.matching_elements:
                cubin = elem.cubin
                entry = cubin.entry_mask()
                for k, name in enumerate(cubin.names):
                    if entry[k] and name not in mapping:
                        mapping[name] = (elem.index, k)
            self._kernel_map = mapping
        return self._kernel_map

    def resolve(self, kernel_name: str) -> KernelHandle:
        """Resolve an entry kernel; raises :class:`MissingKernelError`."""
        cached = self._handles.get(kernel_name)
        if cached is not None:
            return cached
        loc = self.kernel_map().get(kernel_name)
        if loc is None:
            raise MissingKernelError(
                f"{self.soname}: cuModuleGetFunction({kernel_name!r}) failed "
                f"(no matching sm_{self.device_arch} element provides it)"
            )
        handle = KernelHandle(self.soname, kernel_name, loc[0], loc[1])
        self._handles[kernel_name] = handle
        return handle

    def is_first_resolution(self, kernel_name: str) -> bool:
        return kernel_name not in self._handles

    def check_launchable(self, handle: KernelHandle) -> None:
        """Verify the whole kernel-call graph of ``handle`` is present.

        Whole-element retention guarantees this for Negativa-ML output; the
        exact-kernel ablation can leave GPU-launching children zeroed, which
        this check surfaces as a launch failure (what a real GPU would do).
        """
        removed: dict[int, set[int]] = self.lib.tags.get("removed_kernels", {})
        holes = removed.get(handle.element_index)
        if not holes:
            return
        cubin = self.element(handle.element_index).cubin
        closure = cubin.call_graph_closure([handle.kernel_index])
        dead = sorted(closure & holes)
        if dead:
            names = [cubin.names[i] for i in dead[:3]]
            raise MissingKernelError(
                f"{self.soname}: kernel {handle.kernel_name!r} launches removed "
                f"kernel(s) {names} (call-graph broken by debloating)"
            )

    def code_bytes_of(self, element_index: int) -> int:
        return self.element(element_index).size


def matching_elements_of(
    lib: SharedLibrary, device_arch: int
) -> tuple[list[FatbinElement], int]:
    """(elements matching ``device_arch`` and not removed, total elements)."""
    image = lib.fatbin
    if image is None:
        return [], 0
    matching = [
        e
        for e in image.elements()
        if e.sm_arch == device_arch
        and not (e.header.flags & FC.ELEMENT_FLAG_REMOVED)
    ]
    return matching, image.element_count()

"""CUPTI-style callback subscription.

The paper's kernel detector "implements a hook to ``cuModuleGetFunction``
using the Nvidia CUPTI API" (§3.1).  This module reproduces that interface:
tools subscribe to driver-API callback sites; the driver emits events (with
a batch ``count`` so the runner can aggregate millions of launches without
Python-level loops); each subscriber pays a declared per-event virtual-time
cost, which is exactly how the §4.6 overhead comparison (detector 41% vs
NSys 126%) is produced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.cuda.clock import VirtualClock
from repro.errors import DetectionError


class CallbackSite(enum.Enum):
    """Driver API callback sites (CUPTI driver-API domain subset)."""

    CU_MODULE_LOAD = "cuModuleLoad"
    CU_MODULE_GET_FUNCTION = "cuModuleGetFunction"
    CU_LAUNCH_KERNEL = "cuLaunchKernel"
    CU_MEMCPY = "cuMemcpy"


@dataclass
class CallbackInfo:
    """Payload passed to subscribers."""

    site: CallbackSite
    count: int = 1
    library: str | None = None
    kernel: str | None = None
    module: Any = None
    bytes_moved: int = 0


class CuptiSubscriber(Protocol):
    """A tool subscribed to driver callbacks.

    A subscriber may additionally declare a ``passive`` attribute: a passive
    subscriber observes events without perturbing the virtual clock (no
    attach cost, and its ``cost_per_event`` is expected to return 0.0).
    This is how the fused instrumented run records what *other* tool stacks
    would have cost without ever executing them (§4.6 attribution).
    """

    #: Sites this subscriber wants callbacks for.
    sites: frozenset[CallbackSite]

    def cost_per_event(self, site: CallbackSite) -> float:
        """Virtual seconds charged per event at ``site``."""
        ...

    def on_event(self, info: CallbackInfo) -> None:
        ...


@dataclass
class Cupti:
    """The callback dispatcher owned by a driver instance."""

    clock: VirtualClock
    attach_cost: float = 0.0
    _subscribers: list[CuptiSubscriber] = field(default_factory=list)

    def subscribe(self, subscriber: CuptiSubscriber) -> None:
        if subscriber in self._subscribers:
            raise DetectionError("subscriber already attached")
        if not subscriber.sites:
            raise DetectionError("subscriber declares no callback sites")
        self._subscribers.append(subscriber)
        if not getattr(subscriber, "passive", False):
            self.clock.advance(self.attach_cost)

    def unsubscribe(self, subscriber: CuptiSubscriber) -> None:
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            raise DetectionError("subscriber not attached") from None

    @property
    def subscribers(self) -> tuple[CuptiSubscriber, ...]:
        return tuple(self._subscribers)

    def emit(self, info: CallbackInfo) -> None:
        """Dispatch an event to interested subscribers, charging their cost."""
        if info.count <= 0:
            return
        for sub in self._subscribers:
            if info.site in sub.sites:
                self.clock.advance(sub.cost_per_event(info.site) * info.count)
                sub.on_event(info)

"""Cost model: the virtual-time and bandwidth constants of the simulator.

These constants are the *calibration surface* of the reproduction.  They are
chosen to be individually plausible for the paper's testbed (AWS g4dn: T4
GPU, EBS-backed storage) and are documented with the experiment whose shape
they anchor.  Nothing downstream hardcodes a result; the tables emerge from
these rates applied to the generated artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import GB, MB


@dataclass(frozen=True)
class CostModel:
    """Bandwidths (bytes/s) and per-event costs (seconds)."""

    # -- storage / memory movement ------------------------------------------------
    #: Cold read bandwidth of the library store (EBS gp3-class).  Anchors the
    #: roughly constant absolute execution-time saving of Table 5 (~2.6 s for
    #: ~2 GB of removed library bytes).
    disk_bandwidth: float = 600 * MB
    #: Model-weight streaming bandwidth (page-cache warm / safetensors mmap).
    weights_bandwidth: float = 2 * GB
    #: Effective host->device copy bandwidth for module/code uploads (PCIe
    #: gen3 x16 with driver overheads); per-device values may override.
    pcie_bandwidth: float = 12 * GB
    #: memset/zero bandwidth used by the compactor cost accounting.
    compact_bandwidth: float = 400 * MB

    # -- driver API costs ----------------------------------------------------------
    cu_init: float = 1.2
    context_create: float = 0.35
    module_load_fixed: float = 2.0e-4
    #: Per-element fixed cost when loading a fatbin element (driver bookkeeping).
    element_load_fixed: float = 1.5e-5
    get_function: float = 3.0e-6
    kernel_launch: float = 3.0e-6
    #: Dynamic linker: per-symbol relocation/resolution cost.
    link_per_symbol: float = 1.2e-7
    #: Per-library fixed mmap/open cost.
    dlopen_fixed: float = 1.0e-3

    # -- tool overheads (anchor §4.6: detector 41% vs NSys 126%) ---------------------
    #: One-time CUPTI subscriber attach cost (detector and NSys alike).
    cupti_attach: float = 1.5
    #: Kernel-detector callback cost per *interception* (once per kernel name,
    #: paper §3.1).  Includes record + serialized flush; the dominant term of
    #: the detector's 41% first-run overhead.
    detector_callback: float = 4.5e-2
    #: NSys per-launch record cost; scales with launch count, which is why
    #: NSys overhead (126%) far exceeds the detector's.
    nsys_launch_record: float = 1.6e-5
    #: NSys also records module/memcpy events.
    nsys_misc_record: float = 1.0e-4
    #: CPU-function profiler (Negativa's detection phase) slowdown factor on
    #: compute time - binary-instrumentation style.  Applied multiplicatively.
    cpu_profiler_slowdown: float = 4.0

    # -- Negativa-ML pipeline costs (anchor Table 8) ----------------------------------
    locate_per_element: float = 2.0e-3
    locate_per_function: float = 8.0e-6
    locate_per_used_kernel: float = 2.0e-4
    locate_fixed_per_lib: float = 0.4

    # -- framework runtime ---------------------------------------------------------
    #: CUDA context scratch + driver overhead resident on the device.
    context_device_bytes: int = 280 * MB
    #: Baseline host footprint of the Python interpreter + framework import
    #: machinery, before libraries/data are loaded.
    interpreter_host_bytes: int = 180 * MB

    extra: dict = field(default_factory=dict)


DEFAULT_COSTS = CostModel()

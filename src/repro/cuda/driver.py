"""The simulated CUDA driver.

Implements the driver-API surface Negativa-ML interacts with - ``cuInit``,
``cuModuleLoad``, ``cuModuleGetFunction``, ``cuLaunchKernel``, host->device
copies - over the virtual clock and memory meters, with CUPTI callback
emission at each site.  Two module-loading modes are supported (paper §4.5):

* **eager**: all architecture-matching elements of a module are copied to
  the device at load time (and their file bytes become host-resident);
* **lazy**: an element is loaded on the first ``cuModuleGetFunction`` that
  resolves a kernel inside it.

Debloating interacts with both modes exactly as in the paper: removed
elements are skipped at load (eager savings) and removed kernels fail
resolution (the verification signal).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cuda.arch import GpuDevice
from repro.cuda.clock import VirtualClock
from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.cuda.cupti import CallbackInfo, CallbackSite, Cupti
from repro.cuda.memory import MemoryMeter
from repro.cuda.module import KernelHandle, LoadedModule, matching_elements_of
from repro.elf.image import SharedLibrary
from repro.errors import CudaArchMismatchError, CudaError


class LoadingMode(enum.Enum):
    """CUDA module loading behaviour (``CUDA_MODULE_LOADING``)."""

    EAGER = "eager"
    LAZY = "lazy"


@dataclass
class DriverCounters:
    """Call counters used by overhead analysis and tests."""

    launches: int = 0
    get_function_calls: int = 0
    unique_kernels: int = 0
    modules_loaded: int = 0
    elements_loaded: int = 0
    h2d_bytes: int = 0


@dataclass
class CudaDriver:
    """One device context worth of driver state."""

    device: GpuDevice
    clock: VirtualClock = field(default_factory=VirtualClock)
    host_memory: MemoryMeter | None = None
    costs: CostModel = DEFAULT_COSTS
    loading_mode: LoadingMode = LoadingMode.EAGER

    def __post_init__(self) -> None:
        self.cupti = Cupti(self.clock, attach_cost=self.costs.cupti_attach)
        self.device_memory = MemoryMeter(
            f"gpu:{self.device.name}", capacity=self.device.memory_bytes
        )
        self.counters = DriverCounters()
        self._modules: dict[str, LoadedModule] = {}
        self._initialized = False

    # -- lifecycle ---------------------------------------------------------------

    def init(self) -> None:
        """``cuInit`` + primary context creation."""
        if self._initialized:
            return
        self.clock.advance(self.costs.cu_init + self.costs.context_create)
        self.device_memory.allocate("context", self.costs.context_device_bytes)
        self._initialized = True

    def _require_init(self) -> None:
        if not self._initialized:
            raise CudaError("driver not initialized (call init() first)")

    # -- modules ---------------------------------------------------------------------

    def module_load(self, lib: SharedLibrary) -> LoadedModule:
        """Register a library's GPU code with the context.

        Raises :class:`CudaArchMismatchError` when the library has GPU code
        but none of it targets this device's architecture.
        """
        self._require_init()
        existing = self._modules.get(lib.soname)
        if existing is not None:
            return existing

        matching, total = matching_elements_of(lib, self.device.sm_arch)
        if total > 0 and not matching:
            image = lib.fatbin
            archs = image.architectures() if image else []
            # Distinguish "nothing ever targeted this device" from "debloating
            # removed everything for this device" - the former is a hard
            # driver error, the latter surfaces at kernel resolution.
            if self.device.sm_arch not in archs:
                raise CudaArchMismatchError(
                    f"{lib.soname}: no fatbin element for sm_{self.device.sm_arch} "
                    f"(available: {archs})"
                )

        module = LoadedModule(
            lib=lib, device_arch=self.device.sm_arch, matching_elements=matching
        )
        self._modules[lib.soname] = module
        self.counters.modules_loaded += 1
        self.clock.advance(self.costs.module_load_fixed)
        self.cupti.emit(CallbackInfo(CallbackSite.CU_MODULE_LOAD, library=lib.soname))

        if self.loading_mode is LoadingMode.EAGER:
            for elem in matching:
                self._load_element(module, elem.index)
        return module

    def _load_element(self, module: LoadedModule, element_index: int) -> None:
        if element_index in module.resident_elements:
            return
        elem = module.element(element_index)
        nbytes = elem.size
        # Copy host->device.  Under eager loading the element's file bytes
        # are already host-resident (the loader mapped the whole retained
        # file); under lazy loading this read is what first touches the
        # pages, so the host meter grows here - identical before/after
        # debloating, which is why lazy-mode CPU-memory savings collapse
        # (paper Table 7).
        self.clock.advance(
            self.costs.element_load_fixed + nbytes / self.costs.pcie_bandwidth
        )
        if self.loading_mode is LoadingMode.LAZY and self.host_memory is not None:
            self.host_memory.allocate("fatbin_touched", nbytes)
        self.device_memory.allocate("gpu_code", nbytes)
        module.resident_elements.add(element_index)
        self.counters.elements_loaded += 1
        self.counters.h2d_bytes += nbytes

    def module_get_function(self, module: LoadedModule, kernel_name: str) -> KernelHandle:
        """``cuModuleGetFunction``: resolve an entry kernel by name.

        The CUPTI callback fires only on the *first* resolution of a kernel
        name (the driver caches handles), which is the once-per-kernel
        property the paper's detector exploits (§3.1).
        """
        self._require_init()
        first = module.is_first_resolution(kernel_name)
        handle = module.resolve(kernel_name)
        self.counters.get_function_calls += 1
        self.clock.advance(self.costs.get_function)
        if first:
            self.counters.unique_kernels += 1
            if self.loading_mode is LoadingMode.LAZY:
                self._load_element(module, handle.element_index)
            self.cupti.emit(
                CallbackInfo(
                    CallbackSite.CU_MODULE_GET_FUNCTION,
                    library=module.soname,
                    kernel=kernel_name,
                    module=module,
                )
            )
        return handle

    def launch_kernel(
        self, handle: KernelHandle, count: int = 1, duration: float = 0.0
    ) -> None:
        """Launch ``count`` instances of the kernel, ``duration`` total compute.

        ``count`` batches repeated launches so the runner can account for
        millions of per-iteration launches without Python-level loops; CUPTI
        subscribers are charged per launch via the batched event.
        """
        self._require_init()
        if count <= 0:
            return
        module = self._modules.get(handle.library)
        if module is None:
            raise CudaError(f"launch into unloaded module {handle.library!r}")
        module.check_launchable(handle)
        self.counters.launches += count
        self.clock.advance(self.costs.kernel_launch * count + duration)
        self.cupti.emit(
            CallbackInfo(
                CallbackSite.CU_LAUNCH_KERNEL,
                count=count,
                library=handle.library,
                kernel=handle.kernel_name,
            )
        )

    # -- memory ------------------------------------------------------------------------

    def memcpy_h2d(self, category: str, nbytes: int):
        """Copy host data to the device; returns the device allocation."""
        self._require_init()
        self.clock.advance(nbytes / self.costs.pcie_bandwidth)
        alloc = self.device_memory.allocate(category, nbytes)
        self.counters.h2d_bytes += nbytes
        self.cupti.emit(
            CallbackInfo(CallbackSite.CU_MEMCPY, bytes_moved=nbytes)
        )
        return alloc

    def device_alloc(self, category: str, nbytes: int):
        """``cuMemAlloc`` without a transfer (workspaces, pools)."""
        self._require_init()
        return self.device_memory.allocate(category, nbytes)

    # -- introspection ------------------------------------------------------------------

    @property
    def modules(self) -> dict[str, LoadedModule]:
        return dict(self._modules)

    def gpu_code_resident_bytes(self) -> int:
        return self.device_memory.by_category.get("gpu_code", 0)

"""GPU device catalog.

``sm_arch`` is the compute-capability number stored in fatbin element
headers (e.g. 75 for the T4's sm_75).  The catalog covers the devices the
paper evaluates on (T4, A100, H100) plus the architectures ML frameworks
ship fatbin elements for - the source of "Reason I" bloat (paper §4.3: a
single PyTorch library contained elements for six GPU architectures).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.units import GB


@dataclass(frozen=True)
class GpuDevice:
    """A GPU model with the properties the simulator uses."""

    name: str
    sm_arch: int  # compute capability, e.g. 75 == sm_75
    memory_bytes: int
    sm_count: int
    fp32_tflops: float  # peak throughput used by the op cost model
    pcie_gbps: float = 12.0  # effective host->device copy bandwidth

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / (1 << 20)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} (sm_{self.sm_arch})"


DEVICES: dict[str, GpuDevice] = {
    "t4": GpuDevice("NVIDIA T4", 75, 16 * GB, 40, 8.1),
    "v100": GpuDevice("NVIDIA V100", 70, 16 * GB, 80, 15.7),
    "a100-40gb": GpuDevice("NVIDIA A100 40GB", 80, 40 * GB, 108, 19.5, pcie_gbps=20.0),
    "a100-80gb": GpuDevice("NVIDIA A100 80GB", 80, 80 * GB, 108, 19.5, pcie_gbps=20.0),
    "h100": GpuDevice("NVIDIA H100", 90, 96 * GB, 132, 67.0, pcie_gbps=40.0),
    "rtx3090": GpuDevice("NVIDIA RTX 3090", 86, 24 * GB, 82, 35.6),
    "l4": GpuDevice("NVIDIA L4", 89, 24 * GB, 58, 30.3),
    "p100": GpuDevice("NVIDIA P100", 60, 16 * GB, 56, 9.3),
}

# Architectures ML frameworks typically embed fatbin elements for; six of
# them, matching the paper's observation.  Newer architectures carry more
# (and larger) kernel specializations, hence the byte-share weights used by
# the library generator.
SHIPPED_ARCHITECTURES: tuple[int, ...] = (60, 70, 75, 80, 86, 90)
ARCH_BYTE_WEIGHTS: dict[int, float] = {
    60: 0.3,
    70: 0.5,
    75: 3.4,
    80: 1.6,
    86: 0.6,
    90: 1.4,
}


def get_device(name: str) -> GpuDevice:
    """Look up a device by catalog key (case-insensitive)."""
    key = name.lower()
    if key not in DEVICES:
        raise ConfigurationError(
            f"unknown device {name!r}; known: {sorted(DEVICES)}"
        )
    return DEVICES[key]

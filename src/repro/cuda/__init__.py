"""Simulated CUDA driver, CUPTI, devices, memory meters, and virtual clock.

This package stands in for the CUDA driver + CUPTI on the paper's testbeds
(T4 / A100 / H100).  It reproduces the driver-API *contract* Negativa-ML
depends on:

* ``cuModuleGetFunction`` is called exactly once per kernel name regardless
  of how many times the kernel launches (paper §3.1) - the detector's hook
  point;
* module loading selects fatbin elements whose compute-capability matches
  the device architecture (paper §3.2) and supports eager/lazy loading
  (paper §4.5);
* CUPTI-style callback subscription lets tools intercept driver calls, each
  subscriber paying a per-event virtual-time cost (the §4.6 overhead model).

All time is virtual (:class:`~repro.cuda.clock.VirtualClock`); all memory is
metered (:class:`~repro.cuda.memory.MemoryMeter`), which is how the runtime
tables (5/7/8) are produced deterministically.
"""

from repro.cuda.arch import DEVICES, GpuDevice, get_device
from repro.cuda.clock import VirtualClock
from repro.cuda.costs import CostModel
from repro.cuda.cupti import CallbackSite, Cupti, CuptiSubscriber
from repro.cuda.driver import CudaDriver, LoadingMode
from repro.cuda.memory import MemoryMeter
from repro.cuda.module import KernelHandle, LoadedModule

__all__ = [
    "DEVICES",
    "CallbackSite",
    "CostModel",
    "CudaDriver",
    "Cupti",
    "CuptiSubscriber",
    "GpuDevice",
    "KernelHandle",
    "LoadedModule",
    "LoadingMode",
    "MemoryMeter",
    "VirtualClock",
    "get_device",
]

"""Host/device memory meters with category accounting and peak tracking.

Peak CPU memory and peak GPU memory (Tables 5 and 7) are read off these
meters.  Allocations carry a category label (``"gpu_code"``, ``"weights"``,
``"activations"``, ...) so experiments can also report *why* memory moved -
the mechanism behind each reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DoubleFreeError, OutOfMemoryError


@dataclass
class Allocation:
    """A live allocation; free through :meth:`MemoryMeter.free`."""

    meter: "MemoryMeter"
    category: str
    size: int
    freed: bool = False

    def free(self) -> None:
        self.meter.free(self)


class MemoryMeter:
    """Tracks current/peak usage, optionally enforcing a capacity."""

    def __init__(self, name: str, capacity: int | None = None) -> None:
        self.name = name
        self.capacity = capacity
        self.current = 0
        self.peak = 0
        self.by_category: dict[str, int] = {}
        self.peak_by_category: dict[str, int] = {}

    def allocate(self, category: str, size: int) -> Allocation:
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if self.capacity is not None and self.current + size > self.capacity:
            raise OutOfMemoryError(
                f"{self.name}: allocating {size} bytes exceeds capacity "
                f"({self.current}/{self.capacity} in use)"
            )
        self.current += size
        self.peak = max(self.peak, self.current)
        cur = self.by_category.get(category, 0) + size
        self.by_category[category] = cur
        self.peak_by_category[category] = max(
            self.peak_by_category.get(category, 0), cur
        )
        return Allocation(self, category, size)

    def free(self, allocation: Allocation) -> None:
        if allocation.meter is not self:
            raise ValueError("allocation belongs to a different meter")
        if allocation.freed:
            raise DoubleFreeError(
                f"{self.name}: double free of {allocation.size} bytes "
                f"({allocation.category})"
            )
        allocation.freed = True
        self.current -= allocation.size
        self.by_category[allocation.category] -= allocation.size

    def headroom(self) -> int | None:
        if self.capacity is None:
            return None
        return self.capacity - self.current

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = f"/{self.capacity}" if self.capacity is not None else ""
        return f"MemoryMeter({self.name}: {self.current}{cap}, peak={self.peak})"

"""Virtual wall clock.

All execution-time results in the reproduction (Tables 5, 7, 8 and the §4.6
overhead comparison) are read off this clock: the loader charges I/O time,
the driver charges launch/copy time, CUPTI charges per-callback tool
overhead, and the workload runner charges compute time.  Determinism of the
clock is what makes the benchmark tables reproducible bit-for-bit.
"""

from __future__ import annotations

from contextlib import contextmanager


class VirtualClock:
    """A monotonically advancing virtual clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds

    @contextmanager
    def measure(self):
        """Context manager yielding a callable that reports elapsed time."""
        start = self._now
        yield lambda: self._now - start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now:.6f}s)"

"""Shared substrate utilities: intervals, sparse files, RNG streams, stats.

The debloater's core currency is the *file range* (:class:`~repro.utils.intervals.RangeSet`);
generated libraries keep their multi-hundred-MB payloads in
:class:`~repro.utils.sparsefile.SparseFile` objects so experiments run at
paper-scale sizes without materializing the bytes.
"""

from repro.utils.intervals import Range, RangeSet
from repro.utils.rng import RngStream, stable_seed
from repro.utils.sparsefile import SparseFile
from repro.utils.units import fmt_bytes, fmt_count, fmt_mb, mb, pct_reduction

__all__ = [
    "Range",
    "RangeSet",
    "RngStream",
    "SparseFile",
    "fmt_bytes",
    "fmt_count",
    "fmt_mb",
    "mb",
    "pct_reduction",
    "stable_seed",
]

"""Pure-Python reference interval engine (the pre-vectorization seed).

This is the original list-of-:class:`Range` implementation of the interval
algebra, kept verbatim as the *oracle*: the equivalence fuzz tests assert the
NumPy-backed :class:`repro.utils.intervals.RangeSet` is semantically
identical to this one on random interval sets, and
``benchmarks/bench_intervals.py`` measures the vectorized engine's speedup
against it.  It is not used anywhere on the production path.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.utils.intervals import Range


class PyRangeSet:
    """A normalized set of disjoint, sorted, non-empty half-open ranges."""

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Iterable[Range | tuple[int, int]] = ()) -> None:
        items = [r if isinstance(r, Range) else Range(*r) for r in ranges]
        self._ranges: list[Range] = self._normalize(items)

    @staticmethod
    def _normalize(items: list[Range]) -> list[Range]:
        items = sorted((r for r in items if len(r) > 0), key=lambda r: r.start)
        merged: list[Range] = []
        for r in items:
            if merged and r.start <= merged[-1].stop:
                last = merged[-1]
                if r.stop > last.stop:
                    merged[-1] = Range(last.start, r.stop)
            else:
                merged.append(r)
        return merged

    # -- constructors ---------------------------------------------------------

    @classmethod
    def single(cls, start: int, stop: int) -> "PyRangeSet":
        return cls([Range(start, stop)])

    @classmethod
    def empty(cls) -> "PyRangeSet":
        return cls()

    # -- container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Range]:
        return iter(self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PyRangeSet):
            return NotImplemented
        return self._ranges == other._ranges

    def __hash__(self) -> int:
        return hash(tuple(self._ranges))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(r) for r in self._ranges[:6])
        suffix = ", ..." if len(self._ranges) > 6 else ""
        return f"PyRangeSet({inner}{suffix})"

    # -- queries ----------------------------------------------------------------

    @property
    def ranges(self) -> tuple[Range, ...]:
        return tuple(self._ranges)

    def total(self) -> int:
        """Total number of bytes covered."""
        return sum(len(r) for r in self._ranges)

    def contains_offset(self, offset: int) -> bool:
        """Binary search for whether ``offset`` lies inside any range."""
        lo, hi = 0, len(self._ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            r = self._ranges[mid]
            if offset < r.start:
                hi = mid
            elif offset >= r.stop:
                lo = mid + 1
            else:
                return True
        return False

    def covers(self, rng: Range | tuple[int, int]) -> bool:
        """True when the whole of ``rng`` is covered by this set."""
        r = rng if isinstance(rng, Range) else Range(*rng)
        if len(r) == 0:
            return True
        remaining = PyRangeSet([r]) - self
        return not bool(remaining)

    def bounds(self) -> Range | None:
        if not self._ranges:
            return None
        return Range(self._ranges[0].start, self._ranges[-1].stop)

    # -- algebra ------------------------------------------------------------------

    def union(
        self, other: "PyRangeSet | Iterable[Range | tuple[int, int]]"
    ) -> "PyRangeSet":
        other_ranges = (
            other._ranges if isinstance(other, PyRangeSet) else list(other)
        )
        return PyRangeSet([*self._ranges, *other_ranges])

    __or__ = union

    def intersection(self, other: "PyRangeSet") -> "PyRangeSet":
        out: list[Range] = []
        i = j = 0
        a, b = self._ranges, other._ranges
        while i < len(a) and j < len(b):
            hit = a[i].intersect(b[j])
            if hit is not None:
                out.append(hit)
            if a[i].stop <= b[j].stop:
                i += 1
            else:
                j += 1
        return PyRangeSet(out)

    __and__ = intersection

    def difference(self, other: "PyRangeSet") -> "PyRangeSet":
        out: list[Range] = []
        j = 0
        b = other._ranges
        for r in self._ranges:
            cur = r.start
            while j < len(b) and b[j].stop <= r.start:
                j += 1
            k = j
            while k < len(b) and b[k].start < r.stop:
                blk = b[k]
                if blk.start > cur:
                    out.append(Range(cur, min(blk.start, r.stop)))
                cur = max(cur, blk.stop)
                if cur >= r.stop:
                    break
                k += 1
            if cur < r.stop:
                out.append(Range(cur, r.stop))
        return PyRangeSet(out)

    __sub__ = difference

    def complement(self, universe: Range | tuple[int, int]) -> "PyRangeSet":
        """Ranges of ``universe`` not covered by this set."""
        u = universe if isinstance(universe, Range) else Range(*universe)
        return PyRangeSet([u]) - self

    def shift(self, delta: int) -> "PyRangeSet":
        return PyRangeSet([r.shift(delta) for r in self._ranges])

    def clamp(self, universe: Range | tuple[int, int]) -> "PyRangeSet":
        u = universe if isinstance(universe, Range) else Range(*universe)
        return self & PyRangeSet([u])

"""Crash-durable atomic file writes shared across the persistence tiers.

``tmp + os.replace`` alone is only *rename*-atomic: after a power loss the
file may exist with zero bytes because neither the data nor the directory
entry was ever forced to stable storage.  :func:`atomic_write_bytes` closes
that hole - it writes to a same-directory temp file, ``fsync``\\ s the file,
renames it over the destination, then ``fsync``\\ s the parent directory so
the rename itself is durable.  The snapshot writer
(:mod:`repro.serving.snapshot`), the disk cache tier
(:mod:`repro.experiments.diskcache`), and the WAL
(:mod:`repro.serving.wal`) all route through here.

Tests (and benchmarks that churn thousands of tiny files) can set
``REPRO_NO_FSYNC=1`` to skip the physical syncs while keeping the
tmp+rename atomicity; the escape hatch trades power-loss durability for
speed, never crash consistency against process death.
"""

from __future__ import annotations

import os

__all__ = [
    "NO_FSYNC_ENV",
    "fsync_enabled",
    "fsync_file",
    "fsync_dir",
    "atomic_write_bytes",
]

#: Environment variable that disables physical ``os.fsync`` calls.
NO_FSYNC_ENV = "REPRO_NO_FSYNC"


def fsync_enabled() -> bool:
    """Whether physical ``os.fsync`` calls are enabled (the default)."""
    return os.environ.get(NO_FSYNC_ENV, "").strip() not in ("1", "true", "yes")


def fsync_file(fd: int) -> None:
    """``os.fsync`` a file descriptor unless ``REPRO_NO_FSYNC`` is set."""
    if fsync_enabled():
        os.fsync(fd)


def fsync_dir(path: str) -> None:
    """Force a directory's entries to stable storage (best effort).

    A rename is only durable once the *parent directory* is synced.  Some
    platforms refuse ``open(O_RDONLY)`` on directories; those errors are
    swallowed because the write itself already succeeded.
    """
    if not fsync_enabled():
        return
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Durably replace ``path`` with ``data``.

    Writes a same-directory temp file (so ``os.replace`` never crosses a
    filesystem boundary), syncs it, renames it into place, and syncs the
    parent directory.  Readers never observe a partial file; after this
    returns (with fsync enabled) the bytes survive power loss.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(
        directory, f".{os.path.basename(path)}.tmp{os.getpid()}"
    )
    try:
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data)
            fsync_file(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(directory)

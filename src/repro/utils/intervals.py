"""Half-open integer interval algebra, NumPy-backed.

File ranges are the core currency of the Negativa-ML pipeline: the locator
emits *retain* ranges, the compactor zeroes the complement, and verification
checks that every executed byte lies inside a retained range.  A
:class:`RangeSet` is a normalized (sorted, disjoint, merged) set of half-open
``[start, stop)`` intervals supporting union/intersection/difference/
complement, coverage queries, and total length.

The engine stores a set as two sorted ``int64`` arrays (``starts``,
``stops``) and runs every operation vectorized: normalization is an argsort
plus a running-maximum merge, intersection is a ``searchsorted`` overlap
join, difference is intersection with the vectorized complement, and
coverage/membership queries are single binary searches with no intermediate
:class:`RangeSet` allocation.  Paper-scale libraries produce tens of
thousands of ranges per locate/compact round; the batched APIs
(:meth:`RangeSet.from_arrays`, :meth:`RangeSet.contains_offsets`,
:attr:`RangeSet.lengths`) let callers stay in NumPy end to end.

``repro.utils._intervals_py`` keeps the original pure-Python implementation
as the semantic reference; the equivalence fuzz tests assert both engines
agree on random interval sets.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True, order=True)
class Range:
    """A half-open interval ``[start, stop)`` of byte offsets."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid range [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, offset: int) -> bool:
        return self.start <= offset < self.stop

    def overlaps(self, other: "Range") -> bool:
        return self.start < other.stop and other.start < self.stop

    def touches(self, other: "Range") -> bool:
        """True when the ranges overlap or are adjacent (mergeable)."""
        return self.start <= other.stop and other.start <= self.stop

    def intersect(self, other: "Range") -> "Range | None":
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if start >= stop:
            return None
        return Range(start, stop)

    def shift(self, delta: int) -> "Range":
        return Range(self.start + delta, self.stop + delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start:#x}, {self.stop:#x})"


def _normalize(starts: np.ndarray, stops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort, drop empties, and merge overlapping/adjacent intervals."""
    nonempty = stops > starts
    if not nonempty.all():
        starts, stops = starts[nonempty], stops[nonempty]
    if starts.size == 0:
        return _EMPTY, _EMPTY
    order = np.argsort(starts, kind="stable")
    starts, stops = starts[order], stops[order]
    # A running maximum of stops marks merged extents; a new run begins
    # wherever a start exceeds everything seen so far (strictly: adjacent
    # intervals merge).
    reach = np.maximum.accumulate(stops)
    new_run = np.empty(starts.size, dtype=bool)
    new_run[0] = True
    np.greater(starts[1:], reach[:-1], out=new_run[1:])
    run_first = np.flatnonzero(new_run)
    run_last = np.concatenate((run_first[1:], [starts.size])) - 1
    return starts[run_first], reach[run_last]


class RangeSet:
    """A normalized set of disjoint, sorted, non-empty half-open ranges."""

    __slots__ = ("_starts", "_stops")

    def __init__(self, ranges: Iterable[Range | tuple[int, int]] = ()) -> None:
        if isinstance(ranges, RangeSet):
            self._starts, self._stops = ranges._starts, ranges._stops
            return
        starts: list[int] = []
        stops: list[int] = []
        for r in ranges:
            if isinstance(r, Range):
                starts.append(r.start)
                stops.append(r.stop)
            else:
                a, b = r
                if a < 0 or b < a:
                    raise ValueError(f"invalid range [{a}, {b})")
                starts.append(a)
                stops.append(b)
        self._starts, self._stops = _normalize(
            np.asarray(starts, dtype=np.int64), np.asarray(stops, dtype=np.int64)
        )

    @classmethod
    def _wrap(cls, starts: np.ndarray, stops: np.ndarray) -> "RangeSet":
        """Adopt already-normalized arrays without copying or checking."""
        out = cls.__new__(cls)
        out._starts, out._stops = starts, stops
        return out

    # -- constructors ---------------------------------------------------------

    @classmethod
    def single(cls, start: int, stop: int) -> "RangeSet":
        return cls([Range(start, stop)])

    @classmethod
    def empty(cls) -> "RangeSet":
        return cls._wrap(_EMPTY, _EMPTY)

    @classmethod
    def from_arrays(cls, starts: np.ndarray, stops: np.ndarray) -> "RangeSet":
        """Batched constructor from parallel start/stop arrays.

        Inputs need not be sorted or disjoint; empty intervals are dropped.
        This is the fast path for locators that already hold offset arrays.
        """
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        if starts.shape != stops.shape or starts.ndim != 1:
            raise ValueError("from_arrays needs two 1-D arrays of equal length")
        if starts.size and (
            (starts < 0).any() or (stops < starts).any()
        ):
            raise ValueError("from_arrays: negative start or inverted range")
        return cls._wrap(*_normalize(starts, stops))

    # -- container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Range]:
        for a, b in zip(self._starts.tolist(), self._stops.tolist()):
            yield Range(a, b)

    def __len__(self) -> int:
        return int(self._starts.size)

    def __bool__(self) -> bool:
        return self._starts.size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return np.array_equal(self._starts, other._starts) and np.array_equal(
            self._stops, other._stops
        )

    def __hash__(self) -> int:
        return hash((self._starts.tobytes(), self._stops.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"[{a:#x}, {b:#x})"
            for a, b in zip(self._starts[:6], self._stops[:6])
        )
        suffix = ", ..." if self._starts.size > 6 else ""
        return f"RangeSet({inner}{suffix})"

    # -- queries ----------------------------------------------------------------

    @property
    def ranges(self) -> tuple[Range, ...]:
        return tuple(self)

    @property
    def starts(self) -> np.ndarray:
        """Sorted interval starts (read-only view).

        The backing arrays are aliased across sets (e.g. ``union`` with an
        empty operand returns the other set unchanged), so the views are
        non-writable to keep the normalized invariant corruption-proof.
        """
        view = self._starts.view()
        view.flags.writeable = False
        return view

    @property
    def stops(self) -> np.ndarray:
        """Sorted interval stops (read-only view)."""
        view = self._stops.view()
        view.flags.writeable = False
        return view

    @property
    def lengths(self) -> np.ndarray:
        """Per-interval byte lengths, aligned with :attr:`starts`."""
        return self._stops - self._starts

    def total(self) -> int:
        """Total number of bytes covered."""
        return int((self._stops - self._starts).sum())

    def contains_offset(self, offset: int) -> bool:
        """Binary search for whether ``offset`` lies inside any range."""
        i = int(np.searchsorted(self._starts, offset, side="right")) - 1
        return i >= 0 and offset < self._stops[i]

    def contains_offsets(self, offsets: np.ndarray) -> np.ndarray:
        """Vectorized membership test: one bool per input offset."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if self._starts.size == 0:
            return np.zeros(offsets.shape, dtype=bool)
        idx = np.searchsorted(self._starts, offsets, side="right") - 1
        inside = idx >= 0
        np.logical_and(
            inside, offsets < self._stops[np.maximum(idx, 0)], out=inside
        )
        return inside

    def covers(self, rng: Range | tuple[int, int]) -> bool:
        """True when the whole of ``rng`` is covered by this set.

        Allocation-free: because the set is normalized, a covered range must
        lie entirely inside the single interval enclosing its start.
        """
        r = rng if isinstance(rng, Range) else Range(*rng)
        start, stop = r.start, r.stop
        if stop <= start:
            return True
        i = int(np.searchsorted(self._starts, start, side="right")) - 1
        return i >= 0 and stop <= self._stops[i]

    def bounds(self) -> Range | None:
        if self._starts.size == 0:
            return None
        return Range(int(self._starts[0]), int(self._stops[-1]))

    # -- algebra ------------------------------------------------------------------

    def union(self, other: "RangeSet | Iterable[Range | tuple[int, int]]") -> "RangeSet":
        if not isinstance(other, RangeSet):
            other = RangeSet(other)
        if not other:
            return self
        if not self:
            return other
        return RangeSet._wrap(
            *_normalize(
                np.concatenate((self._starts, other._starts)),
                np.concatenate((self._stops, other._stops)),
            )
        )

    __or__ = union

    def intersection(self, other: "RangeSet") -> "RangeSet":
        a_s, a_e = self._starts, self._stops
        b_s, b_e = other._starts, other._stops
        if a_s.size == 0 or b_s.size == 0:
            return RangeSet.empty()
        # Overlap join: for interval i of self, candidates in other span
        # [lo[i], hi[i]).  Both candidate bounds come from binary searches on
        # the sorted arrays; every candidate genuinely overlaps, so no
        # post-filtering or re-normalization is needed.
        lo = np.searchsorted(b_e, a_s, side="right")
        hi = np.searchsorted(b_s, a_e, side="left")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return RangeSet.empty()
        idx_a = np.repeat(np.arange(a_s.size), counts)
        first = np.cumsum(counts) - counts
        idx_b = (np.arange(total) - first[idx_a]) + lo[idx_a]
        return RangeSet._wrap(
            np.maximum(a_s[idx_a], b_s[idx_b]),
            np.minimum(a_e[idx_a], b_e[idx_b]),
        )

    __and__ = intersection

    def difference(self, other: "RangeSet") -> "RangeSet":
        if self._starts.size == 0 or other._starts.size == 0:
            return self
        lo = int(self._starts[0])
        hi = int(self._stops[-1])
        return self & other._gaps(lo, hi)

    __sub__ = difference

    def _gaps(self, lo: int, hi: int) -> "RangeSet":
        """The complement of this set clipped to ``[lo, hi)``, vectorized."""
        starts = np.concatenate(([lo], self._stops))
        stops = np.concatenate((self._starts, [hi]))
        np.clip(starts, lo, hi, out=starts)
        np.clip(stops, lo, hi, out=stops)
        keep = stops > starts
        return RangeSet._wrap(starts[keep], stops[keep])

    def complement(self, universe: Range | tuple[int, int]) -> "RangeSet":
        """Ranges of ``universe`` not covered by this set."""
        u = universe if isinstance(universe, Range) else Range(*universe)
        if len(u) == 0:
            return RangeSet.empty()
        if self._starts.size == 0:
            return RangeSet.single(u.start, u.stop)
        return self._gaps(u.start, u.stop)

    def shift(self, delta: int) -> "RangeSet":
        if self._starts.size and int(self._starts[0]) + delta < 0:
            raise ValueError(f"shift by {delta} produces a negative offset")
        return RangeSet._wrap(self._starts + delta, self._stops + delta)

    def clamp(self, universe: Range | tuple[int, int]) -> "RangeSet":
        u = universe if isinstance(universe, Range) else Range(*universe)
        return self & RangeSet([u])

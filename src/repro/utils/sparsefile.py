"""Sparse byte container with paper-scale logical sizes.

Generated shared libraries are hundreds of megabytes; materializing their
payload bytes would make experiments slow and memory-hungry for no analytical
gain (Negativa-ML only reads *structural* bytes: ELF headers, symbol tables,
fatbin headers, kernel name tables).  :class:`SparseFile` stores written
extents in a sorted map and reads holes back as zero bytes, exactly like a
sparse file on a POSIX filesystem.  ``logical_size`` is the file size used in
all accounting; ``materialized_size`` is the number of bytes actually stored.
"""

from __future__ import annotations

import bisect
import io

import numpy as np

from repro.utils.intervals import RangeSet


class SparseFile:
    """An in-memory sparse file: written extents over an all-zero backdrop."""

    def __init__(self, size: int = 0) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._starts: list[int] = []
        self._chunks: list[bytes] = []

    # -- size accounting -------------------------------------------------------

    @property
    def logical_size(self) -> int:
        """The file size as seen by ``stat()`` (includes holes)."""
        return self._size

    @property
    def materialized_size(self) -> int:
        """Bytes actually stored (written extents only)."""
        return sum(len(c) for c in self._chunks)

    def extents(self) -> RangeSet:
        """The written (non-hole) extents."""
        starts = np.asarray(self._starts, dtype=np.int64)
        lengths = np.fromiter(
            (len(c) for c in self._chunks), dtype=np.int64, count=len(self._chunks)
        )
        return RangeSet.from_arrays(starts, starts + lengths)

    def truncate(self, size: int) -> None:
        """Grow or shrink the logical size, dropping extents past the end."""
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        while self._starts and self._starts[-1] >= size:
            self._starts.pop()
            self._chunks.pop()
        if self._starts:
            last_start = self._starts[-1]
            last = self._chunks[-1]
            if last_start + len(last) > size:
                self._chunks[-1] = last[: size - last_start]

    # -- I/O ---------------------------------------------------------------------

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, extending the logical size if needed."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if not data:
            return
        end = offset + len(data)
        self._size = max(self._size, end)
        # Merge with any overlapping/adjacent existing extents.
        lo = bisect.bisect_left(self._starts, offset)
        if lo > 0 and self._starts[lo - 1] + len(self._chunks[lo - 1]) >= offset:
            lo -= 1
        hi = lo
        while hi < len(self._starts) and self._starts[hi] <= end:
            hi += 1
        if lo == hi:
            self._starts.insert(lo, offset)
            self._chunks.insert(lo, bytes(data))
            return
        new_start = min(offset, self._starts[lo])
        new_end = max(end, self._starts[hi - 1] + len(self._chunks[hi - 1]))
        buf = bytearray(new_end - new_start)
        for s, c in zip(self._starts[lo:hi], self._chunks[lo:hi]):
            buf[s - new_start : s - new_start + len(c)] = c
        buf[offset - new_start : offset - new_start + len(data)] = data
        self._starts[lo:hi] = [new_start]
        self._chunks[lo:hi] = [bytes(buf)]

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset``; holes read back as zeros."""
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        if offset + size > self._size:
            raise ValueError(
                f"read past end of file: [{offset}, {offset + size}) > {self._size}"
            )
        out = bytearray(size)
        idx = bisect.bisect_right(self._starts, offset) - 1
        if idx < 0:
            idx = 0
        end = offset + size
        for s, c in zip(self._starts[idx:], self._chunks[idx:]):
            if s >= end:
                break
            c_end = s + len(c)
            if c_end <= offset:
                continue
            lo = max(s, offset)
            hi = min(c_end, end)
            out[lo - offset : hi - offset] = c[lo - s : hi - s]
        return bytes(out)

    def zero(self, offset: int, size: int) -> None:
        """Punch a hole: bytes in ``[offset, offset+size)`` read back as zero."""
        if size <= 0:
            return
        end = min(offset + size, self._size)
        if offset >= end:
            return
        new_starts: list[int] = []
        new_chunks: list[bytes] = []
        for s, c in zip(self._starts, self._chunks):
            c_end = s + len(c)
            if c_end <= offset or s >= end:
                new_starts.append(s)
                new_chunks.append(c)
                continue
            if s < offset:
                new_starts.append(s)
                new_chunks.append(c[: offset - s])
            if c_end > end:
                new_starts.append(end)
                new_chunks.append(c[end - s :])
        self._starts = new_starts
        self._chunks = new_chunks

    def zero_ranges(self, ranges: RangeSet) -> None:
        # Iterate the backing arrays directly: no per-interval Range objects.
        for start, length in zip(
            ranges.starts.tolist(), ranges.lengths.tolist()
        ):
            self.zero(start, length)

    # -- conversions ----------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Fully materialize the file (use only at small scales/tests)."""
        return self.read(0, self._size)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SparseFile":
        f = cls(len(data))
        f.write(0, data)
        return f

    def dump(self, fileobj: io.BufferedIOBase) -> None:
        """Write the file to a real (sparse-friendly) file object."""
        fileobj.truncate(self._size)
        for s, c in zip(self._starts, self._chunks):
            fileobj.seek(s)
            fileobj.write(c)

    def copy(self) -> "SparseFile":
        dup = SparseFile(self._size)
        dup._starts = list(self._starts)
        dup._chunks = list(self._chunks)
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseFile):
            return NotImplemented
        if self._size != other._size:
            return False
        return self._starts == other._starts and self._chunks == other._chunks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseFile(logical={self._size}, materialized={self.materialized_size},"
            f" extents={len(self._starts)})"
        )

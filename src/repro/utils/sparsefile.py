"""Sparse byte container with paper-scale logical sizes.

Generated shared libraries are hundreds of megabytes; materializing their
payload bytes would make experiments slow and memory-hungry for no analytical
gain (Negativa-ML only reads *structural* bytes: ELF headers, symbol tables,
fatbin headers, kernel name tables).  :class:`SparseFile` stores written
extents over an all-zero backdrop and reads holes back as zero bytes, exactly
like a sparse file on a POSIX filesystem.  ``logical_size`` is the file size
used in all accounting; ``materialized_size`` is the number of bytes actually
stored.

Extent bookkeeping is array-backed: chunk starts/ends live in two sorted
``int64`` arrays (the same normalized form as
:class:`~repro.utils.intervals.RangeSet`, whose vectorized algebra
:meth:`zero_ranges` reuses), so hole-punching a locate result's thousands of
removal ranges is one batched difference instead of a per-range Python merge
over the whole chunk list.  Only the chunk *payloads* stay Python ``bytes``.
"""

from __future__ import annotations

import io

import numpy as np

from repro.utils.intervals import RangeSet

_EMPTY = np.empty(0, dtype=np.int64)


class SparseFile:
    """An in-memory sparse file: written extents over an all-zero backdrop.

    Invariant: ``_starts``/``_ends`` are sorted, pairwise disjoint and
    non-adjacent (writes merge touching extents), i.e. exactly a normalized
    :class:`RangeSet`; ``_chunks[i]`` holds the bytes of extent ``i``.
    """

    def __init__(self, size: int = 0) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._starts: np.ndarray = _EMPTY
        self._ends: np.ndarray = _EMPTY
        self._chunks: list[bytes] = []

    # -- size accounting -------------------------------------------------------

    @property
    def logical_size(self) -> int:
        """The file size as seen by ``stat()`` (includes holes)."""
        return self._size

    @property
    def materialized_size(self) -> int:
        """Bytes actually stored (written extents only)."""
        return int((self._ends - self._starts).sum())

    def extents(self) -> RangeSet:
        """The written (non-hole) extents."""
        return RangeSet.from_arrays(self._starts, self._ends)

    def truncate(self, size: int) -> None:
        """Grow or shrink the logical size, dropping extents past the end."""
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        keep = int(np.searchsorted(self._starts, size, side="left"))
        if keep < len(self._chunks):
            self._starts = self._starts[:keep]
            self._ends = self._ends[:keep]
            del self._chunks[keep:]
        if self._chunks and self._ends[-1] > size:
            start = int(self._starts[-1])
            self._chunks[-1] = self._chunks[-1][: size - start]
            self._ends = self._ends.copy()
            self._ends[-1] = size

    # -- I/O ---------------------------------------------------------------------

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, extending the logical size if needed."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if not data:
            return
        end = offset + len(data)
        self._size = max(self._size, end)
        # Overlapping/adjacent extents: the first whose end reaches offset
        # through the last whose start does not pass end.
        lo = int(np.searchsorted(self._ends, offset, side="left"))
        hi = int(np.searchsorted(self._starts, end, side="right"))
        if lo == hi:
            self._starts = np.insert(self._starts, lo, offset)
            self._ends = np.insert(self._ends, lo, end)
            self._chunks.insert(lo, bytes(data))
            return
        new_start = min(offset, int(self._starts[lo]))
        new_end = max(end, int(self._ends[hi - 1]))
        buf = bytearray(new_end - new_start)
        for s, c in zip(self._starts[lo:hi].tolist(), self._chunks[lo:hi]):
            buf[s - new_start : s - new_start + len(c)] = c
        buf[offset - new_start : offset - new_start + len(data)] = data
        self._starts = np.concatenate(
            (self._starts[:lo], [new_start], self._starts[hi:])
        )
        self._ends = np.concatenate(
            (self._ends[:lo], [new_end], self._ends[hi:])
        )
        self._chunks[lo:hi] = [bytes(buf)]

    def write_batch(self, offsets, blobs: list[bytes]) -> None:
        """Apply many small writes in one vectorized bookkeeping pass.

        Equivalent to ``for o, b in zip(offsets, blobs): self.write(o, b)``
        (in order, later writes win on overlap).  The fast path covers
        writes that each land inside one already-written extent - the
        compactor's per-element header-flag patches - mapping every write
        to its containing chunk with one ``searchsorted`` and re-slicing
        each affected chunk exactly once, the same way ``zero_ranges``
        batches payload holes.  Batches that extend the file or bridge
        extents fall back to sequential :meth:`write` calls.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size != len(blobs):
            raise ValueError("write_batch needs one offset per blob")
        if not blobs:
            return
        if offsets.size and int(offsets.min()) < 0:
            raise ValueError("offset must be non-negative")
        lengths = np.fromiter(
            (len(b) for b in blobs), dtype=np.int64, count=len(blobs)
        )
        ends = offsets + lengths
        n = len(self._chunks)
        if n:
            # Containing extent: the first whose end reaches past the
            # write's start must also start at-or-before it and cover the
            # write's end.
            pos = np.searchsorted(self._ends, offsets, side="right")
            pos_c = np.minimum(pos, n - 1)
            inside = (
                (pos < n)
                & (self._starts[pos_c] <= offsets)
                & (self._ends[pos_c] >= ends)
            )
        else:
            inside = np.zeros(offsets.size, dtype=bool)
        if not inside.all():
            for offset, blob in zip(offsets.tolist(), blobs):
                self.write(offset, blob)
            return
        order = np.argsort(pos_c, kind="stable")
        row = 0
        while row < order.size:
            chunk_i = int(pos_c[order[row]])
            start = int(self._starts[chunk_i])
            buf = bytearray(self._chunks[chunk_i])
            while row < order.size and int(pos_c[order[row]]) == chunk_i:
                write = int(order[row])
                at = int(offsets[write]) - start
                buf[at : at + len(blobs[write])] = blobs[write]
                row += 1
            self._chunks[chunk_i] = bytes(buf)

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset``; holes read back as zeros."""
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        if offset + size > self._size:
            raise ValueError(
                f"read past end of file: [{offset}, {offset + size}) > {self._size}"
            )
        out = bytearray(size)
        end = offset + size
        lo = int(np.searchsorted(self._ends, offset, side="right"))
        hi = int(np.searchsorted(self._starts, end, side="left"))
        for s, c in zip(self._starts[lo:hi].tolist(), self._chunks[lo:hi]):
            c_end = s + len(c)
            a = max(s, offset)
            b = min(c_end, end)
            if a < b:
                out[a - offset : b - offset] = c[a - s : b - s]
        return bytes(out)

    def zero(self, offset: int, size: int) -> None:
        """Punch a hole: bytes in ``[offset, offset+size)`` read back as zero."""
        if size <= 0:
            return
        start = max(offset, 0)  # clamp like the end: out-of-file is a no-op
        end = min(offset + size, self._size)
        if start >= end:
            return
        self._punch(
            np.asarray([start], dtype=np.int64),
            np.asarray([end], dtype=np.int64),
        )

    def zero_ranges(self, ranges: RangeSet) -> None:
        """Punch every range in one batched pass (vectorized bookkeeping)."""
        if not ranges or not self._chunks:
            return
        starts = np.minimum(ranges.starts, self._size)
        stops = np.minimum(ranges.stops, self._size)
        keep = stops > starts
        if not keep.all():
            starts, stops = starts[keep], stops[keep]
        if starts.size:
            self._punch(starts, stops)

    def _punch(self, r_starts: np.ndarray, r_stops: np.ndarray) -> None:
        """Remove normalized ``[r_starts, r_stops)`` ranges from the extents.

        Extent bookkeeping is pure :class:`RangeSet` array algebra; only the
        surviving sub-extents of *affected* chunks are re-sliced, untouched
        chunk payloads keep their identity.
        """
        if not self._chunks:
            return
        # A chunk is affected iff some range starts before its end and the
        # furthest-reaching such range stops past its start (ranges are
        # sorted and disjoint, so stops are sorted too).
        n_before = np.searchsorted(r_starts, self._ends, side="left")
        affected = (n_before > 0) & (
            r_stops[np.maximum(n_before - 1, 0)] > self._starts
        )
        if not affected.any():
            return
        aff = np.flatnonzero(affected)
        survivors = RangeSet.from_arrays(
            self._starts[aff], self._ends[aff]
        ) - RangeSet.from_arrays(r_starts, r_stops)
        keep_starts = np.asarray(survivors.starts)
        keep_stops = np.asarray(survivors.stops)
        # Each surviving extent lies inside exactly one affected chunk
        # (difference never bridges disjoint extents).
        src = aff[
            np.searchsorted(self._starts[aff], keep_starts, side="right") - 1
        ]
        pieces = [
            self._chunks[j][s - int(self._starts[j]) : e - int(self._starts[j])]
            for s, e, j in zip(
                keep_starts.tolist(), keep_stops.tolist(), src.tolist()
            )
        ]
        una = np.flatnonzero(~affected)
        all_starts = np.concatenate((self._starts[una], keep_starts))
        all_ends = np.concatenate((self._ends[una], keep_stops))
        order = np.argsort(all_starts, kind="stable")
        chunks = [self._chunks[j] for j in una.tolist()] + pieces
        self._starts = all_starts[order]
        self._ends = all_ends[order]
        self._chunks = [chunks[i] for i in order.tolist()]

    # -- conversions ----------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Fully materialize the file (use only at small scales/tests)."""
        return self.read(0, self._size)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SparseFile":
        f = cls(len(data))
        f.write(0, data)
        return f

    def dump(self, fileobj: io.BufferedIOBase) -> None:
        """Write the file to a real (sparse-friendly) file object."""
        fileobj.truncate(self._size)
        for s, c in zip(self._starts.tolist(), self._chunks):
            fileobj.seek(s)
            fileobj.write(c)

    def copy(self) -> "SparseFile":
        dup = SparseFile(self._size)
        dup._starts = self._starts.copy()
        dup._ends = self._ends.copy()
        dup._chunks = list(self._chunks)
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseFile):
            return NotImplemented
        if self._size != other._size:
            return False
        return (
            np.array_equal(self._starts, other._starts)
            and self._chunks == other._chunks
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseFile(logical={self._size}, materialized={self.materialized_size},"
            f" extents={len(self._chunks)})"
        )

"""Retry with exponential backoff, deterministic jitter, and deadlines.

The serving tier treats :class:`~repro.errors.TransientError` (which
includes every injected :class:`~repro.errors.FaultError`) and OS-level
errors as retryable; usage errors, verification failures, and other typed
request problems are permanent and surface immediately.

Jitter is deterministic: the per-attempt backoff is perturbed by a draw
from an :class:`~repro.utils.rng.RngStream` seeded on ``(token, attempt)``
- so two runs of the same arrival sequence under the same
:class:`~repro.testing.faults.FaultPlan` retry on an identical schedule,
while distinct workloads still decorrelate (no thundering herd of
synchronized retries).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError, TransientError
from repro.utils.rng import RngStream

#: Exception types retried by default (plus whatever a caller adds).
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (TransientError, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, how spaced, and for how long to retry.

    * ``max_attempts`` - total tries including the first (1 = no retry);
    * ``base_backoff_s`` / ``backoff_multiplier`` / ``max_backoff_s`` -
      exponential backoff schedule between attempts;
    * ``jitter`` - fraction of the backoff randomized around the nominal
      value (``0.5`` means +-25%), drawn deterministically per
      ``(token, attempt)``;
    * ``attempt_timeout_s`` - a failing attempt that ran longer than this
      is not retried (the failure was not "fast-transient");
    * ``deadline_s`` - overall wall budget across all attempts and
      backoffs; exceeded = no further attempts.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.02
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.5
    attempt_timeout_s: float | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigurationError("jitter must be in [0, 1]")
        for name in ("attempt_timeout_s", "deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def backoff_s(self, attempt: int, token: object = "") -> float:
        """Sleep before attempt ``attempt + 1`` (deterministic jitter).

        ``attempt`` is 1-based (the attempt that just failed).  The jitter
        draw is a pure function of ``(token, attempt)``, independent of
        call order.
        """
        nominal = min(
            self.base_backoff_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        if not self.jitter or not nominal:
            return nominal
        u = float(RngStream("retry-jitter", token, attempt).uniform())
        return nominal * (1.0 + self.jitter * (u - 0.5))

    def call(
        self,
        fn: Callable[[], object],
        token: object = "",
        retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ):
        """Run ``fn`` under this policy; returns its value or re-raises.

        Non-retryable exceptions propagate immediately.  Retryable ones
        re-raise once the attempt budget, the per-attempt timeout rule, or
        the overall deadline is exhausted - callers wrap that into their
        own typed error (e.g. :class:`~repro.errors.AdmissionError`).
        ``on_retry(attempt, exc)`` observes each scheduled retry.
        """
        start = clock()
        attempt = 0
        while True:
            attempt += 1
            attempt_start = clock()
            try:
                return fn()
            except retryable as exc:
                now = clock()
                if attempt >= self.max_attempts:
                    raise
                if (
                    self.attempt_timeout_s is not None
                    and now - attempt_start > self.attempt_timeout_s
                ):
                    raise
                pause = self.backoff_s(attempt, token)
                if (
                    self.deadline_s is not None
                    and now - start + pause > self.deadline_s
                ):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                if pause:
                    sleep(pause)

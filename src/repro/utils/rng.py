"""Deterministic, name-addressed random streams.

Every generated artifact (library layouts, function sizes, kernel variants)
must be reproducible from a textual identity so that two runs of an
experiment - or a test and the code under test - see byte-identical
libraries.  :func:`stable_seed` hashes a sequence of tokens with BLAKE2 into a
64-bit seed; :class:`RngStream` wraps :class:`numpy.random.Generator` with a
few distribution helpers used by the generators (Zipf-like heavy tails for
code-object sizes, biased subset selection for "used" sets).
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

import numpy as np


def stable_seed(*tokens: object) -> int:
    """Derive a stable 64-bit seed from a sequence of tokens.

    Tokens are stringified and joined with an unambiguous separator, so
    ``stable_seed("a", "bc")`` differs from ``stable_seed("ab", "c")``.
    """
    joined = "\x1f".join(str(t) for t in tokens)
    digest = hashlib.blake2b(joined.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngStream:
    """A named deterministic RNG stream.

    Parameters
    ----------
    tokens:
        Identity tokens; the stream is a pure function of these.
    """

    def __init__(self, *tokens: object) -> None:
        self.seed = stable_seed(*tokens)
        self._gen = np.random.Generator(np.random.PCG64(self.seed))

    def child(self, *tokens: object) -> "RngStream":
        """Derive an independent sub-stream (identity = parent ++ tokens)."""
        return RngStream(self.seed, *tokens)

    # -- thin passthroughs ---------------------------------------------------

    @property
    def gen(self) -> np.random.Generator:
        return self._gen

    def integers(self, low: int, high: int, size: int | None = None):
        return self._gen.integers(low, high, size=size)

    def uniform(self, low: float = 0.0, high: float = 1.0, size: int | None = None):
        return self._gen.uniform(low, high, size=size)

    def choice(self, seq, size: int | None = None, replace: bool = True, p=None):
        return self._gen.choice(seq, size=size, replace=replace, p=p)

    def shuffle(self, array) -> None:
        self._gen.shuffle(array)

    # -- distribution helpers ------------------------------------------------

    def heavy_tail_sizes(self, count: int, total: int, alpha: float = 1.1,
                         min_size: int = 1,
                         weights: np.ndarray | None = None) -> np.ndarray:
        """Partition ``total`` into ``count`` heavy-tailed integer sizes.

        Code-object sizes (functions, cubins) follow Zipf-like laws: a few
        template-instantiation giants and many tiny helpers.  We draw Pareto
        weights and rescale them so the sizes sum exactly to ``total``.
        Optional ``weights`` bias the expected size per slot (used to make
        hot code larger than cold template instantiations, matching the
        paper's function-count vs code-size reduction gap).
        """
        if count <= 0:
            return np.zeros(0, dtype=np.int64)
        if total < count * min_size:
            raise ValueError(
                f"cannot split {total} bytes into {count} parts of >= {min_size}"
            )
        draw = self._gen.pareto(alpha, size=count) + 1.0
        if weights is not None:
            draw = draw * np.asarray(weights, dtype=np.float64)
        raw = draw / draw.sum() * (total - count * min_size)
        sizes = np.floor(raw).astype(np.int64) + min_size
        # Distribute the rounding remainder over the largest entries so the
        # sum is exact and the tail shape is preserved.
        deficit = int(total - sizes.sum())
        if deficit > 0:
            order = np.argsort(sizes)[::-1]
            sizes[order[:deficit]] += 1
        return sizes

    def subset_mask(self, count: int, fraction: float,
                    weights: np.ndarray | None = None) -> np.ndarray:
        """Boolean mask selecting ``round(fraction*count)`` items.

        With ``weights`` the selection is biased (used for "hot" code being
        concentrated in large cubins).  Always returns at least one selected
        item when ``fraction > 0`` and ``count > 0``.
        """
        if count == 0:
            return np.zeros(0, dtype=bool)
        k = int(round(fraction * count))
        if fraction > 0:
            k = max(k, 1)
        k = min(k, count)
        mask = np.zeros(count, dtype=bool)
        if k == 0:
            return mask
        if weights is None:
            idx = self._gen.choice(count, size=k, replace=False)
        else:
            w = np.asarray(weights, dtype=np.float64)
            w = np.clip(w, 1e-12, None)
            idx = self._gen.choice(count, size=k, replace=False, p=w / w.sum())
        mask[idx] = True
        return mask

    def lognormal_int(self, mean: float, sigma: float, size: int | None = None,
                      low: int = 1):
        """Integer lognormal draws clipped below at ``low``."""
        draws = self._gen.lognormal(mean, sigma, size=size)
        arr = np.maximum(np.asarray(draws, dtype=np.float64), low)
        if size is None:
            return int(arr)
        return arr.astype(np.int64)

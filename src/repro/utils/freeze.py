"""Canonical freezing of config objects into hashable identity tuples.

Cache keys all over the pipeline (the in-process pipeline cache, the
generation cache, and the disk-cache digests) need a *deterministic*
hashable form of arbitrary config values - dataclasses, dicts, sets,
scalars.  ``repr()`` is not enough: set/frozenset iteration order depends on
the per-process string-hash salt, so any identity that stringifies a set
directly is not stable across processes.  :func:`freeze` recurses
structurally and sorts unordered containers, so equal values always freeze
to equal tuples, in every process.
"""

from __future__ import annotations

import dataclasses


def freeze(value) -> object:
    """Recursively convert a value into a hashable, canonical component.

    Dataclasses become ``(field_name, frozen_value)`` tuples in field order;
    dicts and sets are sorted; sequences become tuples; scalars pass
    through; anything else falls back to ``repr`` (fine for enums and other
    objects with deterministic reprs).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return tuple(
            (f.name, freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, dict):
        return tuple(sorted((k, freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(freeze(v) for v in value))
    if isinstance(value, (str, int, float, bool, bytes)) or value is None:
        return value
    return repr(value)

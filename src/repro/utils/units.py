"""Size/count formatting helpers matching the paper's table conventions.

The paper reports sizes in MB (1 MB = 10^6 bytes is *not* used; the tables
are consistent with MiB-free decimal interpretation, but what matters for the
reproduction is internal consistency, so we standardize on 1 MB = 2^20 bytes)
and counts in "K" (1 K = 1,000).
"""

from __future__ import annotations

MB = 1 << 20
KB = 1 << 10
GB = 1 << 30


def mb(n_mib: float) -> int:
    """Convert megabytes to bytes (1 MB = 2**20 bytes)."""
    return int(n_mib * MB)


def fmt_mb(n_bytes: float, digits: int = 0) -> str:
    """Format a byte count as megabytes, e.g. ``fmt_mb(881*MB) == '881'``."""
    value = n_bytes / MB
    if digits == 0:
        return f"{value:,.0f}"
    return f"{value:,.{digits}f}"


def fmt_bytes(n_bytes: float) -> str:
    """Human-readable byte count with an adaptive unit suffix."""
    n = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(n)} B"
            return f"{n:.1f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_count(n: int) -> str:
    """Format a count the way the paper does: ``616K`` style above 10k."""
    if n >= 10_000:
        return f"{round(n / 1000):,}K"
    return f"{n:,}"


def pct_reduction(before: float, after: float) -> float:
    """Percentage reduction from ``before`` to ``after`` (0 when before==0)."""
    if before <= 0:
        return 0.0
    return 100.0 * (before - after) / before


def fmt_pct(value: float, digits: int = 0) -> str:
    """Format a percentage with the given number of decimal digits."""
    return f"{value:.{digits}f}"


def fmt_value_with_reduction(before: float, after: float, *, as_mb: bool = False,
                             as_count: bool = False, digits: int = 0) -> str:
    """Render the paper's ``<original> (<reduction%>)`` cell format."""
    red = pct_reduction(before, after)
    if as_mb:
        base = fmt_mb(before)
    elif as_count:
        base = fmt_count(int(before))
    else:
        base = f"{before:,.0f}"
    return f"{base} ({fmt_pct(red, digits)})"

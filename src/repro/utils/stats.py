"""Distribution summaries used by the figure reproductions.

Figure 5 of the paper shows violin plots of per-library reduction
percentages; Figure 6 shows a Pareto chart.  We cannot render plots in this
environment, so the experiment harness prints the *data series* a plotting
script would consume: five-number summaries + kernel-density-ready samples
for the violins, and sorted cumulative contributions for the Pareto chart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FiveNumberSummary:
    """Min / Q1 / median / Q3 / max plus mean, for a sample of values."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_values(cls, values) -> "FiveNumberSummary":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
        q1, med, q3 = np.percentile(arr, [25, 50, 75])
        return cls(
            minimum=float(arr.min()),
            q1=float(q1),
            median=float(med),
            q3=float(q3),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
            count=int(arr.size),
        )

    def row(self) -> list[str]:
        return [
            f"{self.minimum:.1f}",
            f"{self.q1:.1f}",
            f"{self.median:.1f}",
            f"{self.q3:.1f}",
            f"{self.maximum:.1f}",
            f"{self.mean:.1f}",
            str(self.count),
        ]


def histogram(values, bins: int = 10, lo: float = 0.0, hi: float = 100.0):
    """Fixed-range histogram returning (edges, counts)."""
    arr = np.asarray(list(values), dtype=np.float64)
    counts, edges = np.histogram(arr, bins=bins, range=(lo, hi))
    return edges, counts


def ascii_violin(values, width: int = 40, bins: int = 12,
                 lo: float = 0.0, hi: float = 100.0) -> list[str]:
    """Render a sideways ASCII density sketch of a sample (stand-in violin)."""
    edges, counts = histogram(values, bins=bins, lo=lo, hi=hi)
    peak = counts.max() if counts.size and counts.max() > 0 else 1
    lines = []
    for i in range(bins - 1, -1, -1):
        bar = "#" * int(round(width * counts[i] / peak))
        lines.append(f"{edges[i]:5.0f}-{edges[i + 1]:3.0f}% |{bar}")
    return lines


def pareto_series(values) -> tuple[np.ndarray, np.ndarray]:
    """Sorted-descending values and their cumulative percentage share."""
    arr = np.asarray(list(values), dtype=np.float64)
    order = np.argsort(arr)[::-1]
    sorted_vals = arr[order]
    total = sorted_vals.sum()
    if total <= 0:
        cum = np.zeros_like(sorted_vals)
    else:
        cum = np.cumsum(sorted_vals) / total * 100.0
    return sorted_vals, cum


def top_k_share(values, fraction: float = 0.1) -> float:
    """Share (%) of the total contributed by the top ``fraction`` of items."""
    sorted_vals, cum = pareto_series(values)
    if sorted_vals.size == 0:
        return 0.0
    k = max(1, int(round(fraction * sorted_vals.size)))
    return float(cum[k - 1])


def items_for_share(values, share_pct: float = 90.0) -> int:
    """Smallest number of items whose cumulative share reaches ``share_pct``."""
    _, cum = pareto_series(values)
    if cum.size == 0:
        return 0
    idx = int(np.searchsorted(cum, share_pct))
    return min(idx + 1, cum.size)


def jaccard(a, b) -> float:
    """Jaccard similarity of two iterables (paper Eq. 1)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    if union == 0:
        return 1.0
    return len(sa & sb) / union

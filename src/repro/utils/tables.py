"""Plain-text table rendering for experiment output.

Every experiment prints the same rows the paper's tables report; this module
renders them as aligned monospace tables (GitHub-markdown-compatible when
``markdown=True``) so `EXPERIMENTS.md` can embed them directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class Table:
    """A simple column-aligned text table."""

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self, markdown: bool = False) -> str:
        widths = self._widths()
        lines: list[str] = []
        if self.title and not markdown:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        if self.title and markdown:
            lines.append(f"**{self.title}**")
            lines.append("")

        def fmt(row: Sequence[str]) -> str:
            cells = [c.ljust(w) for c, w in zip(row, widths)]
            if markdown:
                return "| " + " | ".join(cells) + " |"
            return "  ".join(cells).rstrip()

        lines.append(fmt(self.headers))
        if markdown:
            lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        else:
            lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(fmt(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def kv_block(title: str, pairs: Sequence[tuple[str, object]]) -> str:
    """Render a titled key/value block (used for experiment summaries)."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title, "-" * len(title)]
    for key, value in pairs:
        lines.append(f"{key.ljust(width)} : {value}")
    return "\n".join(lines)

"""Run metrics: what Table 5/7 report per workload execution."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RunMetrics:
    """Deterministic observables of one workload run."""

    workload_id: str
    execution_time_s: float
    peak_cpu_mem_bytes: int
    peak_gpu_mem_bytes: int
    #: Digest of the workload's numeric output (losses / generated text);
    #: identical before/after debloating iff correctness is preserved.
    output_digest: str
    #: Ground-truth entry kernels resolved per library (what the detector
    #: must rediscover through its CUPTI hook).
    used_kernels: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Ground-truth executed function indices per library.
    used_functions: dict[str, np.ndarray] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def peak_cpu_mem_mb(self) -> float:
        return self.peak_cpu_mem_bytes / (1 << 20)

    @property
    def peak_gpu_mem_mb(self) -> float:
        return self.peak_gpu_mem_bytes / (1 << 20)

    def total_used_kernels(self) -> int:
        return sum(len(v) for v in self.used_kernels.values())

    def total_used_functions(self) -> int:
        return sum(len(v) for v in self.used_functions.values())

"""Workload runner: executes a Table-1 workload end to end.

The run is phase-exact where it matters for detection (the first iteration
resolves every kernel through ``cuModuleGetFunction`` individually) and
batched where it does not (remaining iterations re-launch the resolved
kernels with a count, so million-launch training runs cost a few thousand
Python calls while the virtual clock and CUPTI subscribers see every
launch).  Peak memory, execution time, usage sets, and the output digest are
all deterministic functions of (workload spec, framework build, cost model).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.cuda.costs import DEFAULT_COSTS, CostModel
from repro.cuda.cupti import CuptiSubscriber
from repro.elf.image import SharedLibrary
from repro.frameworks.ops import OpInstance, Phase
from repro.frameworks.runtime import FrameworkRuntime
from repro.frameworks.spec import Framework
from repro.loader.profiler import FunctionProfiler
from repro.utils.rng import RngStream
from repro.utils.units import MB
from repro.workloads.metrics import RunMetrics
from repro.workloads.spec import WorkloadSpec


@dataclass
class WorkloadRunner:
    """Runs one workload against one framework build."""

    spec: WorkloadSpec
    framework: Framework
    costs: CostModel = DEFAULT_COSTS
    #: Debloated replacements by soname (paper §4.4 replacement flow).
    overrides: dict[str, SharedLibrary] | None = None
    #: CUPTI tools attached for this run (kernel detector, NSys tracer).
    subscribers: tuple[CuptiSubscriber, ...] = ()
    #: CPU-function profiler (Negativa's CPU detection phase).
    profiler: FunctionProfiler | None = None
    runtime: FrameworkRuntime = field(init=False)

    def run(self) -> RunMetrics:
        spec = self.spec
        rt = FrameworkRuntime(
            framework=self.framework,
            devices=spec.devices(),
            loading_mode=spec.loading_mode,
            costs=self.costs,
        )
        self.runtime = rt
        for sub in self.subscribers:
            for driver in rt.drivers:
                driver.cupti.subscribe(sub)
        if self.profiler is not None:
            rt.process.attach_profiler(self.profiler)

        rt.boot(spec.features, overrides=self.overrides)
        self._load_dataset(rt)
        self._init_model(rt)
        rt.process.mark_steady_state()
        self._iterate(rt)

        peaks_gpu = rt.peak_device_bytes()
        counters: dict[str, int] = {
            "launches": sum(d.counters.launches for d in rt.drivers),
            "get_function_calls": sum(
                d.counters.get_function_calls for d in rt.drivers
            ),
            "unique_kernels": sum(d.counters.unique_kernels for d in rt.drivers),
            "elements_loaded": sum(d.counters.elements_loaded for d in rt.drivers),
            "modules_loaded": sum(d.counters.modules_loaded for d in rt.drivers),
            "n_libraries": len(rt.process.libraries),
        }
        return RunMetrics(
            workload_id=spec.workload_id,
            execution_time_s=rt.clock.now,
            peak_cpu_mem_bytes=rt.peak_host_bytes(),
            peak_gpu_mem_bytes=peaks_gpu,
            output_digest=self._output_digest(),
            used_kernels={
                soname: frozenset(names)
                for soname, names in rt.used_kernels.items()
            },
            used_functions=rt.used_function_indices(),
            counters=counters,
        )

    # -- phases ----------------------------------------------------------------------

    def _load_dataset(self, rt: FrameworkRuntime) -> None:
        ds = self.spec.dataset
        nbytes = ds.host_bytes if self.spec.is_training else (
            ds.host_bytes_test or ds.host_bytes
        )
        rt.clock.advance(nbytes / self.costs.disk_bandwidth)
        rt.process.host_memory.allocate("dataset", nbytes)

    def _init_model(self, rt: FrameworkRuntime) -> None:
        spec = self.spec
        model = spec.model
        weights_bytes = model.params * model.weights_dtype_bytes
        rt.clock.advance(weights_bytes / self.costs.weights_bandwidth)
        # Large checkpoints stream through mmap'd safetensors: roughly half
        # the file stays page-cache resident while shards move to the GPU.
        staging = weights_bytes if model.weights_dtype_bytes > 2 else (
            weights_bytes // 2
        )
        rt.process.host_memory.allocate("weights_host", staging)
        shard = weights_bytes // rt.world_size
        for rank in range(rt.world_size):
            rt.copy_weights(rank, shard)

        if spec.is_training:
            grad_bytes = model.params * 4 // rt.world_size
            state_mult = 2 if model.optimizer == "adam" else 1
            for rank in range(rt.world_size):
                rt.alloc_tensor(rank, "gradients", grad_bytes)
                if model.optimizer:
                    rt.alloc_tensor(rank, "optimizer_state",
                                    state_mult * grad_bytes)

        act = model.activation_bytes(spec.batch_size, spec.is_training)
        for rank in range(rt.world_size):
            rt.alloc_tensor(rank, "activations", act)
            if model.workspace_mb:
                rt.alloc_tensor(rank, "workspace", int(model.workspace_mb * MB))
            if model.kv_bytes_per_token and rt.framework.spec.memory.kind != (
                "utilization_target"
            ):
                kv = (
                    model.kv_bytes_per_token
                    * (model.gen_tokens + spec.dataset.tokens_per_sample)
                    * spec.batch_size
                    // rt.world_size
                )
                rt.alloc_tensor(rank, "kv_cache", kv)
        # vLLM-style KV pool fills whatever remains below the target.
        rt.fill_device_pool()

    def _executed_ops(self) -> list[tuple[OpInstance, Phase]]:
        spec = self.spec
        out: list[tuple[OpInstance, Phase]] = [
            (op, Phase.FORWARD) for op in spec.model.ops
        ]
        if spec.is_training:
            out.extend((op, Phase.BACKWARD) for op in spec.model.ops)
            for op in spec.model.train_ops:
                phase = (
                    Phase.OPTIMIZER
                    if op.kind.value == "optimizer"
                    else Phase.FORWARD
                )
                out.append((op, phase))
        return out

    def _batch_times(self) -> tuple[float, float]:
        """(gpu_seconds, cpu_seconds) per iteration."""
        spec = self.spec
        model = spec.model
        device = spec.devices()[0]
        eff = self.framework.spec.gpu_efficiency * model.efficiency_mult
        if model.gen_tokens and not spec.is_training:
            flops = model.decode_flops_per_token() * spec.batch_size
        else:
            flops = model.flops_per_sample(spec.dataset) * spec.batch_size
            if spec.is_training:
                flops *= 3.0  # forward + backward(2x)
        gpu = flops / (device.fp32_tflops * 1e12 * eff) / spec.world_size
        cpu = gpu * self.framework.spec.cpu_tax_fraction
        return gpu, cpu

    def _iterate(self, rt: FrameworkRuntime) -> None:
        spec = self.spec
        executed = self._executed_ops()
        gpu_s, cpu_s = self._batch_times()
        total_weight = sum(op.weight for op, _ in executed) or 1.0
        n_batches = spec.n_batches()

        # LLM inference: a prefill pass over the prompt precedes decoding and
        # resolves the large-batch-bucket kernel variants.
        if spec.model.gen_tokens and not spec.is_training:
            prefill_bucket = max(spec.dataset.tokens_per_sample, 2)
            for op, phase in executed:
                share = op.weight / total_weight
                rt.run_op(op, phase, prefill_bucket,
                          count=1, gpu_seconds=gpu_s * share,
                          cpu_seconds=cpu_s * share)

        for count in (1, n_batches - 1):
            if count <= 0:
                continue
            for op, phase in executed:
                share = op.weight / total_weight
                rt.run_op(
                    op,
                    phase,
                    spec.batch_size,
                    count=count,
                    gpu_seconds=gpu_s * share * count,
                    cpu_seconds=cpu_s * share * count,
                )

    def _output_digest(self) -> str:
        """Deterministic stand-in for the workload's numeric output.

        Depends only on (model, dataset, batch, epochs) - i.e. on the
        computation - never on library bloat, so original and (correctly)
        debloated runs produce identical digests.  An incorrect debloat never
        reaches this point: it raises MissingKernelError/MissingFunctionError
        during execution.
        """
        spec = self.spec
        rng = RngStream(
            "output", spec.workload_id, spec.dataset.name, spec.batch_size,
            spec.epochs, spec.model.params,
        )
        trajectory = rng.uniform(0, 1, size=16)
        payload = ",".join(f"{x:.9f}" for x in trajectory)
        return hashlib.blake2b(
            payload.encode("ascii"), digest_size=16
        ).hexdigest()

"""Model op graphs: MobileNetV2, Transformer (base), Llama-2-7B, and the
nine Open-LLM-Leaderboard models of paper Table 10.

Graphs are built at operator granularity with *shape signatures* that follow
real kernel-selection behaviour: MobileNetV2's blocks have distinct
channel/resolution signatures (many unique kernels), while Transformer/Llama
layers repeat identical shapes (few unique kernels, reused across layers).
Those signatures - not any hand-picked usage lists - determine which kernel
variants each workload exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frameworks.ops import OpInstance, OpKind
from repro.utils.units import MB
from repro.workloads.datasets import DatasetSpec


@dataclass(frozen=True)
class ModelSpec:
    """A model as the workload runner consumes it."""

    name: str
    display_name: str
    params: int
    ops: tuple[OpInstance, ...]
    #: Extra ops only executed when training (loss + optimizer).
    train_ops: tuple[OpInstance, ...] = ()
    features: frozenset[str] = frozenset()
    #: Fixed forward FLOPs per sample (vision models); sequence models use
    #: ``2 * params * tokens`` instead.
    fixed_flops_per_sample: float = 0.0
    #: Multiplier on the framework's GPU efficiency (small convs run far
    #: below peak; large GEMMs with tensor cores can exceed fp32 peak).
    efficiency_mult: float = 1.0
    weights_dtype_bytes: int = 4
    optimizer: str | None = "sgd"  # sgd (momentum) | adam | None
    activation_mb_per_sample_train: float = 8.0
    activation_mb_per_sample_infer: float = 4.0
    #: Device workspace demanded by kernel libraries (cuDNN autotuning etc.).
    workspace_mb: float = 0.0
    #: KV-cache bytes per generated token (autoregressive models).
    kv_bytes_per_token: int = 0
    #: Tokens generated per request for LLM inference workloads.
    gen_tokens: int = 0

    def flops_per_sample(self, dataset: DatasetSpec) -> float:
        if self.fixed_flops_per_sample > 0:
            return self.fixed_flops_per_sample
        tokens = max(1, dataset.tokens_per_sample)
        return 2.0 * self.params * tokens

    def decode_flops_per_token(self) -> float:
        return 2.0 * self.params

    def activation_bytes(self, batch_size: int, training: bool) -> int:
        per = (
            self.activation_mb_per_sample_train
            if training
            else self.activation_mb_per_sample_infer
        )
        return int(per * MB * batch_size)


# ---------------------------------------------------------------------------
# MobileNetV2 (Sandler et al., 2018) - 4.3M parameters
# ---------------------------------------------------------------------------

# (expansion t, output channels c, repeats n, stride s) - the paper's Table 2.
_MBV2_BLOCKS = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def mobilenet_v2() -> ModelSpec:
    """Build the MobileNetV2 op graph with per-stage shape signatures."""
    ops: list[OpInstance] = []

    def conv(cin: int, cout: int, k: int, stride: int, res: int,
             weight: float = 1.0) -> None:
        sig = f"ci{cin}_co{cout}_k{k}_s{stride}_r{res}"
        ops.append(OpInstance(OpKind.CONV2D, sig, weight=weight))

    def dwconv(c: int, stride: int, res: int) -> None:
        ops.append(OpInstance(OpKind.DEPTHWISE_CONV, f"c{c}_k3_s{stride}_r{res}"))

    def bn(c: int, res: int) -> None:
        ops.append(OpInstance(OpKind.BATCHNORM, f"c{c}_r{res}", weight=0.1))

    def relu6(c: int, res: int) -> None:
        ops.append(OpInstance(OpKind.ACTIVATION, f"relu6_c{c}_r{res}", weight=0.05))

    res = 112
    conv(3, 32, 3, 2, 224, weight=1.5)
    bn(32, res)
    relu6(32, res)
    cin = 32
    for t, c, n, s in _MBV2_BLOCKS:
        for i in range(n):
            stride = s if i == 0 else 1
            hidden = cin * t
            if t != 1:
                conv(cin, hidden, 1, 1, res)
                bn(hidden, res)
                relu6(hidden, res)
            out_res = res // stride
            dwconv(hidden, stride, res)
            bn(hidden, out_res)
            relu6(hidden, out_res)
            conv(hidden, c, 1, 1, out_res, weight=0.8)
            bn(c, out_res)
            if stride == 1 and cin == c:
                ops.append(
                    OpInstance(OpKind.ELEMENTWISE, f"add_c{c}_r{out_res}",
                               weight=0.05)
                )
            cin = c
            res = out_res
    conv(cin, 1280, 1, 1, res, weight=1.2)
    bn(1280, res)
    relu6(1280, res)
    ops.append(OpInstance(OpKind.POOL, f"avg_c1280_r{res}", weight=0.1))
    ops.append(OpInstance(OpKind.GEMM, "fc_1280x10", weight=0.3))

    train_ops = (
        OpInstance(OpKind.LOSS, "xent_10", weight=0.05),
        OpInstance(OpKind.OPTIMIZER, "sgd_momentum", weight=0.1),
    )
    return ModelSpec(
        name="mobilenetv2",
        display_name="MobileNetV2",
        params=4_300_000,
        ops=tuple(ops),
        train_ops=train_ops,
        features=frozenset({"vision", "conv"}),
        fixed_flops_per_sample=0.3e9,
        efficiency_mult=1.0,
        optimizer="sgd",
        activation_mb_per_sample_train=37.0,
        activation_mb_per_sample_infer=25.0,
        workspace_mb=64.0,
    )


# ---------------------------------------------------------------------------
# Transformer base (Vaswani et al., 2017) - 65M parameters
# ---------------------------------------------------------------------------


def transformer_base(n_layers: int = 6, d_model: int = 512,
                     d_ff: int = 2048, heads: int = 8) -> ModelSpec:
    """Encoder-decoder Transformer; layer shapes repeat, so kernels are
    shared across layers (few unique kernels - the paper's low kernel
    Jaccard against MobileNetV2 comes from this asymmetry)."""
    ops: list[OpInstance] = []

    def attention_block(tag: str) -> None:
        sig = f"{tag}_d{d_model}_h{heads}"
        ops.append(OpInstance(OpKind.GEMM, f"{sig}_qkv", weight=1.0))
        ops.append(OpInstance(OpKind.ATTENTION, sig, weight=1.0))
        ops.append(OpInstance(OpKind.SOFTMAX, sig, weight=0.2))
        ops.append(OpInstance(OpKind.GEMM, f"{sig}_out", weight=0.6))
        ops.append(OpInstance(OpKind.DROPOUT, sig, weight=0.05))
        ops.append(OpInstance(OpKind.ELEMENTWISE, f"{sig}_residual", weight=0.05))
        ops.append(OpInstance(OpKind.LAYERNORM, sig, weight=0.1))

    def ffn_block(tag: str) -> None:
        sig = f"{tag}_d{d_model}_ff{d_ff}"
        ops.append(OpInstance(OpKind.GEMM, f"{sig}_up", weight=1.2))
        ops.append(OpInstance(OpKind.ACTIVATION, f"{sig}_relu", weight=0.1))
        ops.append(OpInstance(OpKind.GEMM, f"{sig}_down", weight=1.2))
        ops.append(OpInstance(OpKind.ELEMENTWISE, f"{sig}_residual", weight=0.05))
        ops.append(OpInstance(OpKind.LAYERNORM, sig, weight=0.1))

    ops.append(OpInstance(OpKind.EMBEDDING, f"src_d{d_model}", weight=0.2))
    ops.append(OpInstance(OpKind.EMBEDDING, f"tgt_d{d_model}", weight=0.2))
    # Layers repeat identical shapes; emit one layer's ops per distinct role.
    for _ in range(n_layers):
        attention_block("enc_self")
        ffn_block("enc")
    for _ in range(n_layers):
        attention_block("dec_self")
        attention_block("dec_cross")
        ffn_block("dec")
    ops.append(OpInstance(OpKind.GEMM, f"generator_d{d_model}", weight=0.8))
    ops.append(OpInstance(OpKind.SOFTMAX, "generator_vocab", weight=0.2))

    train_ops = (
        OpInstance(OpKind.LOSS, "label_smoothing_xent", weight=0.1),
        OpInstance(OpKind.OPTIMIZER, "adam", weight=0.2),
    )
    return ModelSpec(
        name="transformer",
        display_name="Transformer",
        params=65_000_000,
        ops=tuple(ops),
        train_ops=train_ops,
        features=frozenset({"text"}),
        efficiency_mult=1.7,
        optimizer="adam",
        activation_mb_per_sample_train=58.0,
        activation_mb_per_sample_infer=6.0,
    )


# ---------------------------------------------------------------------------
# Llama-2-7B and leaderboard LLMs (decoder-only)
# ---------------------------------------------------------------------------


def _decoder_llm(
    name: str,
    display_name: str,
    params: int,
    n_layers: int,
    d_model: int,
    heads: int,
    kv_heads: int,
    d_ff: int,
    gen_tokens: int = 64,
) -> ModelSpec:
    ops: list[OpInstance] = []
    sig = f"d{d_model}_h{heads}_kv{kv_heads}"
    ops.append(OpInstance(OpKind.EMBEDDING, f"tok_d{d_model}", weight=0.1))
    # One decoder layer's shapes (repeated identically n_layers times).
    ops.append(OpInstance(OpKind.RMSNORM, f"in_{sig}", weight=0.1))
    ops.append(OpInstance(OpKind.GEMM, f"qkv_{sig}", weight=1.0))
    ops.append(OpInstance(OpKind.ROPE, sig, weight=0.1))
    ops.append(OpInstance(OpKind.ATTENTION, sig, weight=1.0))
    ops.append(OpInstance(OpKind.GEMM, f"attn_out_{sig}", weight=0.5))
    ops.append(OpInstance(OpKind.RMSNORM, f"post_{sig}", weight=0.1))
    ops.append(OpInstance(OpKind.GEMM, f"gate_up_{sig}_ff{d_ff}", weight=1.4))
    ops.append(OpInstance(OpKind.ACTIVATION, f"silu_{sig}", weight=0.1))
    ops.append(OpInstance(OpKind.GEMM, f"down_{sig}_ff{d_ff}", weight=1.0))
    ops.append(OpInstance(OpKind.ELEMENTWISE, f"residual_{sig}", weight=0.1))
    ops.append(OpInstance(OpKind.RMSNORM, f"final_{sig}", weight=0.05))
    ops.append(OpInstance(OpKind.GEMM, f"lm_head_d{d_model}", weight=0.6))
    ops.append(OpInstance(OpKind.SAMPLING, "top_p", weight=0.1))

    kv_bytes = 2 * n_layers * kv_heads * (d_model // heads) * 2  # fp16 K+V
    return ModelSpec(
        name=name,
        display_name=display_name,
        params=params,
        ops=tuple(ops),
        features=frozenset({"text", "llm"}),
        efficiency_mult=0.5,
        weights_dtype_bytes=2,
        optimizer=None,
        activation_mb_per_sample_train=120.0,
        activation_mb_per_sample_infer=24.0,
        kv_bytes_per_token=kv_bytes,
        gen_tokens=gen_tokens,
    )


def llama2_7b() -> ModelSpec:
    return _decoder_llm(
        "llama2-7b", "Llama-2-7b-chat-hf", params=6_738_000_000,
        n_layers=32, d_model=4096, heads=32, kv_heads=32, d_ff=11008,
    )


#: The top-9 Open LLM Leaderboard models of paper Table 10 (appendix),
#: parameterized to their published architectures.
LEADERBOARD_LLMS: tuple[ModelSpec, ...] = (
    _decoder_llm("c4ai-command-r-plus", "c4ai command r plus",
                 104_000_000_000, 64, 12288, 96, 8, 33792),
    _decoder_llm("internlm2_5-7b-chat", "internlm2 5 7b chat",
                 7_740_000_000, 32, 4096, 32, 8, 14336),
    _decoder_llm("llama-3-70b-instruct", "llama 3 70b instruct",
                 70_600_000_000, 80, 8192, 64, 8, 28672),
    _decoder_llm("mixtral-8x22b-instruct", "mixtral 8x22b instruct",
                 141_000_000_000, 56, 6144, 48, 8, 16384),
    _decoder_llm("phi-3-medium-4k-instruct", "phi 3 medium 4k instruct",
                 14_000_000_000, 40, 5120, 40, 10, 17920),
    _decoder_llm("qwen-72b-instruct", "qwen 72b instruct",
                 72_700_000_000, 80, 8192, 64, 8, 24576),
    _decoder_llm("qwen15-110b-chat", "qwen15 110b chat",
                 111_000_000_000, 80, 8192, 64, 8, 49152),
    _decoder_llm("yi-15-34b", "yi 15 34b",
                 34_400_000_000, 60, 7168, 56, 8, 20480),
    _decoder_llm("zephyr-orpo-141b-a35b", "zephyr orpo 141b a35b",
                 141_000_000_000, 56, 6144, 48, 8, 16384),
)


_MODELS = {
    "mobilenetv2": mobilenet_v2,
    "transformer": transformer_base,
    "llama2-7b": llama2_7b,
}


def get_model(name: str) -> ModelSpec:
    if name in _MODELS:
        return _MODELS[name]()
    for model in LEADERBOARD_LLMS:
        if model.name == name:
            return model
    raise KeyError(f"unknown model {name!r}")

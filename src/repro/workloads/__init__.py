"""Workloads: models, datasets, and the Table-1 execution matrix.

A workload is (model, framework, operation, dataset, batch size, epochs,
device) - exactly the paper's Table 1.  Running a workload through
:class:`~repro.workloads.runner.WorkloadRunner` yields deterministic runtime
metrics (execution time, peak CPU/GPU memory, output digest) plus ground
truth usage (kernels/functions), which the debloating pipeline's detector
must independently rediscover.
"""

from repro.workloads.datasets import DATASETS, DatasetSpec
from repro.workloads.models import (
    LEADERBOARD_LLMS,
    ModelSpec,
    llama2_7b,
    mobilenet_v2,
    transformer_base,
)
from repro.workloads.runner import RunMetrics, WorkloadRunner
from repro.workloads.spec import TABLE1_WORKLOADS, WorkloadSpec, workload_by_id

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "LEADERBOARD_LLMS",
    "ModelSpec",
    "RunMetrics",
    "TABLE1_WORKLOADS",
    "WorkloadRunner",
    "WorkloadSpec",
    "llama2_7b",
    "mobilenet_v2",
    "transformer_base",
    "workload_by_id",
]

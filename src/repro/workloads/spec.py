"""Workload specifications: the paper's Table 1 plus §4.5 variants.

Each :class:`WorkloadSpec` is identified as ``"<framework>/<op>/<model>"``
(e.g. ``"pytorch/train/mobilenetv2"``) and carries everything the runner
needs: dataset, batch size, epochs, device(s), and module-loading mode.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cuda.arch import GpuDevice, get_device
from repro.cuda.driver import LoadingMode
from repro.errors import ConfigurationError
from repro.workloads.datasets import DatasetSpec, get_dataset
from repro.workloads.models import ModelSpec, get_model


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of the paper's workload matrix."""

    framework: str
    operation: str  # "train" | "inference"
    model: ModelSpec
    dataset: DatasetSpec
    batch_size: int
    epochs: int = 1
    device_name: str = "t4"
    world_size: int = 1
    loading_mode: LoadingMode = LoadingMode.EAGER

    def __post_init__(self) -> None:
        if self.operation not in ("train", "inference"):
            raise ConfigurationError(f"unknown operation {self.operation!r}")
        if self.operation == "train" and self.dataset.train_samples <= 0:
            raise ConfigurationError(
                f"{self.dataset.name} has no training split"
            )

    @property
    def workload_id(self) -> str:
        return f"{self.framework}/{self.operation}/{self.model.name}"

    @property
    def is_training(self) -> bool:
        return self.operation == "train"

    def devices(self) -> tuple[GpuDevice, ...]:
        return tuple(get_device(self.device_name) for _ in range(self.world_size))

    @property
    def features(self) -> frozenset[str]:
        return self.model.features | {self.operation}

    def n_batches(self) -> int:
        """Iterations the workload executes (paper Table 1 semantics).

        Training iterates the full train split for ``epochs``; inference
        runs a single batch from the test set (Table 1 footnote); LLM
        inference decodes ``gen_tokens`` steps.
        """
        if self.model.gen_tokens and not self.is_training:
            return self.model.gen_tokens
        if self.is_training:
            per_epoch = max(1, self.dataset.train_samples // self.batch_size)
            return per_epoch * self.epochs
        return 1

    def variant(self, **kwargs) -> "WorkloadSpec":
        """A modified copy (different device / loading mode / world size)."""
        return replace(self, **kwargs)


def _w(framework: str, operation: str, model: str, dataset: str,
       batch_size: int, epochs: int = 1) -> WorkloadSpec:
    return WorkloadSpec(
        framework=framework,
        operation=operation,
        model=get_model(model),
        dataset=get_dataset(dataset),
        batch_size=batch_size,
        epochs=epochs,
    )


#: The ten workloads of paper Table 1 (T4 device).
TABLE1_WORKLOADS: tuple[WorkloadSpec, ...] = (
    _w("pytorch", "train", "mobilenetv2", "cifar10", 16, 3),
    _w("pytorch", "inference", "mobilenetv2", "cifar10", 4),
    _w("tensorflow", "train", "mobilenetv2", "cifar10", 16, 3),
    _w("tensorflow", "inference", "mobilenetv2", "cifar10", 4),
    _w("pytorch", "train", "transformer", "multi30k", 128, 3),
    _w("pytorch", "inference", "transformer", "multi30k", 32),
    _w("tensorflow", "train", "transformer", "wmt14", 128, 1),
    _w("tensorflow", "inference", "transformer", "wmt14", 32),
    _w("vllm", "inference", "llama2-7b", "manual", 1),
    _w("transformers", "inference", "llama2-7b", "manual", 1),
)


def workload_by_id(workload_id: str) -> WorkloadSpec:
    for spec in TABLE1_WORKLOADS:
        if spec.workload_id == workload_id:
            return spec
    raise ConfigurationError(
        f"unknown workload {workload_id!r}; known: "
        f"{[w.workload_id for w in TABLE1_WORKLOADS]}"
    )

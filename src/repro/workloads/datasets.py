"""Dataset metadata (synthetic stand-ins with accurate shapes/counts).

Bloat measurement never reads sample values - only sample *counts* (which
set iteration counts and therefore detector/NSys overhead scaling) and byte
sizes (which set host memory and load time).  Counts match the real
datasets the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.units import MB


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset as the runner needs it."""

    name: str
    train_samples: int
    test_samples: int
    sample_bytes: int
    #: Host bytes resident while iterating the training split (decoded /
    #: tokenized working set, shuffle buffers).
    host_bytes: int
    #: Host bytes when only the test split is iterated.
    host_bytes_test: int = 0
    #: Average tokens per sample (sequence workloads; 0 for vision).
    tokens_per_sample: int = 0

    def samples(self, split: str) -> int:
        if split == "train":
            return self.train_samples
        if split == "test":
            return self.test_samples
        raise ConfigurationError(f"unknown split {split!r}")


DATASETS: dict[str, DatasetSpec] = {
    # 60k 3x32x32 images (Krizhevsky et al., 2009).
    "cifar10": DatasetSpec(
        name="cifar10",
        train_samples=50_000,
        test_samples=10_000,
        sample_bytes=3 * 32 * 32,
        host_bytes=int(180 * MB),
        host_bytes_test=int(40 * MB),
    ),
    # 29k train / 1,014 test EN-DE sentence pairs (Elliott et al., 2016).
    "multi30k": DatasetSpec(
        name="multi30k",
        train_samples=29_000,
        test_samples=1_014,
        sample_bytes=2 * 64,
        host_bytes=int(52 * MB),
        host_bytes_test=int(9 * MB),
        tokens_per_sample=14,
    ),
    # WMT14 EN-DE: ~4.5M train pairs (Bojar et al., 2014).
    "wmt14": DatasetSpec(
        name="wmt14",
        train_samples=4_500_000,
        test_samples=3_003,
        sample_bytes=2 * 120,
        host_bytes=int(9_800 * MB),
        host_bytes_test=int(140 * MB),
        tokens_per_sample=27,
    ),
    # A manually supplied prompt (LLM inference workloads).
    "manual": DatasetSpec(
        name="manual",
        train_samples=0,
        test_samples=1,
        sample_bytes=512,
        host_bytes=int(1 * MB),
        host_bytes_test=int(1 * MB),
        tokens_per_sample=32,
    ),
}


def get_dataset(name: str) -> DatasetSpec:
    if name not in DATASETS:
        raise ConfigurationError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[name]

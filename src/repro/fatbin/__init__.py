"""GPU code container: fatbin regions, elements, cubins, kernels.

The paper (§3.2, Fig. 4) describes GPU code in an ML shared library as a list
of *regions*, each holding *elements*; each element header carries the
compute-capability of the GPU architecture its *cubin* payload was compiled
for, and each cubin holds kernels plus the intra-cubin kernel-call graph
(kernels launched from other kernels are compiled into the same cubin).
NVIDIA publishes no spec for this container, so - exactly like the paper -
we define the structural invariants we rely on and implement them: a builder,
a strict parser, and a ``cuobjdump``-equivalent extractor whose cubin indices
start at one and match element order.
"""

from repro.fatbin.builder import FatbinBuilder
from repro.fatbin.cubin import Cubin, KernelFlags
from repro.fatbin.cuobjdump import extract_cubins, list_fatbin_elements
from repro.fatbin.parser import FatbinElement, FatbinImage, FatbinRegion, parse_fatbin

__all__ = [
    "Cubin",
    "FatbinBuilder",
    "FatbinElement",
    "FatbinImage",
    "FatbinRegion",
    "KernelFlags",
    "extract_cubins",
    "list_fatbin_elements",
    "parse_fatbin",
]

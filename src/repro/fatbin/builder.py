"""Fatbin writer: regions of elements, each element wrapping one cubin.

The builder mirrors how ``nvcc``/``fatbinary`` assemble device code into the
``.nv_fatbin`` section: one or more regions, each a header plus back-to-back
elements; each element header records the compute-capability its cubin
targets.  Output is a :class:`SparseFile` (structural bytes materialized,
kernel code areas left as holes) ready to drop into the ELF builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.fatbin import constants as FC
from repro.fatbin.cubin import Cubin
from repro.fatbin.structs import ElementHeader, RegionHeader
from repro.utils.sparsefile import SparseFile


@dataclass
class _PendingElement:
    cubin: Cubin
    sm_arch: int
    kind: int
    compressed: bool


@dataclass
class RegionBuilder:
    """Accumulates elements for one region."""

    elements: list[_PendingElement] = field(default_factory=list)

    def add_element(
        self,
        cubin: Cubin,
        sm_arch: int,
        kind: int = FC.KIND_CUBIN,
        compressed: bool = False,
    ) -> "RegionBuilder":
        if sm_arch <= 0 or sm_arch > 0xFFFF:
            raise ConfigurationError(f"invalid sm_arch {sm_arch}")
        self.elements.append(_PendingElement(cubin, sm_arch, kind, compressed))
        return self


class FatbinBuilder:
    """Builds a complete ``.nv_fatbin`` payload."""

    def __init__(self) -> None:
        self._regions: list[RegionBuilder] = []

    def add_region(self) -> RegionBuilder:
        region = RegionBuilder()
        self._regions.append(region)
        return region

    def build(self) -> SparseFile:
        """Serialize all regions; returns the sparse payload."""
        out = SparseFile(0)
        offset = 0
        for region in self._regions:
            if not region.elements:
                raise ConfigurationError("region with no elements")
            # First pass: compute body size.
            body = 0
            payload_sizes = []
            for pending in region.elements:
                payload = pending.cubin.serialized_size()
                padded = FC.pad_to(payload)
                payload_sizes.append((payload, padded))
                body += FC.ELEMENT_HEADER_SIZE + padded
            header = RegionHeader(body_size=body)
            out.write(offset, header.pack())
            offset += FC.REGION_HEADER_SIZE
            for pending, (payload, padded) in zip(region.elements, payload_sizes):
                elem_header = ElementHeader(
                    kind=pending.kind,
                    sm_arch=pending.sm_arch,
                    payload_size=payload,
                    padded_payload_size=padded,
                    compressed=int(pending.compressed),
                )
                out.write(offset, elem_header.pack())
                offset += FC.ELEMENT_HEADER_SIZE
                written = pending.cubin.serialize_into(out, offset)
                assert written == payload
                offset += padded
        if offset > out.logical_size:
            out.truncate(offset)
        return out

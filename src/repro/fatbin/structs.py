"""Binary headers of the fatbin container (region and element headers)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import FatbinFormatError
from repro.fatbin import constants as FC

_REGION_FMT = "<IHHQQ"
_ELEMENT_FMT = "<HHHHQQII32s"

assert struct.calcsize(_REGION_FMT) == FC.REGION_HEADER_SIZE
assert struct.calcsize(_ELEMENT_FMT) == FC.ELEMENT_HEADER_SIZE


@dataclass
class RegionHeader:
    """Header of one fatbin region (paper Fig. 4: "Region Header")."""

    magic: int = FC.FATBIN_MAGIC
    version: int = FC.FATBIN_VERSION
    header_size: int = FC.REGION_HEADER_SIZE
    body_size: int = 0  # bytes of element data following the header
    flags: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            _REGION_FMT,
            self.magic,
            self.version,
            self.header_size,
            self.body_size,
            self.flags,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "RegionHeader":
        if len(data) < FC.REGION_HEADER_SIZE:
            raise FatbinFormatError("truncated region header")
        hdr = cls(*struct.unpack(_REGION_FMT, data[: FC.REGION_HEADER_SIZE]))
        if hdr.magic != FC.FATBIN_MAGIC:
            raise FatbinFormatError(f"bad fatbin magic {hdr.magic:#x}")
        if hdr.header_size != FC.REGION_HEADER_SIZE:
            raise FatbinFormatError(f"unexpected region header size {hdr.header_size}")
        return hdr


@dataclass
class ElementHeader:
    """Header of one fatbin element (paper Fig. 4: "Element Header").

    ``sm_arch`` is the compute-capability field the kernel locator checks
    against the device architecture (paper §3.2: only matching elements can
    be loaded into GPU memory).
    """

    kind: int = FC.KIND_CUBIN
    version: int = FC.FATBIN_VERSION
    header_size: int = FC.ELEMENT_HEADER_SIZE
    sm_arch: int = 0  # e.g. 75 for sm_75 (T4)
    payload_size: int = 0
    padded_payload_size: int = 0
    compressed: int = 0
    flags: int = 0
    reserved: bytes = b"\x00" * 32

    def pack(self) -> bytes:
        return struct.pack(
            _ELEMENT_FMT,
            self.kind,
            self.version,
            self.header_size,
            self.sm_arch,
            self.payload_size,
            self.padded_payload_size,
            self.compressed,
            self.flags,
            self.reserved,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ElementHeader":
        if len(data) < FC.ELEMENT_HEADER_SIZE:
            raise FatbinFormatError("truncated element header")
        hdr = cls(*struct.unpack(_ELEMENT_FMT, data[: FC.ELEMENT_HEADER_SIZE]))
        if hdr.header_size != FC.ELEMENT_HEADER_SIZE:
            raise FatbinFormatError(f"unexpected element header size {hdr.header_size}")
        if hdr.kind not in (FC.KIND_PTX, FC.KIND_CUBIN):
            raise FatbinFormatError(f"unknown element kind {hdr.kind}")
        if hdr.padded_payload_size < hdr.payload_size:
            raise FatbinFormatError("padded payload smaller than payload")
        return hdr

"""Cubin: the CUDA binary holding kernels and their intra-cubin call graph.

The locator's correctness rests on one compiler invariant (paper §3.2):
*a kernel launched by another kernel is compiled into the same cubin*, so the
kernel-call graph rooted at any CPU-launching kernel is closed within one
cubin.  :class:`Cubin` therefore stores, per kernel, its launch edges (indices
of callee kernels in the same cubin) and an ``ENTRY`` flag marking kernels
launchable from the CPU; ``DEVICE``-only kernels are reachable solely through
edges.

Layout: 32-byte header | kernel table (32 B/entry, numpy-bulk) | edge table
(u32 per edge) | NUL-separated name table | padding | code area (sparse).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import CubinFormatError
from repro.fatbin import constants as FC
from repro.utils.sparsefile import SparseFile

_CUBIN_HDR_FMT = "<IHHIIIIQ"
assert struct.calcsize(_CUBIN_HDR_FMT) == FC.CUBIN_HEADER_SIZE

KERNEL_DTYPE = np.dtype(
    [
        ("name_offset", "<u4"),
        ("flags", "<u4"),
        ("code_offset", "<u8"),
        ("code_size", "<u8"),
        ("launch_count", "<u4"),
        ("launch_table_offset", "<u4"),
    ]
)
assert KERNEL_DTYPE.itemsize == FC.KERNEL_ENTRY_SIZE


class KernelFlags(enum.IntFlag):
    """Kernel attribute flags stored in the kernel table."""

    NONE = 0
    ENTRY = 1  # launchable from the CPU via cuModuleGetFunction
    DEVICE = 2  # launched from another kernel (dynamic parallelism)


@dataclass
class Cubin:
    """A parsed/constructed cubin.

    Attributes
    ----------
    names:
        Kernel names, index-aligned with ``table``.
    table:
        Structured array of :data:`KERNEL_DTYPE` records.
    edges:
        Flat array of callee kernel indices; kernel ``i`` launches
        ``edges[table['launch_table_offset'][i] : +table['launch_count'][i]]``.
    """

    names: list[str]
    table: np.ndarray
    edges: np.ndarray

    # -- constructors ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        names: list[str],
        code_sizes: np.ndarray,
        entry_mask: np.ndarray,
        launch_edges: list[tuple[int, int]] | None = None,
    ) -> "Cubin":
        """Construct a cubin from kernel names/sizes and call-graph edges.

        ``launch_edges`` are (launcher_index, callee_index) pairs; callees get
        the ``DEVICE`` flag.  Code offsets are assigned contiguously.
        """
        n = len(names)
        code_sizes = np.asarray(code_sizes, dtype=np.int64)
        entry_mask = np.asarray(entry_mask, dtype=bool)
        if code_sizes.shape != (n,) or entry_mask.shape != (n,):
            raise ValueError("names/code_sizes/entry_mask length mismatch")
        table = np.zeros(n, dtype=KERNEL_DTYPE)
        table["code_size"] = code_sizes
        if n:
            table["code_offset"] = np.concatenate(
                ([0], np.cumsum(code_sizes[:-1]))
            )
        flags = np.where(entry_mask, int(KernelFlags.ENTRY), 0).astype(np.uint32)

        edges_per_kernel: list[list[int]] = [[] for _ in range(n)]
        for launcher, callee in launch_edges or []:
            if not (0 <= launcher < n and 0 <= callee < n):
                raise ValueError(f"edge ({launcher},{callee}) out of range")
            edges_per_kernel[launcher].append(callee)
            flags[callee] |= int(KernelFlags.DEVICE)
        table["flags"] = flags

        flat: list[int] = []
        for i, callees in enumerate(edges_per_kernel):
            table["launch_table_offset"][i] = len(flat)
            table["launch_count"][i] = len(callees)
            flat.extend(callees)
        edges = np.asarray(flat, dtype=np.uint32)
        return cls(list(names), table, edges)

    # -- accessors -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.names)

    @property
    def code_size(self) -> int:
        return int(self.table["code_size"].sum())

    def kernel_names(self) -> list[str]:
        return list(self.names)

    def entry_mask(self) -> np.ndarray:
        return (self.table["flags"] & int(KernelFlags.ENTRY)) != 0

    def entry_kernel_names(self) -> list[str]:
        mask = self.entry_mask()
        return [n for n, m in zip(self.names, mask) if m]

    def device_only_names(self) -> list[str]:
        flags = self.table["flags"]
        mask = ((flags & int(KernelFlags.DEVICE)) != 0) & (
            (flags & int(KernelFlags.ENTRY)) == 0
        )
        return [n for n, m in zip(self.names, mask) if m]

    def launches(self, index: int) -> np.ndarray:
        """Indices of kernels launched by kernel ``index``."""
        off = int(self.table["launch_table_offset"][index])
        cnt = int(self.table["launch_count"][index])
        return self.edges[off : off + cnt]

    def call_graph_closure(self, roots: list[int]) -> set[int]:
        """All kernels reachable from ``roots`` through launch edges."""
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            k = stack.pop()
            if k in seen:
                continue
            seen.add(k)
            stack.extend(int(c) for c in self.launches(k))
        return seen

    # -- serialization ---------------------------------------------------------------

    def _name_table(self) -> tuple[bytes, np.ndarray]:
        encoded = [n.encode("utf-8") for n in self.names]
        lengths = np.fromiter(
            (len(e) + 1 for e in encoded), dtype=np.int64, count=len(encoded)
        )
        offsets = (
            np.concatenate(([0], np.cumsum(lengths[:-1])))
            if encoded
            else np.zeros(0, dtype=np.int64)
        )
        blob = b"\x00".join(encoded) + b"\x00" if encoded else b""
        return blob, offsets

    def serialized_size(self) -> int:
        """Total logical cubin size (structural bytes + code area)."""
        name_blob, _ = self._name_table()
        structural = (
            FC.CUBIN_HEADER_SIZE
            + len(self.table) * FC.KERNEL_ENTRY_SIZE
            + len(self.edges) * 4
            + len(name_blob)
        )
        return FC.pad_to(structural) + self.code_size

    def serialize_into(self, out: SparseFile, offset: int) -> int:
        """Write structural bytes at ``offset``; code area stays a hole.

        Returns the total logical size written (== :meth:`serialized_size`).
        """
        name_blob, name_offsets = self._name_table()
        table = self.table.copy()
        table["name_offset"] = name_offsets

        header = struct.pack(
            _CUBIN_HDR_FMT,
            FC.CUBIN_MAGIC,
            FC.CUBIN_VERSION,
            FC.CUBIN_HEADER_SIZE,
            len(self.table),
            len(name_blob),
            len(self.edges),
            0,
            self.code_size,
        )
        structural = header + table.tobytes() + self.edges.tobytes() + name_blob
        out.write(offset, structural)
        total = FC.pad_to(len(structural)) + self.code_size
        end = offset + total
        if end > out.logical_size:
            out.truncate(end)
        return total

    @classmethod
    def parse(cls, data: SparseFile, offset: int, size: int) -> "Cubin":
        """Parse a cubin's structural bytes; the code area is never read."""
        if size < FC.CUBIN_HEADER_SIZE:
            raise CubinFormatError("cubin smaller than header")
        raw = data.read(offset, FC.CUBIN_HEADER_SIZE)
        (
            magic,
            version,
            header_size,
            kernel_count,
            name_table_size,
            edge_count,
            _reserved,
            code_size,
        ) = struct.unpack(_CUBIN_HDR_FMT, raw)
        if magic != FC.CUBIN_MAGIC:
            raise CubinFormatError(f"bad cubin magic {magic:#x}")
        if header_size != FC.CUBIN_HEADER_SIZE:
            raise CubinFormatError(f"unexpected cubin header size {header_size}")

        table_bytes = kernel_count * FC.KERNEL_ENTRY_SIZE
        edge_bytes = edge_count * 4
        structural = FC.CUBIN_HEADER_SIZE + table_bytes + edge_bytes + name_table_size
        if FC.pad_to(structural) + code_size > size:
            raise CubinFormatError("cubin contents exceed declared size")

        body = data.read(offset + FC.CUBIN_HEADER_SIZE,
                         table_bytes + edge_bytes + name_table_size)
        table = np.frombuffer(body[:table_bytes], dtype=KERNEL_DTYPE).copy()
        edges = np.frombuffer(
            body[table_bytes : table_bytes + edge_bytes], dtype=np.uint32
        ).copy()
        name_blob = body[table_bytes + edge_bytes :]

        names: list[str] = []
        for off in table["name_offset"].tolist():
            if off >= len(name_blob):
                raise CubinFormatError("kernel name offset out of range")
            end = name_blob.index(b"\x00", off)
            names.append(name_blob[off:end].decode("utf-8"))

        bad_edges = edges >= kernel_count if edge_count else np.zeros(0, dtype=bool)
        if bad_edges.any():
            raise CubinFormatError("launch edge references missing kernel")
        return cls(names, table, edges)

"""Fatbin/cubin container constants.

``FATBIN_MAGIC`` matches the magic of real NVIDIA fat binaries
(``0xBA55ED50``); the remaining layout is this project's documented
stand-in for the unpublished NVIDIA format (see package docstring).
"""

from __future__ import annotations

FATBIN_MAGIC = 0xBA55ED50
FATBIN_VERSION = 1

REGION_HEADER_SIZE = 24
ELEMENT_HEADER_SIZE = 64

# Element kinds.
KIND_PTX = 1
KIND_CUBIN = 2

# Element header flags.
#: Set by the compactor on removed elements: the payload has been zeroed but
#: the header chain stays walkable, so loaders skip the element instead of
#: failing to parse the container (Negativa keeps address validity the same
#: way - structure intact, contents gone).
ELEMENT_FLAG_REMOVED = 0x1

CUBIN_MAGIC = 0x4E424355  # "UCBN" little-endian spells "CUBN"-ish tag
CUBIN_VERSION = 1
CUBIN_HEADER_SIZE = 32
KERNEL_ENTRY_SIZE = 32

PAYLOAD_ALIGN = 8


def pad_to(size: int, align: int = PAYLOAD_ALIGN) -> int:
    """Round ``size`` up to ``align``."""
    return (size + align - 1) // align * align

"""Fatbin reader: walk regions/elements, parse cubins structurally.

The parser never touches kernel code areas, so paper-scale (hundreds of MB)
fatbins parse in milliseconds from sparse storage.  Element indices are
*global and 1-based*, matching the ``cuobjdump`` extraction convention the
locator relies on (paper §3.2: "A cubin extracted by cuobjdump has an index
starting from one ... equal to the index of the element containing it").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import FatbinFormatError
from repro.fatbin import constants as FC
from repro.fatbin.cubin import Cubin
from repro.fatbin.structs import ElementHeader, RegionHeader
from repro.utils.intervals import Range
from repro.utils.sparsefile import SparseFile


@dataclass
class FatbinElement:
    """One element: header + cubin payload, with absolute file geometry."""

    index: int  # global, 1-based
    header: ElementHeader
    header_offset: int  # absolute file offset of the element header
    data: SparseFile

    @property
    def sm_arch(self) -> int:
        return self.header.sm_arch

    @property
    def payload_offset(self) -> int:
        return self.header_offset + FC.ELEMENT_HEADER_SIZE

    @property
    def file_range(self) -> Range:
        """Header + padded payload: the unit the compactor retains/removes."""
        return Range(
            self.header_offset,
            self.payload_offset + self.header.padded_payload_size,
        )

    @property
    def size(self) -> int:
        return len(self.file_range)

    @cached_property
    def cubin(self) -> Cubin:
        return Cubin.parse(self.data, self.payload_offset, self.header.payload_size)

    def kernel_names(self) -> list[str]:
        return self.cubin.kernel_names()


@dataclass
class FatbinRegion:
    """One region: header plus its elements."""

    header: RegionHeader
    header_offset: int
    elements: list[FatbinElement]

    @property
    def file_range(self) -> Range:
        return Range(
            self.header_offset,
            self.header_offset + FC.REGION_HEADER_SIZE + self.header.body_size,
        )


@dataclass
class FatbinImage:
    """All regions of a ``.nv_fatbin`` section."""

    regions: list[FatbinRegion]
    base_offset: int
    total_size: int

    def elements(self) -> list[FatbinElement]:
        return [e for region in self.regions for e in region.elements]

    def element_count(self) -> int:
        return sum(len(r.elements) for r in self.regions)

    def element_by_index(self, index: int) -> FatbinElement:
        """Lookup by the global 1-based cuobjdump index."""
        for region in self.regions:
            for element in region.elements:
                if element.index == index:
                    return element
        raise FatbinFormatError(f"no fatbin element with index {index}")

    def architectures(self) -> list[int]:
        return sorted({e.sm_arch for e in self.elements()})


def parse_fatbin(
    data: SparseFile | bytes,
    base_offset: int = 0,
    size: int | None = None,
) -> FatbinImage:
    """Parse the fatbin container at ``base_offset`` within ``data``.

    ``data`` may be the whole shared-library sparse file (pass the section
    offset) or a standalone payload.  Only structural bytes are read.
    """
    if isinstance(data, (bytes, bytearray)):
        sparse = SparseFile.from_bytes(bytes(data))
        # Caller gave a standalone payload but wants absolute offsets: shift
        # by re-wrapping at the requested base.
        if base_offset:
            shifted = SparseFile(base_offset + sparse.logical_size)
            shifted.write(base_offset, sparse.to_bytes())
            sparse = shifted
        data = sparse
        if size is None:
            size = data.logical_size - base_offset
    if size is None:
        size = data.logical_size - base_offset
    end = base_offset + size
    if end > data.logical_size:
        raise FatbinFormatError("fatbin extends past end of file")

    regions: list[FatbinRegion] = []
    offset = base_offset
    next_index = 1
    while offset < end:
        if end - offset < FC.REGION_HEADER_SIZE:
            raise FatbinFormatError("trailing bytes too small for a region header")
        region_header = RegionHeader.unpack(data.read(offset, FC.REGION_HEADER_SIZE))
        region_start = offset
        body_end = offset + FC.REGION_HEADER_SIZE + region_header.body_size
        if body_end > end:
            raise FatbinFormatError("region body extends past fatbin")
        offset += FC.REGION_HEADER_SIZE

        elements: list[FatbinElement] = []
        while offset < body_end:
            if body_end - offset < FC.ELEMENT_HEADER_SIZE:
                raise FatbinFormatError("trailing bytes too small for an element")
            elem_header = ElementHeader.unpack(
                data.read(offset, FC.ELEMENT_HEADER_SIZE)
            )
            elem_end = (
                offset + FC.ELEMENT_HEADER_SIZE + elem_header.padded_payload_size
            )
            if elem_end > body_end:
                raise FatbinFormatError("element payload extends past region")
            elements.append(
                FatbinElement(
                    index=next_index,
                    header=elem_header,
                    header_offset=offset,
                    data=data,
                )
            )
            next_index += 1
            offset = elem_end
        regions.append(
            FatbinRegion(
                header=region_header, header_offset=region_start, elements=elements
            )
        )

    return FatbinImage(regions=regions, base_offset=base_offset, total_size=size)

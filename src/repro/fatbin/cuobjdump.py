"""``cuobjdump``-equivalent extraction used by the kernel locator.

The paper's locator does not parse fatbins directly; it drives NVIDIA's
``cuobjdump`` to (a) extract the list of cubins from a shared library, with
1-based indices in the extracted file names, and (b) list the kernels inside
each cubin.  This module reproduces that tool boundary so the locator code
reads like the paper: ``extract_cubins`` returns (index, arch, kernel names)
records, and ``list_fatbin_elements`` mirrors ``cuobjdump -lelf`` output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.elf.image import SharedLibrary
from repro.errors import FatbinFormatError


@dataclass(frozen=True)
class ExtractedCubin:
    """One cubin as ``cuobjdump -xelf all`` would extract it.

    ``index`` is 1-based and equals the index of the fatbin element that
    contains this cubin - the invariant the locator uses to map a cubin back
    to a file range in the shared library.
    """

    index: int
    sm_arch: int
    kernel_names: tuple[str, ...]
    entry_kernel_names: tuple[str, ...]

    @property
    def filename(self) -> str:
        """The synthetic extraction file name (``<lib>.<index>.sm_<arch>.cubin``)."""
        return f"extracted.{self.index}.sm_{self.sm_arch}.cubin"


def extract_cubins(lib: SharedLibrary) -> list[ExtractedCubin]:
    """Extract all cubins from a shared library (``cuobjdump -xelf all``)."""
    image = lib.fatbin
    if image is None:
        return []
    out: list[ExtractedCubin] = []
    for element in image.elements():
        cubin = element.cubin
        out.append(
            ExtractedCubin(
                index=element.index,
                sm_arch=element.sm_arch,
                kernel_names=tuple(cubin.kernel_names()),
                entry_kernel_names=tuple(cubin.entry_kernel_names()),
            )
        )
    return out


def list_fatbin_elements(lib: SharedLibrary) -> list[str]:
    """Human-readable element listing (``cuobjdump -lelf`` analogue)."""
    image = lib.fatbin
    if image is None:
        return []
    lines = []
    for element in image.elements():
        lines.append(
            f"ELF file {element.index}: {lib.soname}.{element.index}."
            f"sm_{element.sm_arch}.cubin"
        )
    return lines


def _extracted_view(index, row: int) -> ExtractedCubin:
    """Rebuild one :class:`ExtractedCubin` record from the cached index."""
    return ExtractedCubin(
        index=int(index.element_index[row]),
        sm_arch=int(index.sm_arch[row]),
        kernel_names=index.element_names(row),
        entry_kernel_names=index.element_entry_names(row),
    )


def find_kernel(lib: SharedLibrary, kernel_name: str) -> list[ExtractedCubin]:
    """All cubins in ``lib`` containing ``kernel_name``.

    Served from the library's cached
    :class:`~repro.core.kindex.KernelUsageIndex`: one vectorized ID probe
    over the flat kernel table instead of a fresh ``extract_cubins`` walk
    per query.
    """
    from repro.core.kindex import index_for

    index = index_for(lib)
    kid = index.name_to_id.get(kernel_name)
    if kid is None:
        return []
    rows = np.unique(index.kernel_elem[index.kernel_ids == kid])
    return [_extracted_view(index, int(row)) for row in rows]


def kernel_inventory(lib: SharedLibrary) -> dict[str, list[int]]:
    """Map kernel name -> element indices containing it (all architectures).

    One pass over the cached index's flat name table; repeated calls never
    re-extract cubins.
    """
    from repro.core.kindex import index_for

    index = index_for(lib)
    element_index = index.element_index.tolist()
    rows = index.kernel_elem.tolist()
    inventory: dict[str, list[int]] = {}
    for name, row in zip(index.kernel_names, rows):
        inventory.setdefault(name, []).append(element_index[row])
    return inventory


def total_gpu_code_bytes(lib: SharedLibrary) -> int:
    """Sum of element sizes (headers + padded cubins)."""
    image = lib.fatbin
    if image is None:
        return 0
    total = sum(e.size for e in image.elements())
    if total > lib.gpu_code_size:
        raise FatbinFormatError(
            f"{lib.soname}: element sizes exceed .nv_fatbin section"
        )
    return total

"""Deterministic fault injection for the serving tier.

Every fault-tolerance mechanism in this repo - transactional admission
rollback, retry/backoff in the server workers, the process-pool rebuild and
thread degrade in the locate fan-out, disk-cache quarantine, sweeper
survival - exists to handle failures that are rare and hard to reproduce.
This module makes them cheap to reproduce: code at a handful of **named
fault sites** calls :func:`check`, and an active :class:`FaultPlan` decides
- deterministically, from its seed and per-site invocation counters -
whether that call raises an injected failure.

Sites instrumented today:

=========================  ====================================================
``worker.pre_merge``       serving worker, before handing a spec to the store
                           (a "worker thread died mid-request" stand-in)
``store.merge``            inside the admission lock, per spec union merge
                           (mid-batch ``admit_many`` rollback)
``store.process``          per-library delta locate/compact inside a
                           transaction (mid-admission rollback)
``locate.shard.<i>``       parent-side collection of process-pool shard *i*
                           (raises ``BrokenProcessPool``)
``diskcache.read``         disk-tier entry decode (treated as a corrupt
                           entry: quarantined + recomputed)
``diskcache.write``        disk-tier entry persist (an ``OSError``)
``sweeper.tick``           the background sweeper's periodic sweep
``remote.send``            parent side, before writing a request frame to a
                           remote shard worker (a dropped connection)
``remote.recv``            parent side, before reading the worker's response
                           frame (worker died mid-request)
``shard.spawn``            remote shard supervisor, before forking a worker
                           process (spawn failure / restart storm)
``snapshot.read``          snapshot manifest/shard-image read (a torn or
                           corrupt on-disk snapshot)
``wal.append``             write-ahead log, before the record frame is
                           written (an admission committed but never logged)
``wal.fsync``              write-ahead log, before the physical fsync (a
                           power-loss window)
``wal.replay``             durability recovery, before applying one WAL
                           record to the store
``checkpoint.truncate``    durability checkpoint, after the snapshot export
                           but before the WAL truncation (the crash window
                           the watermark exists for)
``remote.heartbeat``       supervisor liveness probe, before pinging the
                           worker
=========================  ====================================================

Plans are **opt-in**: nothing fires unless a plan is activated, either
programmatically (:func:`activate` / the :func:`fault_plan` context
manager) or by the entry points that honour the ``REPRO_FAULT_PLAN``
environment variable (the serving CLI, the fault tests, and
``bench_faults.py``).  ``REPRO_FAULT_PLAN`` accepts a named plan
(``ci-standard``), optionally with a seed override (``ci-standard:123``),
or an inline rule spec::

    seed=42;worker.pre_merge@1;store.process%0.05;diskcache.read@2:corrupt

``site@N1,N2`` fires on those 1-based invocation ordinals of the site;
``site%RATE`` fires each invocation with probability RATE drawn from a
seeded per-rule stream; an optional ``:kind`` suffix picks the injected
failure (``fault`` | ``broken_pool`` | ``corrupt`` | ``oserror`` |
``kill``).  ``kill`` is the crash-matrix kind: instead of raising, it
sends ``SIGKILL`` to the current process at the fault site, simulating a
hard crash with no chance to run cleanup - only meaningful in a child
process driven via ``REPRO_FAULT_PLAN``.

Determinism: each rule keeps its own invocation counter and (for rate
rules) its own :class:`~repro.utils.rng.RngStream` seeded from
``(plan seed, rule site)``, so the *k*-th matching invocation of a site
fires identically across runs.  Under a threaded server, which request
lands on which ordinal can vary with scheduling - the fault *pattern* per
site is reproducible, the victim assignment is whatever the schedule
produced (exactly like a real flaky component).
"""

from __future__ import annotations

import os
import signal
import threading
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, FaultError
from repro.utils.rng import RngStream

#: Environment variable naming (or spelling out) the plan to activate.
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Injected-failure kinds a rule may request.
FAULT_KINDS = ("fault", "broken_pool", "corrupt", "oserror", "kill")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, when, and what to raise.

    ``site`` matches an instrumented site exactly, or as a dotted prefix
    (rule ``locate.shard`` matches site ``locate.shard.2``).  Exactly one
    of ``ordinals`` (fire on these 1-based matching invocations) or
    ``rate`` (independent per-invocation probability) must be set.
    """

    site: str
    ordinals: tuple[int, ...] | None = None
    rate: float | None = None
    kind: str = "fault"

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigurationError("fault rule needs a site name")
        if (self.ordinals is None) == (self.rate is None):
            raise ConfigurationError(
                f"fault rule {self.site!r} needs exactly one of ordinals "
                f"or rate"
            )
        if self.rate is not None and not (0.0 <= self.rate <= 1.0):
            raise ConfigurationError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.ordinals is not None:
            object.__setattr__(self, "ordinals", tuple(self.ordinals))

    def matches(self, site: str) -> bool:
        return site == self.site or site.startswith(self.site + ".")


@dataclass(frozen=True)
class FiredFault:
    """One injection that actually fired (for reporting/assertions)."""

    site: str
    rule_site: str
    ordinal: int
    kind: str


class FaultPlan:
    """A seeded set of :class:`FaultRule` with per-rule firing state.

    Thread-safe; a plan instance is single-use in the sense that its
    ordinal counters advance as sites are checked - :meth:`reset` rewinds
    them for a fresh run with identical behaviour.
    """

    def __init__(
        self, rules: tuple[FaultRule, ...] | list[FaultRule],
        seed: int = 0, name: str = "",
    ) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self.name = name
        self._lock = threading.Lock()
        self._counts: dict[int, int] = {}
        self._streams: dict[int, RngStream] = {}
        self.fired: list[FiredFault] = []

    def reset(self) -> None:
        """Rewind every counter and RNG stream to the pristine state."""
        with self._lock:
            self._counts.clear()
            self._streams.clear()
            self.fired.clear()

    def check(self, site: str) -> None:
        """Raise the configured failure if any rule fires for ``site``."""
        for idx, rule in enumerate(self.rules):
            if not rule.matches(site):
                continue
            with self._lock:
                ordinal = self._counts.get(idx, 0) + 1
                self._counts[idx] = ordinal
                if rule.ordinals is not None:
                    fire = ordinal in rule.ordinals
                else:
                    stream = self._streams.get(idx)
                    if stream is None:
                        stream = self._streams[idx] = RngStream(
                            "fault-plan", self.seed, rule.site, rule.kind
                        )
                    fire = float(stream.uniform()) < rule.rate
                if fire:
                    self.fired.append(
                        FiredFault(site, rule.site, ordinal, rule.kind)
                    )
            if fire:
                if rule.kind == "kill":
                    # Hard crash: no exception, no cleanup, no atexit.
                    os.kill(os.getpid(), signal.SIGKILL)
                raise _exception_for(rule.kind, site, ordinal)

    def stats(self) -> dict[str, int]:
        """Fired-injection counts per rule site."""
        with self._lock:
            out: dict[str, int] = {}
            for fault in self.fired:
                out[fault.rule_site] = out.get(fault.rule_site, 0) + 1
            return out


def _exception_for(kind: str, site: str, ordinal: int) -> BaseException:
    if kind == "broken_pool":
        return BrokenProcessPool(
            f"injected broken pool at {site} (ordinal {ordinal})"
        )
    if kind == "oserror":
        return OSError(f"injected I/O error at {site} (ordinal {ordinal})")
    # "fault" and "corrupt" both surface as FaultError; the site decides
    # what a corrupt payload means (the disk cache quarantines it).
    return FaultError(site, ordinal, kind)


# -- the active plan ----------------------------------------------------------

_ACTIVE: FaultPlan | None = None
_ACTIVE_LOCK = threading.Lock()


def active_plan() -> FaultPlan | None:
    return _ACTIVE


def activate(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan (sites start firing)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = plan
    return plan


def deactivate() -> None:
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


@contextmanager
def fault_plan(plan: FaultPlan):
    """Activate ``plan`` for the duration of a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    activate(plan)
    try:
        yield plan
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = previous


def check(site: str) -> None:
    """The fault site hook: a no-op unless a plan is active and fires.

    Instrumented code calls this unconditionally; with no active plan the
    cost is one global read and a ``None`` test.
    """
    plan = _ACTIVE
    if plan is not None:
        plan.check(site)


# -- named plans + env parsing ------------------------------------------------

#: Fixed seed of the CI plan; part of the reproducibility contract.
CI_STANDARD_SEED = 20250808

#: The acceptance-criteria plan: one worker kill, one mid-batch merge
#: fault, one mid-transaction process fault, one broken process pool
#: (fires only under ``locate_workers_mode="process"``), one corrupt disk
#: entry, and one sweeper exception.  Every admission driven against it
#: must succeed after retry, and the end-state store must be
#: byte-identical to a fault-free run of the same arrivals.
#:
#: The remote-federation rules (``remote.*`` / ``shard.spawn`` /
#: ``snapshot.read``) only fire when those sites exist - i.e. under
#: ``remote_shards > 0`` or an explicit snapshot import - so the plan
#: stays byte-compatible for in-process runs: a dropped request frame, a
#: dropped response frame, one failed worker spawn (the supervisor's next
#: call retries it), and one corrupt snapshot read.
#:
#: The durability rules (``wal.*`` / ``checkpoint.truncate`` /
#: ``remote.heartbeat``) likewise only fire with durability or heartbeats
#: enabled, and every one is absorbed where it fires: a failed WAL append
#: or fsync is counted (``wal_failures``) without undoing the committed
#: admission, a truncate fault leaves the checkpoint snapshot in place
#: (the watermark makes the extra replay a no-op), and a heartbeat fault
#: is one failed probe.  ``wal.replay`` is deliberately *not* in this
#: plan: a replay fault aborts recovery rather than being tolerated, so
#: it belongs to the explicit crash matrix, not the steady-state plan.
CI_STANDARD_PLAN = (
    FaultRule("worker.pre_merge", ordinals=(1,)),
    FaultRule("store.merge", ordinals=(2,)),
    FaultRule("store.process", ordinals=(4,)),
    FaultRule("locate.shard", ordinals=(1,), kind="broken_pool"),
    FaultRule("diskcache.read", ordinals=(1,), kind="corrupt"),
    FaultRule("sweeper.tick", ordinals=(1,)),
    FaultRule("remote.send", ordinals=(2,)),
    FaultRule("remote.recv", ordinals=(4,)),
    FaultRule("shard.spawn", ordinals=(2,)),
    FaultRule("snapshot.read", ordinals=(3,), kind="corrupt"),
    FaultRule("wal.append", ordinals=(3,)),
    FaultRule("wal.fsync", ordinals=(2,), kind="oserror"),
    FaultRule("checkpoint.truncate", ordinals=(1,)),
    FaultRule("remote.heartbeat", ordinals=(2,)),
)

_NAMED_PLANS: dict[str, tuple[tuple[FaultRule, ...], int]] = {
    "ci-standard": (CI_STANDARD_PLAN, CI_STANDARD_SEED),
}


def named_plan(name: str, seed: int | None = None) -> FaultPlan:
    """Instantiate a registered plan (fresh counters every call)."""
    try:
        rules, default_seed = _NAMED_PLANS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault plan {name!r}; known: {sorted(_NAMED_PLANS)}"
        ) from None
    return FaultPlan(
        rules, seed=default_seed if seed is None else seed, name=name
    )


def parse_plan(text: str) -> FaultPlan:
    """Parse a ``REPRO_FAULT_PLAN`` value into a :class:`FaultPlan`.

    Accepts a named plan (``ci-standard`` / ``ci-standard:SEED``) or the
    inline ``seed=S;site@N1,N2[:kind];site%RATE[:kind]`` rule grammar
    documented in the module docstring.
    """
    text = text.strip()
    if not text:
        raise ConfigurationError("empty fault plan spec")
    head = text.split(";", 1)[0]
    if "@" not in head and "%" not in head and "=" not in head:
        name, _, seed_text = text.partition(":")
        return named_plan(
            name, int(seed_text) if seed_text else None
        )
    seed = 0
    rules: list[FaultRule] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        if part.startswith("seed="):
            seed = int(part[len("seed="):])
            continue
        body, _, kind = part.partition(":")
        kind = kind or "fault"
        if "@" in body:
            site, _, ordinal_text = body.partition("@")
            ordinals = tuple(
                int(tok) for tok in ordinal_text.split(",") if tok
            )
            rules.append(FaultRule(site, ordinals=ordinals, kind=kind))
        elif "%" in body:
            site, _, rate_text = body.partition("%")
            rules.append(FaultRule(site, rate=float(rate_text), kind=kind))
        else:
            raise ConfigurationError(
                f"fault rule {part!r} needs '@ordinals' or '%rate'"
            )
    if not rules:
        raise ConfigurationError(f"fault plan spec {text!r} has no rules")
    return FaultPlan(tuple(rules), seed=seed, name=text)


def plan_from_env() -> FaultPlan | None:
    """The plan named by ``$REPRO_FAULT_PLAN``, or None when unset/empty."""
    text = os.environ.get(PLAN_ENV, "").strip()
    if not text:
        return None
    return parse_plan(text)

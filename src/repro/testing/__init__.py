"""Deterministic testing harnesses for the serving tier.

:mod:`repro.testing.faults` is the fault-injection harness: a seedable
:class:`~repro.testing.faults.FaultPlan` fires typed failures at named
sites inside the serving, cache, and fan-out code paths, so every
recovery mechanism (transactional rollback, retry/backoff, pool rebuild,
quarantine, sweeper survival) is exercised reproducibly in tests and
benchmarks rather than only under real production failures.
"""

from repro.testing.faults import (
    CI_STANDARD_PLAN,
    FaultPlan,
    FaultRule,
    active_plan,
    fault_plan,
    plan_from_env,
)

__all__ = [
    "CI_STANDARD_PLAN",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "fault_plan",
    "plan_from_env",
]

"""Figure 6: Pareto chart of per-library file-size reduction
(PyTorch / Train / MobileNetV2).

Paper shape: of 113 libraries, the top 8 account for 90% of the total
reduction; across workloads the top 10% of libraries contribute >90%.
"""

from __future__ import annotations

from repro.analysis.pareto import library_pareto
from repro.experiments.common import DEFAULT_SCALE, pipeline_report, shape_check, table1_reports
from repro.utils.tables import Table
from repro.workloads.spec import workload_by_id

ID = "fig6"
TITLE = "Figure 6: Pareto chart of file size removed per library (PyTorch/Train/MobileNetV2)"


def run(scale: float = DEFAULT_SCALE) -> str:
    report = pipeline_report(workload_by_id("pytorch/train/mobilenetv2"), scale)
    pareto = library_pareto(report)

    table = Table(
        ["Rank", "Library", "Removed MB", "Cumulative %"], title=TITLE
    )
    for rank, (soname, removed_mb, cum) in enumerate(pareto.series(12), start=1):
        table.add_row(rank, soname, f"{removed_mb:,.0f}", f"{cum:.1f}")

    # Cross-workload concentration (the §4.2 summary claim).
    shares = []
    for _, rep in table1_reports(scale):
        shares.append(library_pareto(rep).top_10pct_share)

    checks = [
        shape_check(
            "A handful of libraries carries 90% of the reduction "
            "(paper: top 8 of 113)",
            pareto.libraries_for_90pct <= 15,
            f"top {pareto.libraries_for_90pct} libraries reach 90%",
        ),
        shape_check(
            "Top 10% of libraries contribute >90% of reduction in every "
            "workload (paper §4.2)",
            min(shares) > 85.0,
            f"min top-10% share {min(shares):.1f}%",
        ),
    ]
    footer = (
        f"libraries for 90% of reduction: {pareto.libraries_for_90pct} "
        f"of {len(pareto.sonames)}; top-10% share: "
        f"{pareto.top_10pct_share:.1f}%"
    )
    return table.render() + "\n" + footer + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

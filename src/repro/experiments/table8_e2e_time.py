"""Table 8: end-to-end time Negativa-ML takes to debloat each workload.

Paper shape: time scales with (a) the workload's own execution time
(detection and profiling runs dominate), and (b) library count/size (locate
+ compact).  TensorFlow/Train/Transformer is the outlier (WMT14 training is
itself ~80 minutes), matching the paper's 18,420 s.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SCALE, shape_check, table1_reports, workload_row_labels
from repro.utils.tables import Table

ID = "table8"
TITLE = "Table 8: end-to-end debloating time per workload"


def run(scale: float = DEFAULT_SCALE) -> str:
    table = Table(
        [
            "Model", "Framework", "Operation", "#Lib.",
            "Detect/s", "Profile/s", "Locate/s", "Compact/s", "Total/s",
        ],
        title=TITLE,
    )
    totals = {}
    baselines = {}
    for spec, report in table1_reports(scale):
        model, framework, operation = workload_row_labels(spec)
        t = report.timing
        table.add_row(
            model, framework, operation, report.n_libraries,
            f"{t.kernel_detection_run_s:,.0f}",
            f"{t.cpu_profiling_run_s:,.0f}",
            f"{t.locate_s:,.1f}",
            f"{t.compact_s:,.1f}",
            f"{t.total_s:,.0f}",
        )
        totals[spec.workload_id] = t.total_s
        baselines[spec.workload_id] = report.baseline.execution_time_s

    tf_tr = totals["tensorflow/train/transformer"]
    others = [v for k, v in totals.items() if k != "tensorflow/train/transformer"]
    checks = [
        shape_check(
            "Debloat time scales with workload execution time "
            "(paper: TF/Train/Transformer is ~20x any other workload)",
            tf_tr > 5 * max(others),
            f"TF/Train/Transformer {tf_tr:,.0f}s vs max other "
            f"{max(others):,.0f}s",
        ),
        shape_check(
            "Pipeline overhead is a small multiple of the workload itself "
            "(paper: ~2-4x)",
            all(
                totals[k] < 8 * max(baselines[k], 1.0) for k in totals
            ),
            "total <= 8x original execution time for every workload",
        ),
    ]
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

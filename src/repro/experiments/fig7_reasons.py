"""Figure 7: why fatbin elements were removed.

Reason I: architecture mismatch (the library ships code for GPUs the
workload does not run on); Reason II: matching architecture but no used
kernels.  Paper shape: Reason I is >80% of removals in every workload -
"software bloat can stem from hardware".
"""

from __future__ import annotations

from repro.analysis.reasons import reason_breakdown
from repro.experiments.common import DEFAULT_SCALE, shape_check, table1_reports
from repro.utils.tables import Table

ID = "fig7"
TITLE = "Figure 7: element-removal reasons per workload"


def run(scale: float = DEFAULT_SCALE) -> str:
    table = Table(
        ["Workload", "Removed", "Reason I %", "Reason II %"], title=TITLE
    )
    shares = []
    for spec, report in table1_reports(scale):
        b = reason_breakdown(report)
        table.add_row(
            spec.workload_id,
            b.removed_total,
            f"{b.reason_i_pct:.1f}",
            f"{b.reason_ii_pct:.1f}",
        )
        shares.append(b.reason_i_pct)

    checks = [
        shape_check(
            "Reason I (arch mismatch) dominates removals in every workload "
            "(paper: >80%)",
            min(shares) > 80.0,
            f"min Reason-I share {min(shares):.1f}%",
        )
    ]
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Shared experiment harness: cached pipelines + rendering helpers.

Running the Negativa-ML pipeline for one workload takes a few seconds at
the default entity scale; experiments share results through a module-level
cache keyed by the full run identity (workload, device, world size, loading
mode, scale) so regenerating all tables runs each pipeline once.
"""

from __future__ import annotations

from repro.core.debloat import Debloater, DebloatOptions
from repro.core.report import WorkloadDebloatReport
from repro.frameworks.catalog import get_framework
from repro.frameworks.spec import Framework
from repro.utils.units import fmt_count, fmt_mb, pct_reduction
from repro.workloads.spec import TABLE1_WORKLOADS, WorkloadSpec

#: Default entity-count scale for experiments.  Byte sizes are always
#: paper-magnitude; counts (functions/kernels/elements) scale linearly, and
#: all reduction *percentages* are scale-invariant.  Use ``--scale 1.0`` for
#: paper-magnitude counts.
DEFAULT_SCALE = 0.125

_REPORT_CACHE: dict[tuple, WorkloadDebloatReport] = {}


def _workload_key(spec: WorkloadSpec, scale: float) -> tuple:
    return (
        spec.workload_id,
        spec.dataset.name,
        spec.batch_size,
        spec.epochs,
        spec.device_name,
        spec.world_size,
        spec.loading_mode.value,
        scale,
    )


def framework_for(spec: WorkloadSpec, scale: float = DEFAULT_SCALE) -> Framework:
    return get_framework(spec.framework, scale=scale)


def report_for(
    spec: WorkloadSpec,
    scale: float = DEFAULT_SCALE,
    options: DebloatOptions | None = None,
) -> WorkloadDebloatReport:
    """Run (or fetch cached) the full debloat pipeline for a workload."""
    key = _workload_key(spec, scale)
    if options is not None:
        key = key + (id(type(options)), options)
    cached = _REPORT_CACHE.get(key)
    if cached is not None:
        return cached
    framework = framework_for(spec, scale)
    debloater = Debloater(framework, options or DebloatOptions())
    report = debloater.debloat(spec)
    _REPORT_CACHE[key] = report
    return report


def table1_reports(
    scale: float = DEFAULT_SCALE,
) -> list[tuple[WorkloadSpec, WorkloadDebloatReport]]:
    """Pipeline reports for all ten Table-1 workloads."""
    return [(spec, report_for(spec, scale)) for spec in TABLE1_WORKLOADS]


def clear_report_cache() -> None:
    _REPORT_CACHE.clear()


# -- rendering helpers ---------------------------------------------------------------


def cell_mb(before: int, after: int) -> str:
    """The paper's ``<MB> (<reduction %>)`` cell."""
    return f"{fmt_mb(before)} ({pct_reduction(before, after):.0f})"


def cell_count(before: int, after: int) -> str:
    return f"{fmt_count(before)} ({pct_reduction(before, after):.0f})"


def workload_row_labels(spec: WorkloadSpec) -> tuple[str, str, str]:
    """(model, framework:version, operation) display labels."""
    fw = framework_for(spec, DEFAULT_SCALE).spec
    return (
        spec.model.display_name,
        f"{_fw_display(spec.framework)}:{fw.version}",
        spec.operation.capitalize(),
    )


def _fw_display(name: str) -> str:
    return {
        "pytorch": "PyTorch",
        "tensorflow": "TensorFlow",
        "vllm": "vLLM",
        "transformers": "Transformers",
    }.get(name, name)


def shape_check(label: str, ok: bool, detail: str = "") -> str:
    """A pass/fail line tying measured output to the paper's claim."""
    mark = "PASS" if ok else "DEVIATION"
    suffix = f" - {detail}" if detail else ""
    return f"[{mark}] {label}{suffix}"

"""Shared experiment harness: the cross-experiment pipeline cache + rendering.

Running the Negativa-ML pipeline for one workload takes a few seconds at the
default entity scale, and the ~19 table/figure experiments overwhelmingly
re-request the same (workload, scale) pipelines.  :class:`PipelineCache`
memoizes :class:`~repro.core.report.WorkloadDebloatReport` objects so each
pipeline runs once per process and every experiment after the first is pure
rendering.

**Cache key.**  ``(workload_id, dataset, batch_size, epochs, device,
world_size, loading_mode, framework, scale, frozen(options))`` - the full
run identity.  ``options`` (a :class:`~repro.core.debloat.DebloatOptions`)
is frozen recursively into a hashable tuple, so two option objects with
equal fields share an entry and any field change (ablation flags, cost
model, top-N) misses.

**Invalidation hook.**  :meth:`PipelineCache.invalidate` drops entries by
``workload_id``/``framework``/``scale`` filters (no filter = everything) and
returns the eviction count; use it after mutating a framework build or cost
model mid-process.  ``clear_report_cache()`` remains as the historical
alias.  Set the environment variable ``REPRO_PIPELINE_CACHE=0`` (or call
``PIPELINE_CACHE.configure(enabled=False)``) to bypass caching entirely -
outputs are byte-identical either way, it only costs recomputation.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from repro.core.debloat import Debloater, DebloatOptions
from repro.core.report import WorkloadDebloatReport
from repro.frameworks.catalog import get_framework
from repro.frameworks.spec import Framework
from repro.utils.units import fmt_count, fmt_mb, pct_reduction
from repro.workloads.spec import TABLE1_WORKLOADS, WorkloadSpec

#: Default entity-count scale for experiments.  Byte sizes are always
#: paper-magnitude; counts (functions/kernels/elements) scale linearly, and
#: all reduction *percentages* are scale-invariant.  Use ``--scale 1.0`` for
#: paper-magnitude counts.
DEFAULT_SCALE = 0.125


def _freeze(value) -> object:
    """Recursively convert a value into a hashable cache-key component."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return tuple(
            (f.name, _freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    if isinstance(value, (str, int, float, bool, bytes)) or value is None:
        return value
    return repr(value)


@dataclass
class PipelineCache:
    """Memoizes debloat pipeline reports across experiments."""

    enabled: bool = field(
        default_factory=lambda: os.environ.get("REPRO_PIPELINE_CACHE", "1")
        not in ("0", "false", "no")
    )
    hits: int = 0
    misses: int = 0
    _store: dict[tuple, WorkloadDebloatReport] = field(default_factory=dict)

    @staticmethod
    def key(
        spec: WorkloadSpec, scale: float, options: DebloatOptions | None
    ) -> tuple:
        return (
            spec.workload_id,
            spec.dataset.name,
            spec.batch_size,
            spec.epochs,
            spec.device_name,
            spec.world_size,
            spec.loading_mode.value,
            spec.framework,
            scale,
            _freeze(options or DebloatOptions()),
        )

    def get_or_run(
        self,
        spec: WorkloadSpec,
        scale: float,
        options: DebloatOptions | None,
    ) -> WorkloadDebloatReport:
        key = self.key(spec, scale, options)
        if self.enabled:
            cached = self._store.get(key)
            if cached is not None:
                self.hits += 1
                return cached
        self.misses += 1
        framework = get_framework(spec.framework, scale=scale)
        debloater = Debloater(framework, options or DebloatOptions())
        report = debloater.debloat(spec)
        if self.enabled:
            self._store[key] = report
        return report

    def invalidate(
        self,
        workload_id: str | None = None,
        framework: str | None = None,
        scale: float | None = None,
    ) -> int:
        """Drop matching entries (filters ANDed; no filters drops everything)."""
        doomed = [
            key
            for key in self._store
            if (workload_id is None or key[0] == workload_id)
            and (framework is None or key[7] == framework)
            and (scale is None or key[8] == scale)
        ]
        for key in doomed:
            del self._store[key]
        return len(doomed)

    def configure(self, enabled: bool) -> None:
        self.enabled = enabled
        if not enabled:
            self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
        }


#: The process-wide cache every experiment shares.
PIPELINE_CACHE = PipelineCache()


def framework_for(spec: WorkloadSpec, scale: float = DEFAULT_SCALE) -> Framework:
    return get_framework(spec.framework, scale=scale)


def report_for(
    spec: WorkloadSpec,
    scale: float = DEFAULT_SCALE,
    options: DebloatOptions | None = None,
) -> WorkloadDebloatReport:
    """Run (or fetch cached) the full debloat pipeline for a workload."""
    return PIPELINE_CACHE.get_or_run(spec, scale, options)


def table1_reports(
    scale: float = DEFAULT_SCALE,
) -> list[tuple[WorkloadSpec, WorkloadDebloatReport]]:
    """Pipeline reports for all ten Table-1 workloads."""
    return [(spec, report_for(spec, scale)) for spec in TABLE1_WORKLOADS]


def clear_report_cache() -> None:
    """Historical alias for a full :meth:`PipelineCache.invalidate`."""
    PIPELINE_CACHE.invalidate()


# -- rendering helpers ---------------------------------------------------------------


def cell_mb(before: int, after: int) -> str:
    """The paper's ``<MB> (<reduction %>)`` cell."""
    return f"{fmt_mb(before)} ({pct_reduction(before, after):.0f})"


def cell_count(before: int, after: int) -> str:
    return f"{fmt_count(before)} ({pct_reduction(before, after):.0f})"


def workload_row_labels(spec: WorkloadSpec) -> tuple[str, str, str]:
    """(model, framework:version, operation) display labels."""
    fw = framework_for(spec, DEFAULT_SCALE).spec
    return (
        spec.model.display_name,
        f"{_fw_display(spec.framework)}:{fw.version}",
        spec.operation.capitalize(),
    )


def _fw_display(name: str) -> str:
    return {
        "pytorch": "PyTorch",
        "tensorflow": "TensorFlow",
        "vllm": "vLLM",
        "transformers": "Transformers",
    }.get(name, name)


def shape_check(label: str, ok: bool, detail: str = "") -> str:
    """A pass/fail line tying measured output to the paper's claim."""
    mark = "PASS" if ok else "DEVIATION"
    suffix = f" - {detail}" if detail else ""
    return f"[{mark}] {label}{suffix}"

"""Shared experiment harness: the two-tier pipeline cache + rendering.

Running the Negativa-ML pipeline for one workload takes a few seconds at the
default entity scale, and the ~19 table/figure experiments overwhelmingly
re-request the same (workload, scale) pipelines.  :class:`PipelineCache`
memoizes :class:`~repro.core.report.WorkloadDebloatReport` objects in two
tiers: tier 0 in memory (each pipeline runs once per process) and tier 1 on
disk (:class:`~repro.experiments.diskcache.DiskReportCache` - serialized
reports persisted across processes, so a warm CLI or benchmark invocation
performs *zero* instrumented workload runs and every experiment is pure
rendering).

**Cache key.**  ``(workload_id, dataset, batch_size, epochs, device,
world_size, loading_mode, framework, scale, frozen(options))`` - the full
run identity.  ``options`` (a :class:`~repro.core.debloat.DebloatOptions`)
is frozen recursively into a hashable tuple, so two option objects with
equal fields share an entry and any field change (ablation flags, cost
model, top-N) misses.  Disk entries additionally key on the framework-build
fingerprint (:func:`~repro.frameworks.catalog.framework_build_fingerprint`),
so persisted reports never survive a change to the generated library set.

**Invalidation hook.**  :meth:`PipelineCache.invalidate` drops entries by
``workload_id``/``framework``/``scale`` filters (no filter = everything)
from *both* tiers - memory entries and matching disk files - and returns
the total eviction count; use it after mutating a framework build or cost
model.  ``clear_report_cache()`` remains as the historical alias.

**Environment.**

* ``REPRO_PIPELINE_CACHE=0`` - bypass caching entirely (both tiers; also
  ``PIPELINE_CACHE.configure(enabled=False)`` or the CLIs' ``--no-cache``);
* ``REPRO_PIPELINE_DISK_CACHE=0`` - keep the in-memory tier but never read
  or write disk (CLI ``--no-disk-cache``);
* ``REPRO_PIPELINE_CACHE_DIR`` - disk-tier directory (default
  ``~/.cache/repro-debloat``; CLI ``--cache-dir``).

Outputs are byte-identical with the cache cold, warm, or disabled - caching
only ever costs or saves recomputation.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from repro.core.debloat import Debloater, DebloatOptions
from repro.core.report import WorkloadDebloatReport
from repro.cuda.arch import SHIPPED_ARCHITECTURES
from repro.experiments.diskcache import DiskReportCache
from repro.frameworks.catalog import framework_build_fingerprint, get_framework
from repro.frameworks.spec import Framework
from repro.utils.freeze import freeze as _freeze
from repro.utils.units import fmt_count, fmt_mb, pct_reduction
from repro.workloads.metrics import RunMetrics
from repro.workloads.spec import TABLE1_WORKLOADS, WorkloadSpec

#: Default entity-count scale for experiments.  Byte sizes are always
#: paper-magnitude; counts (functions/kernels/elements) scale linearly, and
#: all reduction *percentages* are scale-invariant.  Use ``--scale 1.0`` for
#: paper-magnitude counts.
DEFAULT_SCALE = 0.125


@dataclass
class PipelineCache:
    """Memoizes debloat pipeline reports across experiments and processes.

    Tier 0 is the in-memory store; tier 1 is :attr:`disk`.  A memory miss
    consults the disk tier (keyed on the run identity plus the framework
    build fingerprint) before recomputing, and a recompute populates both
    tiers, so one warm process seeds every later one.
    """

    enabled: bool = field(
        default_factory=lambda: os.environ.get("REPRO_PIPELINE_CACHE", "1")
        not in ("0", "false", "no")
    )
    hits: int = 0
    misses: int = 0
    _store: dict[tuple, WorkloadDebloatReport] = field(default_factory=dict)
    _values: dict[tuple, object] = field(default_factory=dict)
    disk: DiskReportCache = field(default_factory=DiskReportCache)

    @staticmethod
    def key(
        spec: WorkloadSpec,
        scale: float,
        options: DebloatOptions | None,
        archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
    ) -> tuple:
        # locate_workers / locate_workers_mode are pure tuning knobs -
        # reports are deterministic for any worker count or fan-out mode
        # (see DebloatOptions) - so they are normalized out of the
        # identity: runs with different fan-out share an entry.  The mode
        # field is *excluded* (not just defaulted) from the frozen tuple so
        # keys - and therefore the disk-tier digests of entries persisted
        # before the field existed - stay byte-identical.
        options = dataclasses.replace(
            options or DebloatOptions(), locate_workers=0
        )
        frozen_options = tuple(
            item
            for item in _freeze(options)
            if item[0] != "locate_workers_mode"
        )
        return (
            *spec_run_identity(spec),
            spec.framework,
            scale,
            frozen_options,
            tuple(archs),
        )

    def get_or_run(
        self,
        spec: WorkloadSpec,
        scale: float,
        options: DebloatOptions | None,
        archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
        provenance: dict | None = None,
    ) -> WorkloadDebloatReport:
        """Fetch (or compute) a pipeline report.

        ``provenance``, when given, receives ``{"source": "memory" |
        "disk" | "computed"}`` - the engine facade surfaces it on every
        :class:`~repro.api.requests.EngineResult`.
        """
        if provenance is not None:
            provenance["source"] = "computed"
        key = self.key(spec, scale, options, archs)
        fingerprint: str | None = None
        if self.enabled:
            cached = self._store.get(key)
            if cached is not None:
                self.hits += 1
                if provenance is not None:
                    provenance["source"] = "memory"
                return cached
            if self.disk.enabled:
                fingerprint = framework_build_fingerprint(
                    spec.framework, scale, archs
                )
                report = self.disk.get(key, fingerprint)
                if report is not None:
                    self._store[key] = report
                    if provenance is not None:
                        provenance["source"] = "disk"
                    return report
        self.misses += 1
        framework = get_framework(spec.framework, scale=scale, archs=archs)
        debloater = Debloater(framework, options or DebloatOptions())
        report = debloater.debloat(spec)
        if self.enabled:
            self._store[key] = report
            if self.disk.enabled:
                if fingerprint is None:
                    fingerprint = framework_build_fingerprint(
                        spec.framework, scale, archs
                    )
                self.disk.put(key, fingerprint, report)
        return report

    def get_or_run_value(
        self,
        spec: WorkloadSpec,
        scale: float,
        kind: str,
        extra: tuple,
        compute,
        archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
    ):
        """Two-tier cache for non-report pipeline byproducts.

        A handful of experiments measure things a
        :class:`~repro.core.report.WorkloadDebloatReport` does not carry -
        tool-overhead run metrics, ablation outcomes.  ``compute`` runs the
        (expensive, workload-executing) measurement and returns a payload
        tree (:func:`repro.core.serialize.value_dumps`-compatible); the
        result is cached under the same run identity + build fingerprint
        discipline as reports, with ``kind``/``extra`` distinguishing the
        measurement.  Warm processes therefore skip these workload runs
        too.
        """
        # Same layout as a report key minus the (meaningless here) options
        # component at index 9; archs stays in, and indices 0/7/8 keep the
        # workload/framework/scale positions invalidate() filters on.
        base = self.key(spec, scale, None, archs)
        key = base[:9] + base[10:] + (kind, *extra)
        if self.enabled:
            cached = self._values.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            if self.disk.enabled:
                fingerprint = framework_build_fingerprint(
                    spec.framework, scale, archs
                )
                value = self.disk.get_value(key, fingerprint, kind)
                if value is not None:
                    self._values[key] = value
                    return value
        self.misses += 1
        value = compute()
        if self.enabled:
            self._values[key] = value
            if self.disk.enabled:
                fingerprint = framework_build_fingerprint(
                    spec.framework, scale, archs
                )
                self.disk.put_value(key, fingerprint, kind, value)
        return value

    def library_index(
        self,
        lib,
        framework_name: str,
        scale: float,
        archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
    ) -> tuple["KernelUsageIndex", str]:
        """Two-tier :class:`~repro.core.kindex.KernelUsageIndex` lookup.

        Tier 0 is the per-``SharedLibrary`` attribute cache
        (:func:`~repro.core.kindex.index_for`); tier 1 persists the index
        arrays on disk keyed on the framework-build fingerprint, so a warm
        engine skips even the one-time fatbin walk and per-name hashing.
        Returns ``(index, source)`` with source ``memory``/``disk``/
        ``computed``; corrupted or cross-wired entries are misses that
        recompute and overwrite.
        """
        from repro.core import kindex
        from repro.errors import CacheError

        use_disk = self.enabled and self.disk.enabled
        key = fingerprint = None
        if use_disk:
            key = _kindex_key(framework_name, scale, archs, lib.soname)
            fingerprint = framework_build_fingerprint(
                framework_name, scale, archs
            )
        target = (
            str(self.disk.path_for(key, fingerprint, kindex.INDEX_KIND))
            if use_disk
            else None
        )
        cached = kindex.cached_index(lib)
        if cached is not None:
            # Write-through once per library and cache location: an index
            # built before this cache saw it (a plain pipeline run earlier
            # in the process) still warms the next process.
            if use_disk and getattr(
                lib, "_kernel_usage_index_persisted", None
            ) != target:
                self.disk.put_value(
                    key, fingerprint, kindex.INDEX_KIND,
                    kindex.index_to_payload(cached),
                )
                lib._kernel_usage_index_persisted = target
            return cached, "memory"
        if use_disk:
            value = self.disk.get_value(key, fingerprint, kindex.INDEX_KIND)
            if value is not None:
                try:
                    index = kindex.index_from_payload(value)
                except CacheError:
                    index = None
                if index is not None and kindex.index_matches_library(
                    index, lib
                ):
                    kindex.remember_index(lib, index)
                    lib._kernel_usage_index_persisted = target
                    return index, "disk"
                # Decodable-but-wrong entries count like corrupt ones and
                # fall through to a recompute that overwrites the file.
                self.disk.errors += 1
        index = kindex.index_for(lib)
        if use_disk:
            self.disk.put_value(
                key, fingerprint, kindex.INDEX_KIND,
                kindex.index_to_payload(index),
            )
            lib._kernel_usage_index_persisted = target
        return index, "computed"

    def invalidate(
        self,
        workload_id: str | None = None,
        framework: str | None = None,
        scale: float | None = None,
    ) -> int:
        """Drop matching entries from BOTH tiers (no filters = everything).

        Filters are ANDed.  Returns the total eviction count: in-memory
        entries plus disk files removed.
        """
        evicted = 0
        for store in (self._store, self._values):
            doomed = [
                key
                for key in store
                if (workload_id is None or key[0] == workload_id)
                and (framework is None or key[7] == framework)
                and (scale is None or key[8] == scale)
            ]
            for key in doomed:
                del store[key]
            evicted += len(doomed)
        evicted += self.disk.invalidate(
            workload_id=workload_id, framework=framework, scale=scale
        )
        return evicted

    def configure(
        self,
        enabled: bool | None = None,
        disk_enabled: bool | None = None,
        cache_dir: str | os.PathLike | None = None,
        quarantine: bool | None = None,
    ) -> None:
        """Adjust either tier in place (None leaves a setting unchanged)."""
        if enabled is not None:
            self.enabled = enabled
            if not enabled:
                self._store.clear()
                self._values.clear()
        self.disk.configure(
            directory=cache_dir, enabled=disk_enabled, quarantine=quarantine
        )

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._store),
            "value_entries": len(self._values),
            "hits": self.hits,
            "misses": self.misses,
            **self.disk.stats(),
        }


#: The process-wide cache every experiment shares.
PIPELINE_CACHE = PipelineCache()


def _kindex_key(
    framework_name: str,
    scale: float,
    archs: tuple[int, ...],
    soname: str,
) -> tuple:
    """Disk-cache key of one library's persisted kernel-usage index.

    Mirrors the :meth:`PipelineCache.key` positional contract the disk
    tier's file naming and filtered invalidation rely on: index 0 is the
    (pseudo) workload id, 7 the framework, 8 the scale.  The ``kindex/``
    prefix keeps these ids disjoint from every real workload's.
    """
    return (
        f"kindex/{soname}",
        "kindex",
        0,
        0,
        "",
        0,
        "",
        framework_name,
        float(scale),
        tuple(archs),
    )


def spec_run_identity(spec: WorkloadSpec) -> tuple:
    """The per-workload component of every cache key.

    The single place a workload's run identity is enumerated: any new
    identity-bearing :class:`WorkloadSpec` field must be added here, and
    every key that covers a workload (pipeline reports, cached values, the
    saturation curve's whole-catalog key) picks it up automatically.
    """
    return (
        spec.workload_id,
        spec.dataset.name,
        spec.batch_size,
        spec.epochs,
        spec.device_name,
        spec.world_size,
        spec.loading_mode.value,
    )


def framework_for(spec: WorkloadSpec, scale: float = DEFAULT_SCALE) -> Framework:
    return get_framework(spec.framework, scale=scale)


def pipeline_report(
    spec: WorkloadSpec,
    scale: float = DEFAULT_SCALE,
    options: DebloatOptions | None = None,
    archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
) -> WorkloadDebloatReport:
    """Run (or fetch cached) the full debloat pipeline for a workload.

    The experiments' canonical path: a thin adapter over the process-wide
    :class:`~repro.api.engine.DebloatEngine`, which routes through
    :data:`PIPELINE_CACHE` - outputs are byte-identical to the pre-engine
    ``report_for``.  ``archs`` selects the framework *build* (which fatbin
    architectures the generated libraries ship); the architecture ablation
    debloats a single-arch rebuild through the same cache.
    """
    from repro.api import DebloatRequest, default_engine

    return default_engine().debloat(
        DebloatRequest(spec=spec, scale=scale, options=options, archs=archs)
    ).report


def report_for(
    spec: WorkloadSpec,
    scale: float = DEFAULT_SCALE,
    options: DebloatOptions | None = None,
    archs: tuple[int, ...] = SHIPPED_ARCHITECTURES,
) -> WorkloadDebloatReport:
    """Deprecated alias of :func:`pipeline_report` (the pre-API entry point).

    Returns the byte-identical report the engine produces; new code should
    call :meth:`repro.api.DebloatEngine.debloat` (or :func:`pipeline_report`
    inside the experiments package).
    """
    import warnings

    warnings.warn(
        "report_for is deprecated; use repro.api.DebloatEngine.debloat "
        "(or repro.experiments.common.pipeline_report)",
        DeprecationWarning,
        stacklevel=2,
    )
    return pipeline_report(spec, scale, options, archs)


def instrumented_run_metrics(
    spec: WorkloadSpec, scale: float, instrument: str
) -> tuple[RunMetrics, dict[str, int]]:
    """Cached single workload run: clean, detector-attached, or NSys-traced.

    Returns the run's metrics plus the attached tool's summary counters
    (empty for a clean run).  The overhead experiments (§4.6 and the
    detector-scaling ablation) compare runs that exist *outside* any
    debloat pipeline; routing them through the cached-value tier means a
    warm process renders them without executing a single workload run.
    """
    from repro.core import serialize

    def compute() -> dict:
        from repro.core.detect import KernelDetector
        from repro.core.nsys import NsysTracer
        from repro.workloads.runner import WorkloadRunner

        framework = get_framework(spec.framework, scale=scale)
        if instrument == "none":
            metrics = WorkloadRunner(spec, framework).run()
            stats: dict[str, int] = {}
        elif instrument == "detector":
            detector = KernelDetector()
            metrics = WorkloadRunner(
                spec, framework, subscribers=(detector,)
            ).run()
            stats = {
                "interceptions": detector.interceptions,
                "detected_kernels": detector.total_detected(),
            }
        elif instrument == "nsys":
            nsys = NsysTracer()
            metrics = WorkloadRunner(
                spec, framework, subscribers=(nsys,)
            ).run()
            stats = {
                "launch_records": nsys.launch_records,
                "misc_records": nsys.misc_records,
            }
        else:
            raise ValueError(f"unknown instrument {instrument!r}")
        return {
            "metrics": serialize.metrics_to_payload(metrics),
            "stats": stats,
        }

    value = PIPELINE_CACHE.get_or_run_value(
        spec, scale, "instrumented_run", (instrument,), compute
    )
    metrics = serialize.metrics_from_payload(value["metrics"])
    return metrics, {k: int(v) for k, v in value["stats"].items()}


def used_bloat_report(spec: WorkloadSpec, scale: float):
    """Cached §5 used-bloat analysis (one workload run on a cold cache)."""
    import dataclasses

    from repro.core.usedbloat import LibraryUsedBloat, UsedBloatReport

    def compute() -> dict:
        from repro.core.usedbloat import analyze_used_bloat

        report = analyze_used_bloat(
            spec, get_framework(spec.framework, scale=scale)
        )
        return {
            "libraries": [dataclasses.asdict(lib) for lib in report.libraries]
        }

    value = PIPELINE_CACHE.get_or_run_value(
        spec, scale, "used_bloat", (), compute
    )
    return UsedBloatReport(
        workload_id=spec.workload_id,
        libraries=[
            LibraryUsedBloat(
                soname=lib["soname"],
                used_functions=int(lib["used_functions"]),
                startup_only_functions=int(lib["startup_only_functions"]),
                used_bytes=int(lib["used_bytes"]),
                startup_only_bytes=int(lib["startup_only_bytes"]),
            )
            for lib in value["libraries"]
        ],
    )


def table1_reports(
    scale: float = DEFAULT_SCALE,
) -> list[tuple[WorkloadSpec, WorkloadDebloatReport]]:
    """Pipeline reports for all ten Table-1 workloads."""
    return [(spec, pipeline_report(spec, scale)) for spec in TABLE1_WORKLOADS]


def clear_report_cache() -> None:
    """Historical alias for a full :meth:`PipelineCache.invalidate`."""
    PIPELINE_CACHE.invalidate()


# -- rendering helpers ---------------------------------------------------------------


def cell_mb(before: int, after: int) -> str:
    """The paper's ``<MB> (<reduction %>)`` cell."""
    return f"{fmt_mb(before)} ({pct_reduction(before, after):.0f})"


def cell_count(before: int, after: int) -> str:
    return f"{fmt_count(before)} ({pct_reduction(before, after):.0f})"


def workload_row_labels(spec: WorkloadSpec) -> tuple[str, str, str]:
    """(model, framework:version, operation) display labels."""
    fw = framework_for(spec, DEFAULT_SCALE).spec
    return (
        spec.model.display_name,
        f"{_fw_display(spec.framework)}:{fw.version}",
        spec.operation.capitalize(),
    )


def _fw_display(name: str) -> str:
    return {
        "pytorch": "PyTorch",
        "tensorflow": "TensorFlow",
        "vllm": "vLLM",
        "transformers": "Transformers",
    }.get(name, name)


def shape_check(label: str, ok: bool, detail: str = "") -> str:
    """A pass/fail line tying measured output to the paper's claim."""
    mark = "PASS" if ok else "DEVIATION"
    suffix = f" - {detail}" if detail else ""
    return f"[{mark}] {label}{suffix}"

"""§5 extension: union saturation under incremental admission, at scale.

The paper's discussion argues that code unused by one workload is rarely
needed by others, so the union of workload usage saturates after a handful
of workloads.  This experiment drives the serving subsystem
(:class:`~repro.serving.store.DebloatStore`) through the full Table-1
workload catalog, admitting one workload at a time per framework, and
renders the marginal-retention curve: kernels/functions each admission adds
to the union, how many libraries its delta actually re-compacted versus
served untouched, and the cumulative debloated size.

Expected shape: the first admission pins the bulk of the union; later
admissions add a fast-shrinking margin and touch a fast-shrinking set of
libraries - the static justification for serving many workloads from one
shared debloated store.

Admission detection routes through the two-tier pipeline cache (kind
``admission_usage``) and the rendered curve itself through the cached-value
tier, so a warm process renders this experiment with zero workload runs.
"""

from __future__ import annotations

from repro.core.debloat import DebloatOptions
from repro.experiments.common import DEFAULT_SCALE, shape_check
from repro.frameworks.catalog import FRAMEWORK_NAMES, get_framework
from repro.utils.tables import Table
from repro.utils.units import fmt_mb, pct_reduction
from repro.workloads.spec import TABLE1_WORKLOADS

ID = "sec5_saturation"
TITLE = "SS5 extension: union saturation under incremental admission"


def _compute_framework(fw_name: str, scale: float) -> dict:
    from repro.serving.store import DebloatStore

    specs = [s for s in TABLE1_WORKLOADS if s.framework == fw_name]
    framework = get_framework(fw_name, scale=scale)
    store = DebloatStore(framework, DebloatOptions(), use_cache=True)
    rows = []
    for i, spec in enumerate(specs):
        res = store.admit(spec)
        snap = store.snapshot()
        rows.append(
            {
                "framework": fw_name,
                "index": i,
                "workload": spec.workload_id,
                "new_kernels": res.new_kernels,
                "new_functions": res.new_functions,
                "recompacted": len(res.recompacted),
                "untouched": len(res.untouched),
                "added_libraries": len(res.added_libraries),
                "union_kernels": snap.union_kernels,
                "file_before": res.union_file_size,
                "file_after": res.union_file_size_after,
                "locate_compact_s": res.locate_compact_s,
                "detection_s": res.detection_run_s,
            }
        )
    return {"rows": rows}


def run(scale: float = DEFAULT_SCALE) -> str:
    from repro.experiments.common import PIPELINE_CACHE, spec_run_identity
    from repro.frameworks.catalog import framework_build_fingerprint

    # One cached value PER framework, keyed under that framework's first
    # catalog workload, so PIPELINE_CACHE.invalidate(framework=...) /
    # invalidate(workload_id=<first spec>) evicts exactly that framework's
    # curve.  The extra component carries every admitted workload's run
    # identity plus the build fingerprint - adding, removing, or
    # re-parameterizing any catalog workload invalidates its framework's
    # entry.
    rows = []
    for fw_name in FRAMEWORK_NAMES:
        specs = [s for s in TABLE1_WORKLOADS if s.framework == fw_name]
        if not specs:
            continue
        extra = (
            tuple(spec_run_identity(s) for s in specs),
            framework_build_fingerprint(fw_name, scale),
        )
        value = PIPELINE_CACHE.get_or_run_value(
            specs[0],
            scale,
            "saturation_curve",
            extra,
            lambda fw_name=fw_name: _compute_framework(fw_name, scale),
        )
        rows.extend(value["rows"])

    table = Table(
        [
            "Workload (admission order)",
            "New kernels",
            "New fns",
            "Libs redone",
            "Libs served",
            "Union MB after (red%)",
            "Admit s",
        ],
        title=TITLE,
    )
    for row in rows:
        table.add_row(
            f"{row['index'] + 1}. {row['workload']}",
            f"{int(row['new_kernels']):,}",
            f"{int(row['new_functions']):,}",
            f"{int(row['recompacted'])}",
            f"{int(row['untouched'])}",
            f"{fmt_mb(int(row['file_after']))} "
            f"({pct_reduction(int(row['file_before']), int(row['file_after'])):.0f})",
            f"{row['locate_compact_s']:,.0f}",
        )

    by_fw: dict[str, list[dict]] = {}
    for row in rows:
        by_fw.setdefault(row["framework"], []).append(row)
    multi = {fw: r for fw, r in by_fw.items() if len(r) > 1}

    first_dominates = all(
        r[0]["new_kernels"] > max(x["new_kernels"] for x in r[1:])
        for r in multi.values()
    )
    later = [x for r in multi.values() for x in r[1:]]
    deltas_shrink = all(x["untouched"] > 0 for x in later) and all(
        x["recompacted"] < r[0]["recompacted"]
        for r in multi.values()
        for x in r[1:]
    )
    costs_fall = all(
        r[-1]["locate_compact_s"] < r[0]["locate_compact_s"]
        for r in multi.values()
    )

    checks = [
        shape_check(
            "First admission pins the bulk of the union (paper SS5: usage "
            "saturates)",
            first_dominates,
            "first marginal > every later marginal, per framework",
        ),
        shape_check(
            "Later admissions are deltas: untouched libraries are served "
            "from the store without re-compaction",
            deltas_shrink,
            f"{sum(x['untouched'] for x in later)} library servings skipped "
            f"re-compaction across {len(later)} later admissions",
        ),
        shape_check(
            "Admission cost falls as the union saturates",
            costs_fall,
            "last admission's locate+compact < first's, per framework",
        ),
    ]
    note = (
        "One DebloatStore per framework admits its Table-1 workloads in "
        "catalog order; 'Libs redone' counts libraries whose union usage "
        "actually grew (delta re-locate/re-compact), 'Libs served' the "
        "ones handed out untouched.  Admission detection and this curve "
        "are served from the pipeline cache when warm: zero workload runs."
    )
    return table.render() + "\n" + note + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 7: runtime improvements on the H100 under eager vs lazy loading.

Paper shape: under eager loading debloating saves real CPU memory (the
whole retained file stays resident); under lazy loading CPU memory savings
collapse to ~0 (only touched pages were resident to begin with); GPU memory
savings are ~0 in both modes for these frameworks; execution time improves
in both modes (less file to read), more under eager.
"""

from __future__ import annotations

from repro.cuda.driver import LoadingMode
from repro.experiments.common import DEFAULT_SCALE, pipeline_report, shape_check
from repro.experiments.table6_h100_sizes import h100_variants
from repro.utils.tables import Table
from repro.utils.units import pct_reduction

ID = "table7"
TITLE = "Table 7: runtime on 1x H100 with debloated libraries, eager vs lazy"


def run(scale: float = DEFAULT_SCALE) -> str:
    table = Table(
        [
            "Framework", "Mode", "Peak CPU Mem/MB", "Peak GPU Mem/MB",
            "Exec Time/s",
        ],
        title=TITLE,
    )
    reds: dict[tuple[str, LoadingMode], tuple[float, float, float]] = {}
    for fw, mode, report in h100_variants(scale):
        base, after = report.baseline, report.debloated_run
        assert after is not None
        cpu_red = pct_reduction(base.peak_cpu_mem_bytes, after.peak_cpu_mem_bytes)
        gpu_red = pct_reduction(base.peak_gpu_mem_bytes, after.peak_gpu_mem_bytes)
        t_red = pct_reduction(base.execution_time_s, after.execution_time_s)
        table.add_row(
            fw,
            mode.value.capitalize(),
            f"{base.peak_cpu_mem_mb:,.0f} ({cpu_red:.1f})",
            f"{base.peak_gpu_mem_mb:,.0f} ({gpu_red:.1f})",
            f"{base.execution_time_s:,.0f} ({t_red:.1f})",
        )
        reds[(fw, mode)] = (cpu_red, gpu_red, t_red)

    checks = []
    for fw in ("vllm", "transformers"):
        eager = reds[(fw, LoadingMode.EAGER)]
        lazy = reds[(fw, LoadingMode.LAZY)]
        checks.append(
            shape_check(
                f"{fw}: CPU-memory savings collapse under lazy loading "
                "(paper: 12-18% eager vs ~0.3% lazy)",
                eager[0] > 5.0 and lazy[0] < 2.0,
                f"eager {eager[0]:.1f}% vs lazy {lazy[0]:.1f}%",
            )
        )
        checks.append(
            shape_check(
                f"{fw}: GPU-memory savings near zero in both modes "
                "(paper: 0.0-2.4%)",
                eager[1] < 8.0 and lazy[1] < 8.0,
                f"eager {eager[1]:.1f}% / lazy {lazy[1]:.1f}%",
            )
        )
        checks.append(
            shape_check(
                f"{fw}: execution time improves in both modes, more under "
                "eager (paper: 13.9/8.3 and 32.0/20.3)",
                eager[2] > lazy[2] > 0.0,
                f"eager {eager[2]:.1f}% vs lazy {lazy[2]:.1f}%",
            )
        )
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Experiment registry: id -> module, for the CLI and the benchmarks."""

from __future__ import annotations

from types import ModuleType

from repro.experiments import (
    ablation_arch,
    ablation_detector_scaling,
    ablation_granularity,
    fig1_code_distribution,
    fig5_distributions,
    fig6_pareto,
    fig7_reasons,
    sec5_saturation,
    sec5_used_bloat,
    sec46_overhead,
    table1_workloads,
    table2_overall,
    table3_core_libs,
    table4_jaccard_torch,
    table5_runtime,
    table6_h100_sizes,
    table7_h100_runtime,
    table8_e2e_time,
    table9_jaccard_tf,
    table10_distributed,
)
from repro.errors import ConfigurationError

EXPERIMENTS: dict[str, ModuleType] = {
    module.ID: module
    for module in (
        fig1_code_distribution,
        table1_workloads,
        table2_overall,
        table3_core_libs,
        table4_jaccard_torch,
        table5_runtime,
        fig5_distributions,
        fig6_pareto,
        fig7_reasons,
        table6_h100_sizes,
        table7_h100_runtime,
        table8_e2e_time,
        sec46_overhead,
        sec5_used_bloat,
        sec5_saturation,
        table9_jaccard_tf,
        table10_distributed,
        ablation_granularity,
        ablation_arch,
        ablation_detector_scaling,
    )
}


def run_experiment(
    experiment_id: str, scale: float | None = None, fresh: bool = False
) -> str:
    """Run one experiment by id and return its rendered output.

    Experiments share pipeline results through
    :data:`repro.experiments.common.PIPELINE_CACHE`; pass ``fresh=True`` to
    invalidate the cache first and force this experiment to recompute every
    pipeline it touches (outputs are byte-identical either way).
    """
    module = EXPERIMENTS.get(experiment_id)
    if module is None:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    if fresh:
        from repro.experiments.common import PIPELINE_CACHE

        PIPELINE_CACHE.invalidate()
    if scale is None:
        return module.run()
    return module.run(scale=scale)

"""Figure 1: CPU/GPU code distribution in the top-4 largest PyTorch
GPU-code libraries.

Paper values: libtorch_cuda.so 10.4% CPU / 86.7% GPU; libcudnn_cnn_infer
68.3% GPU; libcublasLt 78.2% GPU; libcusparse 91.7% GPU - GPU code
dominates every large ML shared library.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SCALE, shape_check
from repro.frameworks.catalog import get_framework
from repro.utils.tables import Table

ID = "fig1"
TITLE = "Figure 1: CPU vs GPU code share of the largest PyTorch libraries"


def run(scale: float = DEFAULT_SCALE) -> str:
    framework = get_framework("pytorch", scale=scale)
    gpu_libs = [lib for lib in framework.libraries.values() if lib.has_gpu_code]
    top4 = sorted(gpu_libs, key=lambda lib: lib.file_size, reverse=True)[:4]

    table = Table(
        ["Library", "File MB", "CPU code %", "GPU code %", "Others %"],
        title=TITLE,
    )
    min_gpu_share = 100.0
    for lib in top4:
        cpu_pct = 100.0 * lib.cpu_code_size / lib.file_size
        gpu_pct = 100.0 * lib.gpu_code_size / lib.file_size
        other_pct = 100.0 - cpu_pct - gpu_pct
        min_gpu_share = min(min_gpu_share, gpu_pct)
        table.add_row(
            lib.soname,
            f"{lib.file_size / (1 << 20):,.0f}",
            f"{cpu_pct:.1f}",
            f"{gpu_pct:.1f}",
            f"{other_pct:.1f}",
        )

    checks = [
        shape_check(
            "GPU code is the majority of every top library "
            "(paper: 68.3%-91.7%)",
            min_gpu_share > 50.0,
            f"min GPU share {min_gpu_share:.1f}%",
        )
    ]
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

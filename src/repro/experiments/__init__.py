"""Experiment reproductions: one module per paper table/figure.

Run ``python -m repro.experiments all`` (or a specific id like ``table2``)
to regenerate the paper's evaluation artifacts from the full pipeline.  See
``repro.experiments.registry`` for the experiment index and DESIGN.md for
the per-experiment mapping to modules.

Experiments never run a pipeline directly: they request reports through
:func:`repro.experiments.common.pipeline_report` - a thin adapter over the
process-wide :class:`repro.api.DebloatEngine` - which memoizes
``WorkloadDebloatReport`` objects in the process-wide
:data:`~repro.experiments.common.PIPELINE_CACHE`.  (``report_for`` survives
as a deprecation shim with byte-identical output.)  The cache key is the
full run identity - ``(workload_id, dataset, batch size, epochs, device,
world size, loading mode, framework, scale, frozen DebloatOptions)`` - so
regenerating every table runs each distinct pipeline exactly once and all
19 experiments share the results.  ``PIPELINE_CACHE.invalidate(...)`` is
the explicit invalidation hook (filter by workload/framework/scale), and
``REPRO_PIPELINE_CACHE=0`` disables caching without changing any output
byte.
"""

from repro.experiments.common import (
    DEFAULT_SCALE,
    PIPELINE_CACHE,
    pipeline_report,
    report_for,
    table1_reports,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "DEFAULT_SCALE",
    "EXPERIMENTS",
    "PIPELINE_CACHE",
    "pipeline_report",
    "report_for",
    "run_experiment",
    "table1_reports",
]

"""Experiment reproductions: one module per paper table/figure.

Run ``python -m repro.experiments all`` (or a specific id like ``table2``)
to regenerate the paper's evaluation artifacts from the full pipeline.  See
``repro.experiments.registry`` for the experiment index and DESIGN.md for
the per-experiment mapping to modules.
"""

from repro.experiments.common import DEFAULT_SCALE, report_for, table1_reports
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "DEFAULT_SCALE",
    "EXPERIMENTS",
    "report_for",
    "run_experiment",
    "table1_reports",
]

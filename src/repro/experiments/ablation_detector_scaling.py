"""Ablation: how detection overhead scales with workload length.

The paper's argument for hooking ``cuModuleGetFunction`` (§3.1): its cost
is paid once per *distinct kernel*, so the detector's absolute overhead is
flat in workload length, while NSys pays per *launch* and its overhead
grows linearly with epochs.  "Especially for long-running workloads like ML
training", the detector wins by a growing margin.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SCALE,
    instrumented_run_metrics,
    shape_check,
)
from repro.utils.tables import Table
from repro.workloads.spec import workload_by_id

ID = "ablation_detector_scaling"
TITLE = "Ablation: detection overhead vs training length (epochs)"


def run(scale: float = DEFAULT_SCALE) -> str:
    base_spec = workload_by_id("pytorch/train/mobilenetv2")

    table = Table(
        [
            "Epochs", "Original/s", "Detector overhead/s", "NSys overhead/s",
        ],
        title=TITLE,
    )
    det_abs, nsys_abs = [], []
    for epochs in (1, 2, 4):
        spec = base_spec.variant(epochs=epochs)
        base, _ = instrumented_run_metrics(spec, scale, "none")
        det, _ = instrumented_run_metrics(spec, scale, "detector")
        traced, _ = instrumented_run_metrics(spec, scale, "nsys")
        d = det.execution_time_s - base.execution_time_s
        n = traced.execution_time_s - base.execution_time_s
        det_abs.append(d)
        nsys_abs.append(n)
        table.add_row(
            epochs,
            f"{base.execution_time_s:,.0f}",
            f"{d:,.1f}",
            f"{n:,.1f}",
        )

    checks = [
        shape_check(
            "Detector absolute overhead is flat in epochs (once-per-kernel)",
            det_abs[-1] < 1.2 * det_abs[0] + 1.0,
            f"{det_abs[0]:.1f}s @1 epoch vs {det_abs[-1]:.1f}s @4 epochs",
        ),
        shape_check(
            "NSys overhead grows ~linearly with epochs (per-launch)",
            nsys_abs[-1] > 3.0 * nsys_abs[0],
            f"{nsys_abs[0]:.1f}s @1 epoch vs {nsys_abs[-1]:.1f}s @4 epochs",
        ),
    ]
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

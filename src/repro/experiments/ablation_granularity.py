"""Ablation: whole-element retention vs exact-kernel retention (paper §3.2).

The detector only sees CPU-launching kernels; GPU-launching kernels are
reachable solely through intra-cubin launch edges.  Whole-element retention
keeps them implicitly.  This ablation removes every undetected kernel
inside retained cubins and shows verification then fails with a broken
kernel-call graph - the reliability argument for the paper's design.
"""

from __future__ import annotations

from repro.experiments import common
from repro.experiments.common import DEFAULT_SCALE, shape_check
from repro.utils.tables import Table
from repro.workloads.spec import WorkloadSpec, workload_by_id

ID = "ablation_granularity"
TITLE = "Ablation: whole-element vs exact-kernel retention"


def _measure(spec: WorkloadSpec, scale: float) -> dict:
    """Debloat + re-run with exact-kernel removal; cache-value `compute`.

    The exact-kernel variant needs the concrete debloated library objects,
    which reports do not carry, so this runs its own pipeline - but only on
    a cold cache: the outcome (two booleans and an error string) persists
    through the cached-value tier.
    """
    from repro.core.compact import exact_kernel_removal
    from repro.core.debloat import Debloater
    from repro.errors import CudaError, LoaderError
    from repro.experiments.common import framework_for
    from repro.workloads.runner import WorkloadRunner

    framework = framework_for(spec, scale)
    debloater = Debloater(framework)
    report = debloater.debloat(spec)
    assert report.verification is not None

    # Build exact-kernel variants of every debloated library.
    used = report.baseline.used_kernels
    exact_overrides = {}
    for soname, dlib in debloater.debloated_libraries.items():
        exact_overrides[soname] = exact_kernel_removal(
            dlib, used.get(soname, frozenset())
        )

    exact_error = None
    try:
        WorkloadRunner(
            spec, framework, overrides=exact_overrides
        ).run()
    except (CudaError, LoaderError) as exc:
        exact_error = f"{type(exc).__name__}: {exc}"

    return {
        "verification_ok": report.verification.ok,
        "exact_error": exact_error,
    }


def run(scale: float = DEFAULT_SCALE) -> str:
    spec = workload_by_id("pytorch/inference/mobilenetv2")
    outcome = common.PIPELINE_CACHE.get_or_run_value(
        spec, scale, "granularity_ablation", (), lambda: _measure(spec, scale)
    )
    verification_ok = bool(outcome["verification_ok"])
    exact_error = outcome["exact_error"]

    table = Table(["Retention granularity", "Verification"], title=TITLE)
    table.add_row(
        "whole element (Negativa-ML)",
        "outputs identical" if verification_ok else "FAILED",
    )
    table.add_row(
        "exact kernel (ablation)",
        exact_error or "unexpectedly passed",
    )

    checks = [
        shape_check(
            "Whole-element retention verifies",
            verification_ok,
        ),
        shape_check(
            "Exact-kernel retention breaks GPU-launching kernels "
            "(dynamic parallelism)",
            exact_error is not None and "kernel" in exact_error.lower(),
            exact_error or "no failure observed",
        ),
    ]
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 10 (appendix): the top-9 Open-LLM-Leaderboard models under
distributed inference on 8x A100 40GB.

Paper shape: reductions are nearly identical across models (bloat is a
property of the framework, not the model) and consistent with single-GPU
results, except the *element-count* reduction is lower - distributed
inference resolves more kernel variants (communication/overlap kernels,
per-rank shape variants).
"""

from __future__ import annotations

import numpy as np

from repro.cuda.driver import LoadingMode
from repro.experiments.common import DEFAULT_SCALE, cell_count, cell_mb, pipeline_report, shape_check
from repro.utils.tables import Table
from repro.workloads.datasets import get_dataset
from repro.workloads.models import LEADERBOARD_LLMS
from repro.workloads.spec import WorkloadSpec, workload_by_id

ID = "table10"
TITLE = "Table 10: distributed inference (8x A100 40GB), top-9 leaderboard LLMs"


def distributed_spec(framework: str, model) -> WorkloadSpec:
    return WorkloadSpec(
        framework=framework,
        operation="inference",
        model=model,
        dataset=get_dataset("manual"),
        batch_size=1,
        device_name="a100-40gb",
        world_size=8,
        loading_mode=LoadingMode.EAGER,
    )


def run(scale: float = DEFAULT_SCALE, models=None) -> str:
    models = models if models is not None else LEADERBOARD_LLMS
    table = Table(
        [
            "Framework", "Model", "#Lib.", "Total File Size/MB",
            "CPU Size/MB", "#Functions", "GPU Size/MB", "#Elements",
        ],
        title=TITLE,
    )
    elem_reds: dict[str, list[float]] = {"vllm": [], "transformers": []}
    file_reds: dict[str, list[float]] = {"vllm": [], "transformers": []}
    for framework in ("vllm", "transformers"):
        for model in models:
            spec = distributed_spec(framework, model)
            report = pipeline_report(spec, scale)
            table.add_row(
                framework,
                model.display_name,
                report.n_libraries,
                cell_mb(report.total_file_size, report.total_file_size_after),
                cell_mb(report.total_cpu_size, report.total_cpu_size_after),
                cell_count(report.total_functions, report.total_functions_after),
                cell_mb(report.total_gpu_size, report.total_gpu_size_after),
                cell_count(report.total_elements, report.total_elements_after),
            )
            elem_reds[framework].append(report.element_reduction_pct)
            file_reds[framework].append(report.file_reduction_pct)

    # Single-GPU reference for the element-count contrast.
    single = pipeline_report(
        workload_by_id("vllm/inference/llama2-7b").variant(
            device_name="a100-40gb"
        ),
        scale,
    )

    all_elem = elem_reds["vllm"] + elem_reds["transformers"]
    all_file = file_reds["vllm"] + file_reds["transformers"]
    checks = [
        shape_check(
            "Reductions nearly identical across the nine models "
            "(paper: rows agree to ~1 point)",
            float(np.std(all_file)) < 4.0,
            f"file-reduction std {np.std(all_file):.1f} points",
        ),
        shape_check(
            "Distributed inference retains more elements than single-GPU "
            "(paper: 84-85% vs 97%)",
            max(all_elem) < single.element_reduction_pct,
            f"distributed max {max(all_elem):.1f}% vs single "
            f"{single.element_reduction_pct:.1f}%",
        ),
    ]
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

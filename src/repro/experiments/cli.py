"""CLI: ``python -m repro.experiments [ids... | all] [--scale S] [-o FILE]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=["all"],
        help="experiment ids (e.g. table2 fig7), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="entity-count scale (default 0.125; 1.0 = paper magnitude)",
    )
    parser.add_argument(
        "-o", "--output", default=None, help="also write output to this file"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cross-experiment pipeline cache (recompute every "
        "pipeline; outputs are byte-identical either way)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for eid, module in EXPERIMENTS.items():
            print(f"{eid:28s} {module.TITLE}")
        return 0

    if args.no_cache:
        from repro.experiments.common import PIPELINE_CACHE

        PIPELINE_CACHE.configure(enabled=False)

    ids = list(EXPERIMENTS) if args.ids == ["all"] or args.ids == [] else args.ids
    chunks: list[str] = []
    for eid in ids:
        start = time.time()
        output = run_experiment(eid, scale=args.scale)
        elapsed = time.time() - start
        chunk = f"{output}\n\n(generated in {elapsed:.1f}s wall time)"
        chunks.append(f"{'=' * 78}\n{chunk}")
        print(chunks[-1])
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(chunks) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""CLI: ``python -m repro.experiments [ids... | all] [--scale S] [-o FILE]``.

Cache control: ``--no-cache`` bypasses the pipeline cache entirely,
``--no-disk-cache`` keeps the in-memory tier but never touches disk,
``--cache-dir`` points the disk tier somewhere other than
``$REPRO_PIPELINE_CACHE_DIR`` / ``~/.cache/repro-debloat``, and
``--verbose`` prints per-experiment timing and cache statistics to stderr.
Experiment output is byte-identical regardless of cache settings.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=["all"],
        help="experiment ids (e.g. table2 fig7), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="entity-count scale (default 0.125; 1.0 = paper magnitude)",
    )
    parser.add_argument(
        "-o", "--output", default=None, help="also write output to this file"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the pipeline cache entirely, both tiers (recompute "
        "every pipeline; outputs are byte-identical either way)",
    )
    parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="keep the in-memory pipeline cache but never read or write "
        "the persisted disk tier",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="disk-tier cache directory (default: $REPRO_PIPELINE_CACHE_DIR "
        "or ~/.cache/repro-debloat)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print per-experiment timing and cache statistics to stderr",
    )
    return parser


def configure_cache(args: argparse.Namespace) -> None:
    """Apply the shared cache flags through the process-wide engine facade."""
    from repro.api import default_engine

    default_engine().configure_cache(
        enabled=False if args.no_cache else None,
        disk_enabled=False if args.no_disk_cache else None,
        cache_dir=args.cache_dir,
    )


def _cache_stats_line() -> str:
    from repro.experiments.common import PIPELINE_CACHE

    s = PIPELINE_CACHE.stats()
    return (
        f"pipeline cache: {s['entries']} in memory "
        f"({s['hits']} hits / {s['misses']} misses), "
        f"{s['disk_entries']} on disk "
        f"({s['disk_hits']} hits / {s['disk_misses']} misses / "
        f"{s['disk_errors']} errors)"
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for eid, module in EXPERIMENTS.items():
            print(f"{eid:28s} {module.TITLE}")
        return 0

    configure_cache(args)

    ids = list(EXPERIMENTS) if args.ids == ["all"] or args.ids == [] else args.ids
    chunks: list[str] = []
    for eid in ids:
        start = time.time()
        output = run_experiment(eid, scale=args.scale)
        elapsed = time.time() - start
        chunk = f"{output}\n\n(generated in {elapsed:.1f}s wall time)"
        chunks.append(f"{'=' * 78}\n{chunk}")
        print(chunks[-1])
        if args.verbose:
            print(
                f"[{eid}] {elapsed:.2f}s; {_cache_stats_line()}",
                file=sys.stderr,
            )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(chunks) + "\n")
    if args.verbose:
        print(_cache_stats_line(), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

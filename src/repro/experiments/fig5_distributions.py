"""Figure 5: distributions of per-library reductions (violin-plot data).

Paper shape: CPU size reductions are dispersed (median ~25%, many libraries
at 0-10%); GPU size reductions concentrate near 80%; every library with GPU
code loses >80% of its elements.
"""

from __future__ import annotations

from repro.analysis.distribution import reduction_distributions
from repro.experiments.common import DEFAULT_SCALE, shape_check, table1_reports
from repro.utils.stats import ascii_violin
from repro.utils.tables import Table

ID = "fig5"
TITLE = "Figure 5: per-library reduction distributions (violin data)"


def run(scale: float = DEFAULT_SCALE) -> str:
    reports = [report for _, report in table1_reports(scale)]
    dists = reduction_distributions(reports)

    table = Table(
        ["Series", "min", "Q1", "median", "Q3", "max", "mean", "n"],
        title=TITLE,
    )
    for label, summary in dists.summaries().items():
        table.add_row(label, *summary.row())

    violins = []
    for label, values in (
        ("CPU code size reduction", dists.cpu_size_reduction),
        ("GPU code size reduction", dists.gpu_size_reduction),
    ):
        violins.append(f"\n{label} (density sketch):")
        violins.extend(ascii_violin(values, width=36))

    summaries = dists.summaries()
    cpu_med = summaries["CPU code size reduction"].median
    gpu_med = summaries["GPU code size reduction"].median
    checks = [
        shape_check(
            "GPU size-reduction median far above CPU's (paper: ~80% vs ~25%)",
            gpu_med > cpu_med + 20,
            f"GPU median {gpu_med:.0f}% vs CPU median {cpu_med:.0f}%",
        ),
        shape_check(
            "Every GPU library loses >80% of its elements (paper Fig. 5b)",
            dists.min_element_reduction() > 80.0,
            f"min element reduction {dists.min_element_reduction():.0f}%",
        ),
        shape_check(
            "Many libraries have low CPU reductions (paper: Q1 <= 25%)",
            summaries["CPU code size reduction"].q1 <= 35.0,
            f"CPU Q1 {summaries['CPU code size reduction'].q1:.0f}%",
        ),
    ]
    return table.render() + "\n" + "\n".join(violins) + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 4: Jaccard similarity of used functions/kernels in libtorch_cuda.so.

Five workloads share the same torch build (vLLM is excluded - it bundles a
different ``libtorch_cuda.so``, as in the paper).  Paper shape: function
similarity is high (>=0.73 for every pair) while kernel similarity is low
(<=0.42), i.e. workloads share infrastructure code but not shape-specialized
kernels.
"""

from __future__ import annotations

from repro.analysis.jaccard import combined_table, jaccard_matrix
from repro.experiments.common import DEFAULT_SCALE, pipeline_report, shape_check
from repro.utils.tables import Table
from repro.workloads.spec import TABLE1_WORKLOADS

ID = "table4"
TITLE = "Table 4: Jaccard similarity in libtorch_cuda.so (upper: functions, lower: kernels)"

_LIB = "libtorch_cuda.so"
_WORKLOAD_IDS = (
    "pytorch/train/mobilenetv2",
    "pytorch/inference/mobilenetv2",
    "pytorch/train/transformer",
    "pytorch/inference/transformer",
    "transformers/inference/llama2-7b",
)
_LABELS = (
    "MobileNetV2/PyTorch/Train",
    "MobileNetV2/PyTorch/Inference",
    "Transformer/PyTorch/Train",
    "Transformer/PyTorch/Inference",
    "Llama2/Transformers/Inference",
)


def _usage_sets(scale: float):
    functions: dict[str, frozenset] = {}
    kernels: dict[str, frozenset] = {}
    for wid, label in zip(_WORKLOAD_IDS, _LABELS):
        spec = next(w for w in TABLE1_WORKLOADS if w.workload_id == wid)
        report = pipeline_report(spec, scale)
        functions[label] = frozenset(
            report.baseline.used_functions.get(_LIB, ()).tolist()
        )
        kernels[label] = report.baseline.used_kernels.get(_LIB, frozenset())
    return functions, kernels


def run(scale: float = DEFAULT_SCALE) -> str:
    functions, kernels = _usage_sets(scale)
    rows = combined_table(functions, kernels)
    table = Table(["Workload", *[l.split("/")[0] + "/" + l.split("/")[2] for l in _LABELS]],
                  title=TITLE)
    table.add_rows(rows)

    fm = jaccard_matrix(functions)
    km = jaccard_matrix(kernels)
    checks = [
        shape_check(
            "Function similarity high for every pair (paper: >=0.73)",
            fm.min_off_diagonal() >= 0.55,
            f"min {fm.min_off_diagonal():.2f}",
        ),
        shape_check(
            "Kernel similarity low for every pair (paper: <=0.42)",
            km.max_off_diagonal() <= 0.65,
            f"max {km.max_off_diagonal():.2f}",
        ),
        shape_check(
            "Functions are far more shared than kernels",
            fm.min_off_diagonal() > km.max_off_diagonal(),
            f"min-func {fm.min_off_diagonal():.2f} > max-kernel "
            f"{km.max_off_diagonal():.2f}",
        ),
    ]
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 2: total file size, CPU code, and GPU code reductions per workload.

Paper shape: every workload reduces CPU code by >=46% and GPU code by
>=66%; GPU element reductions exceed 97%; file-size reductions are 40-55%.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SCALE,
    cell_count,
    cell_mb,
    shape_check,
    table1_reports,
    workload_row_labels,
)
from repro.utils.tables import Table

ID = "table2"
TITLE = "Table 2: per-workload reductions across all shared libraries"


def run(scale: float = DEFAULT_SCALE) -> str:
    table = Table(
        [
            "Model", "Framework", "Operation", "#Lib.",
            "Total File Size/MB", "CPU Size/MB", "#Functions",
            "GPU Size/MB", "#Elements",
        ],
        title=TITLE,
    )
    cpu_reds, gpu_reds, elem_reds, file_reds = [], [], [], []
    for spec, report in table1_reports(scale):
        model, framework, operation = workload_row_labels(spec)
        table.add_row(
            model,
            framework,
            operation,
            report.n_libraries,
            cell_mb(report.total_file_size, report.total_file_size_after),
            cell_mb(report.total_cpu_size, report.total_cpu_size_after),
            cell_count(report.total_functions, report.total_functions_after),
            cell_mb(report.total_gpu_size, report.total_gpu_size_after),
            cell_count(report.total_elements, report.total_elements_after),
        )
        cpu_reds.append(report.cpu_reduction_pct)
        gpu_reds.append(report.gpu_reduction_pct)
        elem_reds.append(report.element_reduction_pct)
        file_reds.append(report.file_reduction_pct)

    checks = [
        shape_check(
            "CPU code reduction substantial in all workloads (paper: >=46%)",
            min(cpu_reds) >= 40.0,
            f"min {min(cpu_reds):.0f}%",
        ),
        shape_check(
            "GPU code reduction >= CPU-grade in all workloads (paper: >=66%)",
            min(gpu_reds) >= 60.0,
            f"min {min(gpu_reds):.0f}%",
        ),
        shape_check(
            "GPU element reduction exceeds 95% (paper: >=97%)",
            min(elem_reds) >= 95.0,
            f"min {min(elem_reds):.0f}%",
        ),
        shape_check(
            "GPU code is more bloated than CPU code (paper's headline)",
            all(g >= c - 25 for g, c in zip(gpu_reds, cpu_reds))
            and sum(gpu_reds) / len(gpu_reds) > 60,
            f"mean GPU {sum(gpu_reds) / len(gpu_reds):.0f}% vs "
            f"mean CPU {sum(cpu_reds) / len(cpu_reds):.0f}%",
        ),
        shape_check(
            "Total file reductions in the 38-70% band (paper: 40-55%)",
            all(38.0 <= f <= 70.0 for f in file_reds),
            f"range {min(file_reds):.0f}-{max(file_reds):.0f}%",
        ),
    ]
    note = (
        f"(entity counts at scale={scale:g}; multiply counts by "
        f"{1 / scale:g} for paper-magnitude counts - percentages are "
        f"scale-invariant)"
    )
    return table.render() + "\n" + note + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

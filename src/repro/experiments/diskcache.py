"""Disk tier of the pipeline cache: persisted debloat reports.

The in-memory :class:`~repro.experiments.common.PipelineCache` (tier 0)
only amortizes pipeline runs within one process; every CLI invocation and
every benchmark process used to recompute warm pipelines from scratch.
:class:`DiskReportCache` is tier 1: serialized
:class:`~repro.core.report.WorkloadDebloatReport` containers
(:mod:`repro.core.serialize`) stored under a cache directory, keyed by a
:func:`~repro.core.serialize.stable_digest` of the frozen run-identity
tuple *plus* the framework-build fingerprint
(:func:`~repro.frameworks.catalog.framework_build_fingerprint`) - so a
warm entry is only ever served for a byte-identical framework build.

**Location.** ``$REPRO_PIPELINE_CACHE_DIR`` when set, else
``~/.cache/repro-debloat``.  The environment is re-read on every operation
unless an explicit directory was configured, so tests can point each test
at an isolated tmp dir without rebuilding module-level cache objects.

**Failure policy.** A cache must never turn into a correctness or
availability hazard: corrupted, truncated, version-skewed, or unreadable
entries - and any filesystem error - are treated as misses (counted in
``stats()['disk_errors']``) and recomputed.  A corrupt entry is
additionally **quarantined**: moved into a ``quarantine/`` sidecar
directory (counted in ``stats()['disk_quarantined']``) so the bad bytes
are preserved for inspection instead of being silently overwritten, while
the recompute path writes a fresh entry at the original name.  Writes
retry once on an OS error before giving up (best-effort).

**File layout.** One file per entry,
``<framework>--<workload-id-slug>--s<scale>--<digest>.rpdc``; the readable
prefix exists so :meth:`invalidate` can drop matching entries by workload /
framework / scale without deserializing anything, and writes go through a
same-directory temp file + :func:`os.replace` so readers never observe a
half-written container.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import serialize
from repro.core.report import WorkloadDebloatReport
from repro.errors import CacheError, FaultError
from repro.testing import faults
from repro.utils import atomicio

#: Filename extension of serialized report containers.
SUFFIX = ".rpdc"

#: Sidecar directory (under the cache dir) holding quarantined entries.
QUARANTINE_DIR = "quarantine"

#: Default cache location (overridden by ``$REPRO_PIPELINE_CACHE_DIR``).
DEFAULT_CACHE_DIR = "~/.cache/repro-debloat"

#: Environment switch for the disk tier alone (the in-memory tier and both
#: tiers together are governed by ``REPRO_PIPELINE_CACHE``).
DISK_ENV = "REPRO_PIPELINE_DISK_CACHE"
DIR_ENV = "REPRO_PIPELINE_CACHE_DIR"

_FALSE = ("0", "false", "no")


def _env_enabled() -> bool:
    return os.environ.get(DISK_ENV, "1") not in _FALSE


def _scale_token(scale: float) -> str:
    return "s" + repr(float(scale)).replace(".", "_")


def _slug(workload_id: str) -> str:
    return workload_id.replace("/", "_")


class DiskReportCache:
    """Persisted WorkloadDebloatReport store (tier 1 of the pipeline cache)."""

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        enabled: bool | None = None,
        quarantine: bool = True,
    ) -> None:
        self._directory = Path(directory).expanduser() if directory else None
        self._enabled = enabled
        #: Preserve corrupt entries in the sidecar dir (False = delete).
        self._quarantine_enabled = quarantine
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.quarantined = 0

    # -- configuration --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled if self._enabled is not None else _env_enabled()

    @property
    def directory(self) -> Path:
        """The active cache directory (env-resolved unless configured)."""
        if self._directory is not None:
            return self._directory
        return Path(
            os.environ.get(DIR_ENV) or DEFAULT_CACHE_DIR
        ).expanduser()

    def configure(
        self,
        directory: str | os.PathLike | None = None,
        enabled: bool | None = None,
        quarantine: bool | None = None,
    ) -> None:
        """Pin the directory and/or the enabled flag (None = leave as is)."""
        if directory is not None:
            self._directory = Path(directory).expanduser()
        if enabled is not None:
            self._enabled = enabled
        if quarantine is not None:
            self._quarantine_enabled = quarantine

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def digest(key: tuple, fingerprint: str, kind: str = "") -> str:
        """Stable digest of (run identity, framework build, pipeline code).

        :data:`~repro.core.debloat.PIPELINE_VERSION` is part of the digest:
        a behavior change to locate/compact/verify invalidates every
        persisted entry even when neither the payload layout
        (``SCHEMA_VERSION``) nor the generated libraries
        (``GENERATOR_VERSION``, via the fingerprint) changed.
        """
        from repro.core.debloat import PIPELINE_VERSION

        if kind:
            return serialize.stable_digest(
                key, fingerprint, PIPELINE_VERSION, kind
            )
        return serialize.stable_digest(key, fingerprint, PIPELINE_VERSION)

    def path_for(self, key: tuple, fingerprint: str, kind: str = "") -> Path:
        """The entry file for one (run identity, build fingerprint) pair.

        ``key`` is a :meth:`PipelineCache.key`-layout tuple: ``key[0]`` is
        the workload id, ``key[7]`` the framework name, ``key[8]`` the
        scale - that prefix is what :meth:`invalidate` filters on.  Report
        entries use an empty ``kind``; cached-value entries bake their kind
        into the digest so kinds never collide.
        """
        name = "--".join(
            (
                key[7],
                _slug(key[0]),
                _scale_token(key[8]),
                self.digest(key, fingerprint, kind),
            )
        )
        return self.directory / (name + SUFFIX)

    # -- store ----------------------------------------------------------------

    def get(
        self, key: tuple, fingerprint: str
    ) -> WorkloadDebloatReport | None:
        """Load a persisted report, or None on miss/corruption/skew."""
        if not self.enabled:
            return None
        path = self.path_for(key, fingerprint)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.errors += 1
            return None
        try:
            faults.check("diskcache.read")
            report = serialize.loads(data)
        except (CacheError, FaultError):
            # Truncated, corrupt, or schema-skewed entry: a miss.  The bad
            # bytes move to the quarantine sidecar and the recompute path
            # writes a fresh entry via put().
            self.errors += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return report

    def put(
        self, key: tuple, fingerprint: str, report: WorkloadDebloatReport
    ) -> None:
        """Persist a report atomically; failures are silent (best-effort)."""
        if not self.enabled:
            return
        self._write(self.path_for(key, fingerprint), serialize.dumps(report))

    def get_value(self, key: tuple, fingerprint: str, kind: str):
        """Load a cached value of ``kind``, or None on miss/corruption."""
        if not self.enabled:
            return None
        path = self.path_for(key, fingerprint, kind)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.errors += 1
            return None
        try:
            faults.check("diskcache.read")
            value = serialize.value_loads(data, kind)
        except (CacheError, FaultError):
            self.errors += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return value

    def put_value(
        self, key: tuple, fingerprint: str, kind: str, value
    ) -> None:
        if not self.enabled:
            return
        self._write(
            self.path_for(key, fingerprint, kind),
            serialize.value_dumps(value, kind),
        )

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry into the sidecar dir (drop it if we can't)."""
        if not self._quarantine_enabled:
            self._remove(path)
            return
        self.quarantined += 1
        target_dir = self.directory / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            self._remove(path)

    def _write(self, path: Path, data: bytes) -> None:
        try:
            self._write_once(path, data)
        except OSError:
            # One retry: a transient I/O failure (or an injected one at
            # the diskcache.write site) usually clears; a second failure
            # is counted and the entry stays a recomputable miss.
            try:
                self._write_once(path, data)
            except OSError:
                self.errors += 1

    def _write_once(self, path: Path, data: bytes) -> None:
        # Durable tmp + fsync + rename + dir fsync (REPRO_NO_FSYNC skips
        # the physical syncs): a cache entry observed on disk is complete
        # and survives power loss, not just process death.
        faults.check("diskcache.write")
        path.parent.mkdir(parents=True, exist_ok=True)
        atomicio.atomic_write_bytes(str(path), data)

    # -- maintenance ----------------------------------------------------------

    def entries(self) -> list[Path]:
        try:
            return sorted(self.directory.glob(f"*{SUFFIX}"))
        except OSError:
            return []

    def __len__(self) -> int:
        return len(self.entries())

    def invalidate(
        self,
        workload_id: str | None = None,
        framework: str | None = None,
        scale: float | None = None,
    ) -> int:
        """Delete matching entry files (filters ANDed; none = everything).

        Filters match on the filename's readable prefix, so invalidation
        never needs to deserialize (and therefore also removes corrupted
        entries).  Files whose names don't parse are only removed by an
        unfiltered invalidation.
        """
        unfiltered = workload_id is None and framework is None and scale is None
        removed = 0
        if unfiltered:
            # Also sweep temp files orphaned by crashed writers; they never
            # match the ``*.rpdc`` entry glob.
            try:
                stale = list(self.directory.glob(f"*{SUFFIX}.tmp*"))
            except OSError:
                stale = []
            for path in stale:
                removed += self._remove(path)
        for path in self.entries():
            parts = path.name[: -len(SUFFIX)].split("--")
            if len(parts) != 4:
                if unfiltered:
                    removed += self._remove(path)
                continue
            fw, wl, sc, _digest = parts
            if workload_id is not None and wl != _slug(workload_id):
                continue
            if framework is not None and fw != framework:
                continue
            if scale is not None and sc != _scale_token(scale):
                continue
            removed += self._remove(path)
        return removed

    @staticmethod
    def _remove(path: Path) -> int:
        try:
            path.unlink()
        except OSError:
            return 0
        return 1

    def stats(self) -> dict[str, int]:
        return {
            "disk_entries": len(self),
            "disk_hits": self.hits,
            "disk_misses": self.misses,
            "disk_errors": self.errors,
            "disk_quarantined": self.quarantined,
        }

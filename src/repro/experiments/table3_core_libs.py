"""Table 3: reductions in each workload's largest (core) shared library.

Paper shape: every workload's core library is either ``libtorch_cuda.so``
or ``tensorflow_cc.so``; torch_cuda reduces ~76% in file size / ~91% CPU /
~82% GPU, while tensorflow_cc's CPU code reduces far less (~59% size, ~51%
functions) - the paper's "used bloat" signal.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SCALE,
    cell_count,
    cell_mb,
    shape_check,
    table1_reports,
    workload_row_labels,
)
from repro.utils.tables import Table

ID = "table3"
TITLE = "Table 3: reductions in the core shared library of each workload"


def run(scale: float = DEFAULT_SCALE) -> str:
    table = Table(
        [
            "Model", "Framework", "Operation", "Lib. Name",
            "File Size/MB", "CPU Size/MB", "#Functions",
            "GPU Size/MB", "#Elements",
        ],
        title=TITLE,
    )
    torch_fn_red = tf_fn_red = None
    for spec, report in table1_reports(scale):
        model, framework, operation = workload_row_labels(spec)
        core = report.largest_library()
        table.add_row(
            model, framework, operation, core.soname,
            cell_mb(core.file_size, core.file_size_after),
            cell_mb(core.cpu_size, core.cpu_size_after),
            cell_count(core.n_functions, core.n_functions_after),
            cell_mb(core.gpu_size, core.gpu_size_after),
            cell_count(core.n_elements, core.n_elements_after),
        )
        if core.soname == "libtorch_cuda.so" and torch_fn_red is None:
            torch_fn_red = core.function_reduction_pct
        if core.soname == "libtensorflow_cc.so.2" and tf_fn_red is None:
            tf_fn_red = core.function_reduction_pct

    checks = []
    if torch_fn_red is not None and tf_fn_red is not None:
        checks.append(
            shape_check(
                "TensorFlow's core library keeps far more functions than "
                "PyTorch's ('used bloat', paper: 51% vs 93% removed)",
                tf_fn_red < torch_fn_red - 20,
                f"tensorflow_cc {tf_fn_red:.0f}% vs torch_cuda "
                f"{torch_fn_red:.0f}%",
            )
        )
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""§5 extension: quantifying "used bloat" (executed-but-non-recurring code).

The paper hypothesizes that TensorFlow's larger-but-less-reducible CPU code
hides *used bloat* - code that runs (so usage-based debloating must keep
it) without contributing per-iteration work.  This experiment implements
the first-order detector the paper leaves to future work: executed code is
partitioned into startup-only and recurring, per library, and the
frameworks are compared.

Expected shape: TensorFlow carries a much larger absolute mass of
startup-only executed code than PyTorch for the same model - the paper's
"used bloat" made measurable.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SCALE, shape_check, used_bloat_report
from repro.utils.tables import Table
from repro.utils.units import fmt_mb
from repro.workloads.spec import workload_by_id

ID = "sec5_used_bloat"
TITLE = "SS5 extension: used bloat (startup-only executed code) per framework"

_WORKLOADS = (
    "pytorch/train/mobilenetv2",
    "tensorflow/train/mobilenetv2",
    "pytorch/train/transformer",
    "tensorflow/train/transformer",
)


def run(scale: float = DEFAULT_SCALE) -> str:
    table = Table(
        [
            "Workload", "Executed MB", "Startup-only MB", "Startup share %",
            "Top contributor",
        ],
        title=TITLE,
    )
    shares = {}
    startup_mb = {}
    for wid in _WORKLOADS:
        spec = workload_by_id(wid)
        report = used_bloat_report(spec, scale)
        top = report.top_by_startup_bytes(1)[0]
        table.add_row(
            wid,
            fmt_mb(report.total_used_bytes),
            fmt_mb(report.total_startup_only_bytes),
            f"{report.startup_share_pct:.1f}",
            f"{top.soname} ({fmt_mb(top.startup_only_bytes)} MB)",
        )
        shares[wid] = report.startup_share_pct
        startup_mb[wid] = report.total_startup_only_bytes / (1 << 20)

    checks = [
        shape_check(
            "TensorFlow carries far more used bloat than PyTorch for the "
            "same model (paper SS5's hypothesis, made measurable)",
            startup_mb["tensorflow/train/mobilenetv2"]
            > 2 * startup_mb["pytorch/train/mobilenetv2"],
            f"TF {startup_mb['tensorflow/train/mobilenetv2']:.0f} MB vs "
            f"PyTorch {startup_mb['pytorch/train/mobilenetv2']:.0f} MB",
        ),
        shape_check(
            "Startup-only code is a substantial share of executed code "
            "everywhere (imports/registrations/initialization)",
            min(shares.values()) > 20.0,
            f"min share {min(shares.values()):.0f}%",
        ),
    ]
    note = (
        "Startup-only code executes once, contributes no per-iteration "
        "work, yet stays resident and survives usage-based debloating - "
        "the paper's 'used bloat'."
    )
    return table.render() + "\n" + note + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 6: size reductions on an H100 under eager vs lazy module loading.

Paper shape: the *size* reductions are loading-mode independent (detection
sees the same kernels either way) and consistent with the T4 results -
Negativa-ML debloats across GPU architectures.
"""

from __future__ import annotations

from repro.cuda.driver import LoadingMode
from repro.experiments.common import (
    DEFAULT_SCALE,
    cell_count,
    cell_mb,
    pipeline_report,
    shape_check,
)
from repro.utils.tables import Table
from repro.workloads.spec import workload_by_id

ID = "table6"
TITLE = "Table 6: reductions for Llama2 inference on 1x H100, eager vs lazy loading"

_WORKLOADS = ("vllm/inference/llama2-7b", "transformers/inference/llama2-7b")


def h100_variants(scale: float):
    out = []
    for wid in _WORKLOADS:
        for mode in (LoadingMode.EAGER, LoadingMode.LAZY):
            spec = workload_by_id(wid).variant(
                device_name="h100", loading_mode=mode
            )
            out.append((wid.split("/")[0], mode, pipeline_report(spec, scale)))
    return out


def run(scale: float = DEFAULT_SCALE) -> str:
    table = Table(
        [
            "Framework", "Mode", "#Lib.", "Total File Size/MB",
            "CPU Size/MB", "#Functions", "GPU Size/MB", "#Elements",
        ],
        title=TITLE,
    )
    by_fw_mode = {}
    for fw, mode, report in h100_variants(scale):
        table.add_row(
            fw,
            mode.value.capitalize(),
            report.n_libraries,
            cell_mb(report.total_file_size, report.total_file_size_after),
            cell_mb(report.total_cpu_size, report.total_cpu_size_after),
            cell_count(report.total_functions, report.total_functions_after),
            cell_mb(report.total_gpu_size, report.total_gpu_size_after),
            cell_count(report.total_elements, report.total_elements_after),
        )
        by_fw_mode[(fw, mode)] = report

    checks = []
    for fw in ("vllm", "transformers"):
        eager = by_fw_mode[(fw, LoadingMode.EAGER)]
        lazy = by_fw_mode[(fw, LoadingMode.LAZY)]
        checks.append(
            shape_check(
                f"{fw}: size reductions identical across loading modes "
                "(paper Table 6)",
                abs(eager.file_reduction_pct - lazy.file_reduction_pct) < 1.0
                and abs(eager.gpu_reduction_pct - lazy.gpu_reduction_pct) < 1.0,
                f"file {eager.file_reduction_pct:.1f}% vs "
                f"{lazy.file_reduction_pct:.1f}%",
            )
        )
        checks.append(
            shape_check(
                f"{fw}: H100 reductions consistent with T4 (paper: within a "
                "few points)",
                eager.gpu_reduction_pct > 55.0,
                f"GPU reduction {eager.gpu_reduction_pct:.0f}%",
            )
        )
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 9 (appendix): Jaccard similarity in tensorflow_cc.so.

Same analysis as Table 4 but over the four TensorFlow workloads; the paper
reports the same structure - functions highly shared (>=0.82), kernels
barely shared (<=0.5).
"""

from __future__ import annotations

from repro.analysis.jaccard import combined_table, jaccard_matrix
from repro.experiments.common import DEFAULT_SCALE, pipeline_report, shape_check
from repro.utils.tables import Table
from repro.workloads.spec import TABLE1_WORKLOADS

ID = "table9"
TITLE = "Table 9: Jaccard similarity in tensorflow_cc.so (upper: functions, lower: kernels)"

_LIB = "libtensorflow_cc.so.2"
_WORKLOAD_IDS = (
    "tensorflow/train/mobilenetv2",
    "tensorflow/inference/mobilenetv2",
    "tensorflow/train/transformer",
    "tensorflow/inference/transformer",
)
_LABELS = (
    "MobileNetV2/Train",
    "MobileNetV2/Inference",
    "Transformer/Train",
    "Transformer/Inference",
)


def run(scale: float = DEFAULT_SCALE) -> str:
    functions: dict[str, frozenset] = {}
    kernels: dict[str, frozenset] = {}
    for wid, label in zip(_WORKLOAD_IDS, _LABELS):
        spec = next(w for w in TABLE1_WORKLOADS if w.workload_id == wid)
        report = pipeline_report(spec, scale)
        functions[label] = frozenset(
            report.baseline.used_functions.get(_LIB, ()).tolist()
        )
        kernels[label] = report.baseline.used_kernels.get(_LIB, frozenset())

    table = Table(["Workload", *_LABELS], title=TITLE)
    table.add_rows(combined_table(functions, kernels))

    fm = jaccard_matrix(functions)
    km = jaccard_matrix(kernels)
    checks = [
        shape_check(
            "Function similarity high across TF workloads (paper: >=0.82)",
            fm.min_off_diagonal() >= 0.5,
            f"min {fm.min_off_diagonal():.2f}",
        ),
        shape_check(
            "Kernel similarity low across TF workloads (paper: <=0.5)",
            km.max_off_diagonal() <= 0.8,
            f"max {km.max_off_diagonal():.2f}",
        ),
    ]
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Section 4.6: kernel-detector overhead vs NSys tracing overhead.

The workload (PyTorch / Train / MobileNetV2) runs three times: clean, with
the kernel detector attached, and with NSys-style tracing attached.  Paper
numbers: 180 s -> 253 s (+41%) with the detector, -> 407 s (+126%) with
NSys.  The structural reason: the detector pays per *distinct kernel*
(once-per-kernel `cuModuleGetFunction` interception) while NSys pays per
*launch* - see the scaling ablation for the growth contrast.
"""

from __future__ import annotations

from repro.core.detect import KernelDetector
from repro.core.nsys import NsysTracer
from repro.experiments.common import DEFAULT_SCALE, framework_for, shape_check
from repro.utils.tables import Table
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec, workload_by_id

ID = "sec46"
TITLE = "Section 4.6: detection overhead - kernel detector vs NSys"


def overhead_comparison(spec: WorkloadSpec, scale: float):
    framework = framework_for(spec, scale)
    base = WorkloadRunner(spec, framework).run()

    detector = KernelDetector()
    det = WorkloadRunner(spec, framework, subscribers=(detector,)).run()

    nsys = NsysTracer()
    traced = WorkloadRunner(spec, framework, subscribers=(nsys,)).run()
    return base, det, traced, detector, nsys


def run(scale: float = DEFAULT_SCALE) -> str:
    spec = workload_by_id("pytorch/train/mobilenetv2")
    base, det, traced, detector, nsys = overhead_comparison(spec, scale)

    det_overhead = 100.0 * (det.execution_time_s / base.execution_time_s - 1.0)
    nsys_overhead = 100.0 * (
        traced.execution_time_s / base.execution_time_s - 1.0
    )

    table = Table(["Setup", "Exec Time/s", "Overhead %", "Events"], title=TITLE)
    table.add_row("original", f"{base.execution_time_s:,.0f}", "-", "-")
    table.add_row(
        "kernel detector",
        f"{det.execution_time_s:,.0f}",
        f"+{det_overhead:.0f}",
        f"{detector.interceptions:,} interceptions "
        f"({detector.total_detected():,} kernels)",
    )
    table.add_row(
        "nsys --trace=cuda",
        f"{traced.execution_time_s:,.0f}",
        f"+{nsys_overhead:.0f}",
        f"{nsys.launch_records:,} launch records",
    )

    checks = [
        shape_check(
            "Detector overhead well below NSys (paper: 41% vs 126%)",
            det_overhead < 0.55 * nsys_overhead,
            f"{det_overhead:.0f}% vs {nsys_overhead:.0f}%",
        ),
        shape_check(
            "Detector intercepts once per kernel (paper §3.1)",
            detector.interceptions == detector.total_detected(),
            f"{detector.interceptions:,} interceptions for "
            f"{detector.total_detected():,} kernels",
        ),
        shape_check(
            "NSys records orders of magnitude more events",
            nsys.launch_records > 100 * max(detector.interceptions, 1),
            f"{nsys.launch_records:,} vs {detector.interceptions:,}",
        ),
    ]
    note = (
        "(distinct-kernel counts scale with the entity scale; run with "
        "--scale 1.0 for paper-magnitude kernel counts)"
    )
    return table.render() + "\n" + note + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

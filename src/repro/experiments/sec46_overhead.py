"""Section 4.6: kernel-detector overhead vs NSys tracing overhead.

Paper numbers for PyTorch / Train / MobileNetV2: 180 s -> 253 s (+41%) with
the detector attached, -> 407 s (+126%) with NSys.  The structural reason:
the detector pays per *distinct kernel* (once-per-kernel
`cuModuleGetFunction` interception) while NSys pays per *launch* - see the
scaling ablation for the growth contrast.

The comparison needs **no workload runs of its own**: the debloat
pipeline's single fused instrumented run carries a passive NSys tracer, so
the shared pipeline report already holds the exact standalone-run
attribution for all three setups - the clean baseline, the detector run
(``timing.kernel_detection_run_s``), and the NSys-traced run
(``timing.nsys_traced_run_s``) - plus the interception/record counters.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SCALE, pipeline_report, shape_check
from repro.utils.tables import Table
from repro.workloads.spec import workload_by_id

ID = "sec46"
TITLE = "Section 4.6: detection overhead - kernel detector vs NSys"


def run(scale: float = DEFAULT_SCALE) -> str:
    spec = workload_by_id("pytorch/train/mobilenetv2")
    report = pipeline_report(spec, scale)
    base_s = report.baseline.execution_time_s
    det_s = report.timing.kernel_detection_run_s
    nsys_s = report.timing.nsys_traced_run_s
    counters = report.baseline.counters
    interceptions = counters["detector_interceptions"]
    detected_kernels = counters["detected_kernels"]
    launch_records = counters["nsys_launch_records"]

    det_overhead = 100.0 * (det_s / base_s - 1.0)
    nsys_overhead = 100.0 * (nsys_s / base_s - 1.0)

    table = Table(["Setup", "Exec Time/s", "Overhead %", "Events"], title=TITLE)
    table.add_row("original", f"{base_s:,.0f}", "-", "-")
    table.add_row(
        "kernel detector",
        f"{det_s:,.0f}",
        f"+{det_overhead:.0f}",
        f"{interceptions:,} interceptions "
        f"({detected_kernels:,} kernels)",
    )
    table.add_row(
        "nsys --trace=cuda",
        f"{nsys_s:,.0f}",
        f"+{nsys_overhead:.0f}",
        f"{launch_records:,} launch records",
    )

    checks = [
        shape_check(
            "Detector overhead well below NSys (paper: 41% vs 126%)",
            det_overhead < 0.55 * nsys_overhead,
            f"{det_overhead:.0f}% vs {nsys_overhead:.0f}%",
        ),
        shape_check(
            "Detector intercepts once per kernel (paper §3.1)",
            interceptions == detected_kernels,
            f"{interceptions:,} interceptions for "
            f"{detected_kernels:,} kernels",
        ),
        shape_check(
            "NSys records orders of magnitude more events",
            launch_records > 100 * max(interceptions, 1),
            f"{launch_records:,} vs {interceptions:,}",
        ),
    ]
    note = (
        "(distinct-kernel counts scale with the entity scale; run with "
        "--scale 1.0 for paper-magnitude kernel counts)"
    )
    return table.render() + "\n" + note + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 5: runtime improvements after replacing the top-8 bloat
contributors with their debloated versions.

Paper shape: PyTorch workloads see large CPU/GPU memory reductions
(inference more than training); TensorFlow/vLLM GPU memory barely moves
(device-pool preallocation); the *absolute* execution-time saving is
roughly constant (~2.6 s) across workloads, so inference (short) improves
by a large percentage and training (long) by a small one.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    DEFAULT_SCALE,
    shape_check,
    table1_reports,
    workload_row_labels,
)
from repro.utils.tables import Table
from repro.utils.units import pct_reduction

ID = "table5"
TITLE = "Table 5: runtime performance with debloated libraries (top-8 replaced)"


def run(scale: float = DEFAULT_SCALE) -> str:
    table = Table(
        [
            "Model", "Framework", "Operation",
            "Peak CPU Mem/MB", "Peak GPU Mem/MB", "Exec Time/s",
        ],
        title=TITLE,
    )
    abs_cpu, abs_gpu, abs_time = [], [], []
    rows: dict[str, tuple[float, float, float]] = {}
    for spec, report in table1_reports(scale):
        model, framework, operation = workload_row_labels(spec)
        base, after = report.baseline, report.debloated_run
        assert after is not None
        cpu_red = pct_reduction(base.peak_cpu_mem_bytes, after.peak_cpu_mem_bytes)
        gpu_red = pct_reduction(base.peak_gpu_mem_bytes, after.peak_gpu_mem_bytes)
        time_red = pct_reduction(base.execution_time_s, after.execution_time_s)
        table.add_row(
            model, framework, operation,
            f"{base.peak_cpu_mem_mb:,.0f} ({cpu_red:.1f})",
            f"{base.peak_gpu_mem_mb:,.0f} ({gpu_red:.1f})",
            f"{base.execution_time_s:,.0f} ({time_red:.1f})",
        )
        abs_cpu.append(base.peak_cpu_mem_mb - after.peak_cpu_mem_mb)
        abs_gpu.append(base.peak_gpu_mem_mb - after.peak_gpu_mem_mb)
        abs_time.append(base.execution_time_s - after.execution_time_s)
        rows[spec.workload_id] = (cpu_red, gpu_red, time_red)

    summary = (
        f"Average absolute reduction +/- std: "
        f"CPU {np.mean(abs_cpu):,.0f}+/-{np.std(abs_cpu):,.0f} MB, "
        f"GPU {np.mean(abs_gpu):,.0f}+/-{np.std(abs_gpu):,.0f} MB, "
        f"time {np.mean(abs_time):.1f}+/-{np.std(abs_time):.1f} s"
    )

    torch_inf_gpu = rows["pytorch/inference/mobilenetv2"][1]
    tf_gpu = rows["tensorflow/train/mobilenetv2"][1]
    vllm_gpu = rows["vllm/inference/llama2-7b"][1]
    torch_train_t = rows["pytorch/train/mobilenetv2"][2]
    torch_inf_t = rows["pytorch/inference/mobilenetv2"][2]
    checks = [
        shape_check(
            "PyTorch GPU-memory savings >> TensorFlow/vLLM (pool "
            "preallocation hides code savings; paper: 48-70% vs 0.7-2.8%)",
            torch_inf_gpu > 10 * max(tf_gpu, vllm_gpu, 0.1),
            f"torch-inf {torch_inf_gpu:.1f}% vs tf {tf_gpu:.1f}% / "
            f"vllm {vllm_gpu:.1f}%",
        ),
        shape_check(
            "Inference gains a much larger time percentage than training "
            "(constant absolute saving; paper: 44.6% vs 2.3%)",
            torch_inf_t > 5 * max(torch_train_t, 0.1),
            f"{torch_inf_t:.1f}% vs {torch_train_t:.1f}%",
        ),
        shape_check(
            "Absolute time saving roughly constant across workloads "
            "(paper: 2.6 +/- 1.6 s)",
            np.std(abs_time) < 3.0 * max(np.mean(abs_time), 0.1),
            f"{np.mean(abs_time):.1f} +/- {np.std(abs_time):.1f} s",
        ),
    ]
    return table.render() + "\n" + summary + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 1: the evaluated workload matrix (models, frameworks, datasets)."""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SCALE, workload_row_labels
from repro.utils.tables import Table
from repro.workloads.spec import TABLE1_WORKLOADS

ID = "table1"
TITLE = "Table 1: evaluated ML frameworks and workloads"


def run(scale: float = DEFAULT_SCALE) -> str:
    table = Table(
        ["Model", "Framework", "Operation", "DataSet", "Batch Size", "Epochs"],
        title=TITLE,
    )
    for spec in TABLE1_WORKLOADS:
        model, framework, operation = workload_row_labels(spec)
        dataset = (
            f"{spec.dataset.name} {'Train' if spec.is_training else 'Test'} Set"
            if spec.dataset.name != "manual"
            else "Manual Input"
        )
        table.add_row(
            model,
            framework,
            operation,
            dataset,
            spec.batch_size,
            spec.epochs if spec.is_training else "-",
        )
    return table.render()


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

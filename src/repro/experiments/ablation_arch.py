"""Ablation: multi-architecture fatbins vs a single-architecture build.

Paper §4.3 attributes >80% of element removals to architecture mismatch
("software bloat can stem from hardware").  Rebuilding the framework with a
fatbin that targets only the deployment GPU eliminates Reason I entirely;
what remains is pure Reason-II (unused-kernel) bloat - still substantial,
but far smaller.
"""

from __future__ import annotations

from repro.analysis.reasons import reason_breakdown
from repro.experiments.common import DEFAULT_SCALE, pipeline_report, shape_check
from repro.utils.tables import Table
from repro.workloads.spec import workload_by_id

ID = "ablation_arch"
TITLE = "Ablation: six-architecture fatbins vs single-architecture build"


def run(scale: float = DEFAULT_SCALE) -> str:
    spec = workload_by_id("pytorch/inference/mobilenetv2")

    # Both builds flow through the pipeline cache: ``archs`` is part of the
    # run identity and of the framework-build fingerprint.
    multi = pipeline_report(spec, scale)
    single = pipeline_report(spec, scale, archs=(75,))

    table = Table(
        [
            "Build", "#Elements", "Element reduction %", "GPU size reduction %",
            "Reason I %", "Reason II %",
        ],
        title=TITLE,
    )
    for label, report in (("6 architectures", multi), ("sm_75 only", single)):
        b = reason_breakdown(report)
        table.add_row(
            label,
            report.total_elements,
            f"{report.element_reduction_pct:.1f}",
            f"{report.gpu_reduction_pct:.1f}",
            f"{b.reason_i_pct:.1f}",
            f"{b.reason_ii_pct:.1f}",
        )

    checks = [
        shape_check(
            "Single-arch build eliminates Reason I entirely",
            reason_breakdown(single).reason_i == 0,
        ),
        shape_check(
            "Most element bloat is architecture-induced (paper Fig. 7)",
            multi.element_reduction_pct > single.element_reduction_pct,
            f"{multi.element_reduction_pct:.1f}% vs "
            f"{single.element_reduction_pct:.1f}%",
        ),
        shape_check(
            "Unused-kernel (Reason II) bloat remains substantial even "
            "single-arch",
            single.element_reduction_pct > 50.0,
            f"{single.element_reduction_pct:.1f}% removed",
        ),
    ]
    return table.render() + "\n\n" + "\n".join(checks)


def main() -> None:  # pragma: no cover - CLI entry
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()

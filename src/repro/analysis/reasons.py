"""Element-removal reason breakdown (paper Fig. 7, §4.3).

Reason I: the element targets a different GPU architecture than the device
the workload ran on - hardware-induced bloat.  Reason II: the element
matches the architecture but none of its kernels were used.  The paper
finds >80% of removals are Reason I across all workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.locate import RemovalReason
from repro.core.report import WorkloadDebloatReport


@dataclass
class ReasonBreakdown:
    """Removal reason shares for one workload."""

    workload_id: str
    removed_total: int
    reason_i: int
    reason_ii: int

    @property
    def reason_i_pct(self) -> float:
        return 100.0 * self.reason_i / self.removed_total if self.removed_total else 0.0

    @property
    def reason_ii_pct(self) -> float:
        return (
            100.0 * self.reason_ii / self.removed_total if self.removed_total else 0.0
        )


def reason_breakdown(report: WorkloadDebloatReport) -> ReasonBreakdown:
    removed = [d for d in report.element_decisions() if not d.retained]
    reason_i = sum(1 for d in removed if d.reason is RemovalReason.ARCH_MISMATCH)
    reason_ii = sum(1 for d in removed if d.reason is RemovalReason.NO_USED_KERNELS)
    return ReasonBreakdown(
        workload_id=report.workload_id,
        removed_total=len(removed),
        reason_i=reason_i,
        reason_ii=reason_ii,
    )

"""Pareto/concentration analysis of per-library reductions (Fig. 6, §4.2).

The paper finds bloat follows a power law: the top ~10% of libraries
contribute over 90% of the total size reduction, and for PyTorch/MobileNetV2
the top 8 of 113 libraries carry 90% of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.report import WorkloadDebloatReport
from repro.utils.stats import items_for_share, pareto_series, top_k_share


@dataclass
class ParetoResult:
    """Sorted per-library contributions and concentration statistics."""

    sonames: list[str]
    removed_bytes: np.ndarray  # sorted descending
    cumulative_pct: np.ndarray
    top_10pct_share: float
    libraries_for_90pct: int

    def series(self, n: int | None = None) -> list[tuple[str, float, float]]:
        """(soname, removed MB, cumulative %) rows for plotting."""
        k = len(self.sonames) if n is None else min(n, len(self.sonames))
        return [
            (
                self.sonames[i],
                float(self.removed_bytes[i]) / (1 << 20),
                float(self.cumulative_pct[i]),
            )
            for i in range(k)
        ]


def library_pareto(report: WorkloadDebloatReport) -> ParetoResult:
    """Pareto analysis of absolute file-size reduction per library."""
    pairs = sorted(
        ((lib.soname, lib.file_reduction_bytes) for lib in report.libraries),
        key=lambda kv: -kv[1],
    )
    values = np.array([v for _, v in pairs], dtype=np.float64)
    sorted_vals, cum = pareto_series(values)
    return ParetoResult(
        sonames=[s for s, _ in pairs],
        removed_bytes=sorted_vals,
        cumulative_pct=cum,
        top_10pct_share=top_k_share(values, 0.1),
        libraries_for_90pct=items_for_share(values, 90.0),
    )

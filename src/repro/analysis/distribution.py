"""Per-library reduction distributions (paper Fig. 5a/5b).

The paper's violin plots contrast CPU and GPU code: CPU size reductions
spread widely with a ~25% median (generic libraries are mostly used), while
GPU size reductions concentrate near 80% and *every* library loses more
than 80% of its fatbin elements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import WorkloadDebloatReport
from repro.utils.stats import FiveNumberSummary


@dataclass
class ReductionDistributions:
    """The four Fig. 5 series, per library."""

    cpu_size_reduction: list[float]
    gpu_size_reduction: list[float]
    function_count_reduction: list[float]
    element_count_reduction: list[float]

    def summaries(self) -> dict[str, FiveNumberSummary]:
        return {
            "CPU code size reduction": FiveNumberSummary.from_values(
                self.cpu_size_reduction
            ),
            "GPU code size reduction": FiveNumberSummary.from_values(
                self.gpu_size_reduction
            ),
            "Function count reduction": FiveNumberSummary.from_values(
                self.function_count_reduction
            ),
            "Element count reduction": FiveNumberSummary.from_values(
                self.element_count_reduction
            ),
        }

    def min_element_reduction(self) -> float:
        return min(self.element_count_reduction, default=0.0)


def reduction_distributions(
    reports: list[WorkloadDebloatReport],
) -> ReductionDistributions:
    """Pool per-library reductions across workloads (GPU-less libraries are
    excluded from the GPU series, as in the paper)."""
    cpu, gpu, funcs, elems = [], [], [], []
    for report in reports:
        for lib in report.libraries:
            if lib.cpu_size > 0:
                cpu.append(lib.cpu_reduction_pct)
            if lib.n_functions > 0:
                funcs.append(lib.function_reduction_pct)
            if lib.has_gpu_code:
                gpu.append(lib.gpu_reduction_pct)
                elems.append(lib.element_reduction_pct)
    return ReductionDistributions(
        cpu_size_reduction=cpu,
        gpu_size_reduction=gpu,
        function_count_reduction=funcs,
        element_count_reduction=elems,
    )

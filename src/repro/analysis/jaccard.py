"""Jaccard similarity of used functions/kernels across workloads (Table 4/9).

The paper computes ``J(A,B) = |A n B| / |A u B|`` over the sets of functions
(respectively kernels) each workload uses *within one shared library* -
high function similarity and low kernel similarity is the headline finding
of §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.stats import jaccard


@dataclass
class JaccardMatrix:
    """Pairwise similarities between labelled sets."""

    labels: list[str]
    values: np.ndarray  # symmetric, diagonal = 1

    def at(self, a: str, b: str) -> float:
        i, j = self.labels.index(a), self.labels.index(b)
        return float(self.values[i, j])

    def off_diagonal(self) -> list[float]:
        n = len(self.labels)
        return [
            float(self.values[i, j]) for i in range(n) for j in range(n) if i < j
        ]

    def min_off_diagonal(self) -> float:
        off = self.off_diagonal()
        return min(off) if off else 1.0

    def max_off_diagonal(self) -> float:
        off = self.off_diagonal()
        return max(off) if off else 1.0


def jaccard_matrix(sets_by_label: dict[str, set | frozenset]) -> JaccardMatrix:
    """Pairwise Jaccard similarity over labelled sets (order preserved)."""
    labels = list(sets_by_label)
    n = len(labels)
    values = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            sim = jaccard(sets_by_label[labels[i]], sets_by_label[labels[j]])
            values[i, j] = values[j, i] = sim
    return JaccardMatrix(labels=labels, values=values)


def combined_table(
    function_sets: dict[str, set | frozenset],
    kernel_sets: dict[str, set | frozenset],
) -> list[list[str]]:
    """Render the paper's combined layout: functions in the upper-right
    triangle, kernels in the lower-left (Table 4/9)."""
    if list(function_sets) != list(kernel_sets):
        raise ValueError("label sets must match")
    fm = jaccard_matrix(function_sets)
    km = jaccard_matrix(kernel_sets)
    n = len(fm.labels)
    rows: list[list[str]] = []
    for i in range(n):
        row: list[str] = [fm.labels[i]]
        for j in range(n):
            if i == j:
                row.append("-")
            elif j > i:
                row.append(f"{fm.values[i, j]:.2f}")
            else:
                row.append(f"{km.values[i, j]:.2f}")
        rows.append(row)
    return rows

"""Result analyses: Jaccard similarity, Pareto concentration, reduction
distributions, and element-removal reason breakdowns (paper §4.2-§4.3)."""

from repro.analysis.distribution import reduction_distributions
from repro.analysis.jaccard import jaccard_matrix
from repro.analysis.pareto import library_pareto
from repro.analysis.reasons import reason_breakdown

__all__ = [
    "jaccard_matrix",
    "library_pareto",
    "reason_breakdown",
    "reduction_distributions",
]

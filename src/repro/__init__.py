"""Negativa-ML reproduction: detecting and removing bloat in ML frameworks.

Reproduction of *The Hidden Bloat in Machine Learning Systems* (Zhang &
Ali-Eldin, MLSys 2025).  The package provides:

* the binary substrates (:mod:`repro.elf`, :mod:`repro.fatbin`) and runtime
  simulators (:mod:`repro.cuda`, :mod:`repro.loader`) real ML shared
  libraries live on;
* synthetic but structurally faithful framework builds
  (:mod:`repro.frameworks`) and the paper's workload matrix
  (:mod:`repro.workloads`);
* **Negativa-ML itself** (:mod:`repro.core`): kernel detector, kernel
  locator, CPU function detector/locator, compactor, verifier;
* analyses (:mod:`repro.analysis`) and one experiment per paper
  table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro import Debloater, get_framework, workload_by_id

    framework = get_framework("pytorch", scale=0.05)
    report = Debloater(framework).debloat(
        workload_by_id("pytorch/inference/mobilenetv2")
    )
    print(f"{report.file_reduction_pct:.0f}% of library bytes removed")
"""

from repro.core.compact import Compactor, DebloatedLibrary
from repro.core.debloat import Debloater, DebloatOptions
from repro.core.detect import KernelDetector
from repro.core.locate import KernelLocator, RemovalReason
from repro.core.nsys import NsysTracer
from repro.core.report import LibraryReduction, WorkloadDebloatReport
from repro.errors import ReproError
from repro.frameworks.catalog import FRAMEWORK_NAMES, get_framework
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import TABLE1_WORKLOADS, WorkloadSpec, workload_by_id

__version__ = "1.0.0"

__all__ = [
    "Compactor",
    "DebloatOptions",
    "DebloatedLibrary",
    "Debloater",
    "FRAMEWORK_NAMES",
    "KernelDetector",
    "KernelLocator",
    "LibraryReduction",
    "NsysTracer",
    "RemovalReason",
    "ReproError",
    "TABLE1_WORKLOADS",
    "WorkloadDebloatReport",
    "WorkloadRunner",
    "WorkloadSpec",
    "__version__",
    "get_framework",
    "workload_by_id",
]

"""Framework and library specifications.

A :class:`LibrarySpec` records the observable, paper-reported magnitudes of
one shared library (file size, CPU code size, function count, GPU code size,
cubin count) plus generation knobs (which op kinds its kernels serve, how
much of it is always-used infrastructure).  A :class:`FrameworkSpec` is the
full library list plus runtime behaviour (memory policy, CPU tax, feature
tags).  Specs are pure data; generation happens in
:mod:`repro.frameworks.genlib`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf.image import SharedLibrary
from repro.errors import ConfigurationError
from repro.frameworks.ops import OpKind
from repro.utils.units import MB


@dataclass(frozen=True)
class LibrarySpec:
    """Generation spec for one shared library (paper-magnitude sizes)."""

    soname: str
    file_mb: float
    text_mb: float
    n_functions: int
    gpu_mb: float = 0.0
    n_cubins: int = 0
    #: Op kinds whose kernel variants live in this library's fatbin; also the
    #: op kinds that have dedicated CPU function pools here.
    op_kinds: tuple[OpKind, ...] = ()
    #: Relative cubin-count weight per op kind (defaults to uniform).
    op_kind_weights: tuple[float, ...] = ()
    #: Fraction of functions in the always-used infrastructure pool.
    infra_fraction: float = 0.04
    #: Fraction of the infra pool actually touched at startup.
    infra_used_fraction: float = 0.85
    #: Fraction of functions in each op kind's dedicated pool.
    op_pool_fraction: float = 0.03
    #: Fraction of an op pool touched when that op kind executes.
    op_pool_used_fraction: float = 0.12
    #: Share of each kind's per-arch bytes concentrated in the hot (runtime
    #: selectable) variants.
    hot_byte_share: float = 0.85
    #: Size-weight multiplier of *used* functions relative to cold code.
    #: >1 models frameworks whose hot paths are big dispatch/compute
    #: functions (PyTorch); ~1 models frameworks whose executed code is a
    #: swarm of small wrappers (TensorFlow's "used bloat", paper §5).
    hot_function_weight: float = 5.0
    #: Feature tags required for this library to be loaded by a workload
    #: (empty = always loaded with the framework).
    requires: frozenset[str] = frozenset()
    proprietary: bool = False

    def __post_init__(self) -> None:
        if self.text_mb + self.gpu_mb > self.file_mb:
            raise ConfigurationError(
                f"{self.soname}: text+gpu ({self.text_mb + self.gpu_mb} MB) "
                f"exceed file size {self.file_mb} MB"
            )
        if self.gpu_mb > 0 and self.n_cubins <= 0:
            raise ConfigurationError(f"{self.soname}: gpu code without cubins")
        if self.op_kind_weights and len(self.op_kind_weights) != len(self.op_kinds):
            raise ConfigurationError(f"{self.soname}: op_kind_weights mismatch")

    @property
    def other_mb(self) -> float:
        """Non-code content (rodata, tables, debug) - Fig. 1's "Others"."""
        return self.file_mb - self.text_mb - self.gpu_mb

    @property
    def file_bytes(self) -> int:
        return int(self.file_mb * MB)

    @property
    def text_bytes(self) -> int:
        return int(self.text_mb * MB)

    @property
    def gpu_bytes(self) -> int:
        return int(self.gpu_mb * MB)


@dataclass(frozen=True)
class MemoryPolicy:
    """Framework device/host memory behaviour."""

    #: "on_demand": allocations sized to tensors (PyTorch caching allocator).
    #: "pool_fraction": grab ``pool_fraction`` of device memory at startup
    #: (TensorFlow default).
    #: "utilization_target": fill the device up to ``pool_fraction`` of its
    #: capacity *after* other allocations (vLLM KV-cache preallocation).
    kind: str = "on_demand"
    pool_fraction: float = 0.0
    #: Host bytes of interpreter-side framework machinery (imports, graphs).
    python_overhead_mb: float = 500.0

    def __post_init__(self) -> None:
        if self.kind not in ("on_demand", "pool_fraction", "utilization_target"):
            raise ConfigurationError(f"unknown memory policy {self.kind!r}")


@dataclass(frozen=True)
class FrameworkSpec:
    """A complete framework: libraries + runtime behaviour."""

    name: str
    version: str
    libraries: tuple[LibrarySpec, ...]
    memory: MemoryPolicy = MemoryPolicy()
    #: Routing: op kind -> sonames of libraries whose kernels serve it.
    kernel_routing: dict = field(default_factory=dict)
    #: Libraries whose CPU op pools are exercised by every op (dispatchers).
    cpu_dispatch_libs: tuple[str, ...] = ()
    #: Host CPU time per batch as a fraction of GPU time (framework tax).
    cpu_tax_fraction: float = 0.35
    #: GPU efficiency factor applied to peak FLOPs for this framework.
    gpu_efficiency: float = 0.18
    #: Kernels an op uses from its selected variant cubin.
    kernels_per_op: int = 6
    #: Fixed import/initialization time (seconds, interpreter side).
    import_time_s: float = 4.0
    #: Feature tags the framework itself provides.
    features: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        sonames = [lib.soname for lib in self.libraries]
        if len(set(sonames)) != len(sonames):
            raise ConfigurationError(f"{self.name}: duplicate library sonames")
        for kind, phase_map in self.kernel_routing.items():
            for targets in phase_map.values():
                for target in targets:
                    if target not in sonames:
                        raise ConfigurationError(
                            f"{self.name}: routing for {kind} targets unknown "
                            f"library {target!r}"
                        )

    def library(self, soname: str) -> LibrarySpec:
        for lib in self.libraries:
            if lib.soname == soname:
                return lib
        raise ConfigurationError(f"{self.name}: no library {soname!r}")

    def libraries_for(self, features: frozenset[str]) -> tuple[LibrarySpec, ...]:
        """Libraries loaded by a workload with the given feature set."""
        return tuple(
            lib for lib in self.libraries if lib.requires <= features
        )


@dataclass
class Framework:
    """A generated framework: spec + concrete libraries (+ layouts in tags)."""

    spec: FrameworkSpec
    libraries: dict[str, SharedLibrary]
    scale: float

    @property
    def name(self) -> str:
        return self.spec.name

    def library(self, soname: str) -> SharedLibrary:
        return self.libraries[soname]

    def libraries_for(self, features: frozenset[str]) -> list[SharedLibrary]:
        return [
            self.libraries[s.soname] for s in self.spec.libraries_for(features)
        ]

"""Synthetic ML frameworks: generated library sets + execution runtime.

Each framework (PyTorch, TensorFlow, vLLM, Transformers) is described by a
:class:`~repro.frameworks.spec.FrameworkSpec` naming its shared libraries
with paper-magnitude sizes, function counts, fatbin element counts, and the
operator kinds each library serves.  :mod:`~repro.frameworks.genlib` turns
specs into byte-accurate ELF libraries;
:mod:`~repro.frameworks.runtime` executes workloads against them through the
loader and the CUDA driver, applying each framework's memory policy
(TensorFlow/vLLM device-pool preallocation, PyTorch on-demand allocation).

Everything is deterministic: the same spec + scale always generates the same
bytes, kernels, and usage sets.
"""

from repro.frameworks.catalog import FRAMEWORK_NAMES, get_framework
from repro.frameworks.ops import OpInstance, OpKind, Phase
from repro.frameworks.runtime import FrameworkRuntime
from repro.frameworks.spec import FrameworkSpec, Framework, LibrarySpec

__all__ = [
    "FRAMEWORK_NAMES",
    "Framework",
    "FrameworkRuntime",
    "FrameworkSpec",
    "LibrarySpec",
    "OpInstance",
    "OpKind",
    "Phase",
    "get_framework",
]

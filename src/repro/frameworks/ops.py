"""Operator vocabulary shared by models, frameworks, and the generator.

An :class:`OpInstance` is one operator occurrence in a model's graph with a
*shape signature* (the string a real framework's kernel-selection heuristics
key on).  The kernel variant an op resolves to is a stable hash of
``(framework, kind, shape signature, phase, batch bucket)`` - which is what
produces the paper's Table 4 structure: different workloads share most CPU
functions (infrastructure) but few kernels (shape-specialized variants).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(str, enum.Enum):
    """Operator families; each maps to kernel variants in specific libraries."""

    CONV2D = "conv2d"
    DEPTHWISE_CONV = "dwconv"
    GEMM = "gemm"
    BATCHNORM = "batchnorm"
    LAYERNORM = "layernorm"
    RMSNORM = "rmsnorm"
    ACTIVATION = "activation"  # relu/relu6/gelu/silu
    SOFTMAX = "softmax"
    POOL = "pool"
    EMBEDDING = "embedding"
    ATTENTION = "attention"
    PAGED_ATTENTION = "paged_attention"
    ROPE = "rope"
    ELEMENTWISE = "elementwise"
    REDUCE = "reduce"
    DROPOUT = "dropout"
    LOSS = "loss"
    OPTIMIZER = "optimizer"
    SAMPLING = "sampling"
    COLLECTIVE = "collective"  # NCCL all-reduce/all-gather
    RNG = "rng"
    MISC = "misc"  # generator-only: bloat cubins never selected at runtime


class Phase(str, enum.Enum):
    """Execution phase; backward ops select different kernel variants."""

    FORWARD = "fwd"
    BACKWARD = "bwd"
    OPTIMIZER = "opt"


#: Op kinds whose kernel selection depends on the batch-size bucket (GEMM-like
#: tiling); elementwise-style kernels are batch-agnostic, which is why
#: train/inference of the same model still share a sizable kernel subset
#: (paper Table 4: J=0.42 for MobileNetV2 train vs inference).
BATCH_SENSITIVE_KINDS = frozenset(
    {
        OpKind.CONV2D,
        OpKind.DEPTHWISE_CONV,
        OpKind.GEMM,
        OpKind.ATTENTION,
        OpKind.PAGED_ATTENTION,
    }
)


def batch_bucket(batch_size: int) -> int:
    """Quantize batch size the way tiling heuristics do (power-of-two bands)."""
    if batch_size <= 1:
        return 0
    bucket = 1
    while (1 << bucket) < batch_size:
        bucket += 1
    return bucket


@dataclass(frozen=True)
class OpInstance:
    """One operator occurrence in a model graph.

    Attributes
    ----------
    kind:
        Operator family (routes to libraries and kernel variant tables).
    shape_sig:
        Shape signature, e.g. ``"c32_k3_s2_h112"``; kernels are selected per
        signature.
    flops_per_item:
        Forward FLOPs per sample (backward is charged at 2x).
    weight:
        Share of the model's per-batch GPU time attributed to this op (used
        for reporting only; total time comes from the model's FLOPs).
    """

    kind: OpKind
    shape_sig: str
    flops_per_item: float = 0.0
    weight: float = 1.0

    @property
    def uid(self) -> str:
        return f"{self.kind.value}:{self.shape_sig}"


@dataclass(frozen=True)
class KernelSelection:
    """The kernels an op instance resolved to in one library."""

    soname: str
    variant: int
    kernel_names: tuple[str, ...]
